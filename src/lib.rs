//! # sgf — Synthetic Generation Framework
//!
//! Umbrella crate for the Rust reproduction of *Plausible Deniability for
//! Privacy-Preserving Data Synthesis* (Bindschaedler, Shokri, Gunter —
//! VLDB 2017).  It re-exports the workspace crates so applications can depend
//! on a single crate:
//!
//! * [`data`] — schemas, records, CSV I/O, bucketization, the ACS-like generator;
//! * [`stats`] — entropy, Laplace/Dirichlet sampling, statistical distance, DP composition;
//! * [`model`] — structure learning, CPTs, seed-based synthesis, marginal baseline;
//! * [`index`] — indexed seed stores making the plausible-deniability test sublinear;
//! * [`core`] — plausible-deniability tests, Mechanism 1, Theorem-1 accounting, pipeline;
//! * [`serve`] — the budget-capped TCP release service over a trained session;
//! * [`ml`] — trees, forests, AdaBoost, LR/SVM, DP-ERM;
//! * [`eval`] — the table/figure reproduction harness.
//!
//! ## Quickstart
//!
//! Train a session once, then serve any number of `generate` requests from
//! the same models while the [`core::BudgetLedger`] composes the cumulative
//! (ε, δ) privacy cost:
//!
//! ```
//! use sgf::core::{GenerateRequest, PrivacyTestConfig, SynthesisEngine};
//! use sgf::data::acs::{acs_bucketizer, acs_schema, generate_acs};
//!
//! // A small ACS-like population (stand-in for the Census extract).
//! let population = generate_acs(3_000, 42);
//! let bucketizer = acs_bucketizer(&acs_schema());
//!
//! // k = 50 is the paper's default; shrink it for this tiny demo population.
//! let session = SynthesisEngine::builder()
//!     .privacy_test(PrivacyTestConfig::randomized(20, 4.0, 1.0))
//!     .seed(42)
//!     .train(&population, &bucketizer)
//!     .unwrap();
//!
//! let report = session.generate(&GenerateRequest::new(25)).unwrap();
//! println!("released {} synthetics (pass rate {:.1}%), cumulative epsilon {:.2}",
//!          report.synthetics.len(), 100.0 * report.stats.pass_rate(),
//!          session.ledger().total().epsilon);
//! ```
//!
//! The one-shot `SynthesisPipeline::run` of earlier versions still works as a
//! thin wrapper over builder → train → one `generate`.

pub use sgf_core as core;
pub use sgf_data as data;
pub use sgf_eval as eval;
pub use sgf_index as index;
pub use sgf_metrics as metrics;
pub use sgf_ml as ml;
pub use sgf_model as model;
pub use sgf_serve as serve;
pub use sgf_stats as stats;
