//! # sgf — Synthetic Generation Framework
//!
//! Umbrella crate for the Rust reproduction of *Plausible Deniability for
//! Privacy-Preserving Data Synthesis* (Bindschaedler, Shokri, Gunter —
//! VLDB 2017).  It re-exports the workspace crates so applications can depend
//! on a single crate:
//!
//! * [`data`] — schemas, records, CSV I/O, bucketization, the ACS-like generator;
//! * [`stats`] — entropy, Laplace/Dirichlet sampling, statistical distance, DP composition;
//! * [`model`] — structure learning, CPTs, seed-based synthesis, marginal baseline;
//! * [`core`] — plausible-deniability tests, Mechanism 1, Theorem-1 accounting, pipeline;
//! * [`ml`] — trees, forests, AdaBoost, LR/SVM, DP-ERM;
//! * [`eval`] — the table/figure reproduction harness.
//!
//! ## Quickstart
//!
//! ```
//! use sgf::core::{PipelineConfig, SynthesisPipeline};
//! use sgf::data::acs::{acs_bucketizer, acs_schema, generate_acs};
//!
//! // A small ACS-like population (stand-in for the Census extract).
//! let population = generate_acs(3_000, 42);
//! let bucketizer = acs_bucketizer(&acs_schema());
//!
//! // k = 50 is the paper's default; shrink it for this tiny demo population.
//! let mut config = PipelineConfig::paper_defaults(25);
//! config.privacy_test.k = 20;
//!
//! let result = SynthesisPipeline::new(config).run(&population, &bucketizer).unwrap();
//! println!("released {} synthetics (pass rate {:.1}%)",
//!          result.synthetics.len(), 100.0 * result.stats.pass_rate());
//! ```

pub use sgf_core as core;
pub use sgf_data as data;
pub use sgf_eval as eval;
pub use sgf_ml as ml;
pub use sgf_model as model;
pub use sgf_stats as stats;
