//! Machine-learning benchmark: train income classifiers on real data and on
//! the released synthetic data, and report accuracy + agreement (the Table-3
//! workflow), plus the distinguishing game of Table 5.
//!
//! Run with: `cargo run --release --example ml_benchmark`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sgf::core::{GenerateRequest, PrivacyTestConfig, SynthesisEngine};
use sgf::data::acs::{acs_bucketizer, acs_schema, attr, generate_acs};
use sgf::eval::{
    distinguishing_table, percent, table3, DistinguishConfig, Table3Config, TextTable,
};

fn main() {
    let population = generate_acs(20_000, 23);
    let bucketizer = acs_bucketizer(&acs_schema());

    let session = SynthesisEngine::builder()
        .privacy_test(
            PrivacyTestConfig::randomized(50, 4.0, 1.0).with_limits(Some(100), Some(4_000)),
        )
        .seed(23)
        .train(&population, &bucketizer)
        .expect("training succeeds");
    let report = session
        .generate(&GenerateRequest::new(1_500).with_seed(23))
        .expect("generation succeeds");
    let synthetics = &report.synthetics;
    let mut rng = StdRng::seed_from_u64(23);
    let marginal_data = session
        .models()
        .marginal
        .sample_dataset(synthetics.len(), &mut rng);

    println!("== Income classification: reals vs marginals vs synthetics ==\n");
    let rows = table3(
        &[
            ("reals".to_string(), &session.split().seeds),
            ("marginals".to_string(), &marginal_data),
            ("synthetics (omega=9)".to_string(), synthetics),
        ],
        &session.split().test,
        attr::INCOME,
        &Table3Config::default(),
        &mut rng,
    );
    let mut table = TextTable::new(&["Training set", "Tree", "RF", "Ada", "Agree RF"]);
    for row in &rows {
        table.add_row(&[
            row.label.clone(),
            percent(row.accuracy[0]),
            percent(row.accuracy[1]),
            percent(row.accuracy[2]),
            percent(row.agreement[1]),
        ]);
    }
    println!("{}", table.render());

    println!("== Distinguishing game (real vs candidate records) ==\n");
    let results = distinguishing_table(
        &session.split().test,
        &[
            ("marginals".to_string(), &marginal_data),
            ("synthetics (omega=9)".to_string(), synthetics),
        ],
        &DistinguishConfig {
            train_per_class: 700,
            test_per_class: 400,
            ..DistinguishConfig::default()
        },
        &mut rng,
    );
    let mut table = TextTable::new(&["Candidate", "RF adversary", "Tree adversary"]);
    for r in &results {
        table.add_row(&[r.label.clone(), percent(r.random_forest), percent(r.tree)]);
    }
    println!("{}", table.render());
    println!("(50% = indistinguishable from real records; the paper reports ~63% for synthetics vs ~80% for marginals)");
}
