//! Privacy audit: explore the plausible-deniability guarantee directly —
//! count plausible seeds for released candidates, sweep k, and translate the
//! randomized-test parameters into the (ε, δ) bound of Theorem 1.
//!
//! Run with: `cargo run --release --example privacy_audit`

use rand::rngs::StdRng;
use rand::SeedableRng;
use sgf::core::{
    partition_index, satisfies_plausible_deniability, GenerateRequest, Mechanism,
    PrivacyTestConfig, ReleaseBudget, SynthesisEngine,
};
use sgf::data::acs::{acs_bucketizer, acs_schema, generate_acs};
use sgf::model::{GenerativeModel, SeedSynthesizer};
use std::sync::Arc;

fn main() {
    let population = generate_acs(15_000, 31);
    let bucketizer = acs_bucketizer(&acs_schema());

    // Train the session once; the audit drives the low-level mechanism by
    // hand against the session's models and seed store.
    let session = SynthesisEngine::builder()
        .seed(31)
        .train(&population, &bucketizer)
        .expect("training succeeds");
    let seeds = session.seeds();
    let synthesizer =
        SeedSynthesizer::new(Arc::clone(&session.models().cpts), 9).expect("omega valid");

    println!("== Plausible-deniability audit (gamma = 4, omega = 9) ==\n");

    // 1. Propose candidates under the deterministic test and inspect them.
    let mut rng = StdRng::seed_from_u64(31);
    let test = PrivacyTestConfig::deterministic(50, 4.0).with_limits(None, Some(5_000));
    let mechanism = Mechanism::new(&synthesizer, seeds, test).expect("mechanism");
    let mut released = 0;
    let mut rejected = 0;
    for _ in 0..60 {
        let report = mechanism.propose(&mut rng).expect("propose");
        if report.released() {
            released += 1;
            let seed = seeds.record(report.seed_index);
            let p = synthesizer.probability(seed, &report.record);
            println!(
                "released candidate: seed partition {:?} (Pr = {:.2e}), {} plausible seeds counted",
                partition_index(p, 4.0),
                p,
                report.outcome.plausible_seeds
            );
            // The deterministic test is stronger than Definition 1: verify it.
            let ok =
                satisfies_plausible_deniability(&synthesizer, seeds, seed, &report.record, 50, 4.0)
                    .expect("criterion check");
            assert!(
                ok,
                "released record must satisfy (50, 4)-plausible deniability"
            );
        } else {
            rejected += 1;
        }
        if released >= 5 {
            break;
        }
    }
    println!("\n{released} released / {rejected} rejected in this audit run\n");

    // 1b. The same mechanism accepts any GenerativeModel: audit the marginal
    // baseline through the session (seed-independent, so everything passes).
    let marginal: &dyn GenerativeModel = &session.models().marginal;
    let marginal_report = session
        .generate_with(marginal, &GenerateRequest::new(20).with_seed(31))
        .expect("marginal generation succeeds");
    println!(
        "marginal baseline through the same mechanism: {} / {} candidates released (pass rate {:.0}%)\n",
        marginal_report.stats.released,
        marginal_report.stats.candidates,
        100.0 * marginal_report.stats.pass_rate()
    );

    // 2. Theorem 1: the (epsilon, delta) guarantee per released record.
    println!("Theorem 1 bounds for gamma = 4, epsilon0 = 1:");
    for k in [25usize, 50, 100, 200] {
        if let Some(bound) = ReleaseBudget::optimize(k, 4.0, 1.0, 1e-9).expect("valid parameters") {
            println!(
                "  k = {k:>3}: epsilon = {:.3}, delta = {:.2e} (t = {})",
                bound.budget.epsilon, bound.budget.delta, bound.t
            );
        } else {
            println!("  k = {k:>3}: no t achieves delta <= 1e-9");
        }
    }
    println!("\nLarger k buys a smaller delta at (almost) unchanged epsilon — the trade-off Section 2.1 describes.");
}
