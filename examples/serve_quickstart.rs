//! Serving releases over TCP: train a session once, expose it through
//! `sgf-serve` with an (ε, δ) budget cap, and talk to it with the protocol
//! client — including what a budget rejection looks like on the wire.
//!
//! ```sh
//! cargo run --release --example serve_quickstart
//! ```

use sgf::core::{GenerateRequest, PrivacyTestConfig, SynthesisEngine};
use sgf::data::acs::{acs_bucketizer, acs_schema, generate_acs};
use sgf::serve::{
    cap_admitting, reject, serve, Client, ClientError, GenerateCall, ServeConfig, SessionEntry,
};

fn main() {
    // Train once (small demo population, k = 20; the paper default is k = 50).
    let population = generate_acs(4_000, 42);
    let bucketizer = acs_bucketizer(&acs_schema());
    let session = SynthesisEngine::builder()
        .privacy_test(PrivacyTestConfig::randomized(20, 4.0, 1.0).with_limits(Some(40), None))
        .max_candidate_factor(30)
        .seed(42)
        .train(&population, &bucketizer)
        .expect("training failed");
    println!(
        "trained in {:.2}s; per-release epsilon {:.3}",
        session.training_time().as_secs_f64(),
        session.per_release_budget().unwrap().epsilon
    );

    // Keep a handle for in-process inspection (clones share models, index,
    // and — crucially — the budget ledger), cap the served session at the
    // composed budget of 60 released records, and serve on an ephemeral port.
    let local = session.clone();
    let cap = cap_admitting(&session, 60).unwrap();
    let handle = serve(
        ServeConfig::default(),
        vec![SessionEntry::new(session).capped(cap)],
    )
    .expect("bind failed");
    println!(
        "serving on {} (cap epsilon {:.3})",
        handle.addr(),
        cap.epsilon
    );

    let mut client = Client::connect(handle.addr()).expect("connect failed");

    // Two well-behaved requests: different seeds, deterministic releases.
    for seed in [1u64, 2] {
        let release = client
            .generate(&GenerateCall::new(25).with_request(GenerateRequest::new(25).with_seed(seed)))
            .expect("admitted request failed");
        println!(
            "seed {seed}: released {:2} records, cumulative epsilon {:.3}",
            release.records.len(),
            release.ledger_f64("total_epsilon").unwrap()
        );
    }

    // A greedy request that would blow the cap is rejected at admission with
    // a machine-readable reason — nothing is charged to the ledger.
    match client
        .generate(&GenerateCall::new(500).with_request(GenerateRequest::new(500).with_seed(3)))
    {
        Err(ClientError::Rejected(rejection)) => {
            assert_eq!(rejection.code, reject::BUDGET_EXHAUSTED);
            println!(
                "target 500: rejected (`{}`), requested epsilon {:.1} > cap {:.1}",
                rejection.code,
                rejection
                    .detail
                    .get("requested_epsilon")
                    .and_then(|v| v.as_f64())
                    .unwrap(),
                cap.epsilon
            );
        }
        other => panic!("expected a budget rejection, got {other:?}"),
    }

    // The in-process handle sees the same ledger the server charged.
    let ledger = local.ledger();
    println!(
        "shared ledger: {} requests, {} releases, reserved {}, total epsilon {:.3}",
        ledger.requests,
        ledger.releases,
        ledger.reserved,
        ledger.total().epsilon
    );
    assert_eq!(ledger.requests, 2);
    assert_eq!(ledger.reserved, 0);

    // Drain and stop.
    client.shutdown().expect("shutdown failed");
    handle.join().expect("drain failed");
    println!("server drained cleanly");
}
