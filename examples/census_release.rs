//! Census-style data release: learn a *differentially private* generative
//! model (noisy structure + noisy parameters), release synthetics with the
//! randomized privacy test, and compare the statistical utility of the
//! released data against the marginal baseline — the scenario the paper's
//! introduction motivates (releasing full survey records for researchers).
//!
//! Run with: `cargo run --release --example census_release`

use sgf::core::{PipelineConfig, SynthesisPipeline};
use sgf::data::acs::{acs_bucketizer, acs_schema, generate_acs};
use sgf::eval::compare_datasets;
use sgf::model::{ParameterConfig, StructureConfig};
use sgf::stats::{calibrate_epsilon_h, calibrate_epsilon_p};

fn main() {
    let population = generate_acs(20_000, 11);
    let bucketizer = acs_bucketizer(&acs_schema());
    let m = population.schema().len();

    // Split a total model-learning budget of epsilon = 1 across the noisy
    // entropy queries (structure) and the noisy CPT counts (parameters).
    let eps_h = calibrate_epsilon_h(m, 0.01, 1e-9, 1.0);
    let eps_p = calibrate_epsilon_p(m, 1e-9, 1.0);

    let mut config = PipelineConfig::paper_defaults(400);
    config.structure = StructureConfig::private(eps_h, 0.01);
    config.parameters = ParameterConfig {
        epsilon_p: Some(eps_p),
        global_seed: 11,
        ..ParameterConfig::default()
    };
    config.privacy_test = config.privacy_test.with_limits(Some(100), Some(5_000));
    config.seed = 11;

    let result = SynthesisPipeline::new(config)
        .run(&population, &bucketizer)
        .expect("pipeline runs");

    println!("== Differentially-private census-style release ==");
    println!(
        "structure learning budget : epsilon = {:.3}",
        result.budget.structure.epsilon
    );
    println!(
        "parameter learning budget : epsilon = {:.3}",
        result.budget.parameters.epsilon
    );
    println!(
        "model budget (disjoint)   : epsilon = {:.3}",
        result.budget.model_budget().epsilon
    );
    println!("released synthetics       : {}", result.synthetics.len());

    // Utility check: total-variation distance to the held-out test records,
    // for the synthetics and for an equally-sized marginal sample.
    let mut rng = rand::rngs::mock::StepRng::new(1, 7);
    let marginal_data = result
        .models
        .marginal
        .sample_dataset(result.synthetics.len(), &mut rng);
    let reports = compare_datasets(
        &result.split.test,
        &[
            ("synthetics".to_string(), &result.synthetics),
            ("marginals".to_string(), &marginal_data),
        ],
    );
    println!("\nmean total-variation distance to held-out reals:");
    for report in &reports {
        println!(
            "  {:<12} per-attribute {:.3}   per-pair {:.3}",
            report.label,
            report.mean_attribute_distance(),
            report.mean_pair_distance()
        );
    }
    println!("\n(lower is better; synthetics should preserve pairwise structure far better than marginals)");
}
