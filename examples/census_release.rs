//! Census-style data release: learn a *differentially private* generative
//! model (noisy structure + noisy parameters), release synthetics with the
//! randomized privacy test, and compare the statistical utility of the
//! released data against the marginal baseline — the scenario the paper's
//! introduction motivates (releasing full survey records for researchers).
//!
//! Run with: `cargo run --release --example census_release`

use sgf::core::{GenerateRequest, PrivacyTestConfig, SynthesisEngine};
use sgf::data::acs::{acs_bucketizer, acs_schema, generate_acs};
use sgf::eval::compare_datasets;
use sgf::model::{ParameterConfig, StructureConfig};
use sgf::stats::{calibrate_epsilon_h, calibrate_epsilon_p};

fn main() {
    let population = generate_acs(20_000, 11);
    let bucketizer = acs_bucketizer(&acs_schema());
    let m = population.schema().len();

    // Split a total model-learning budget of epsilon = 1 across the noisy
    // entropy queries (structure) and the noisy CPT counts (parameters).
    let eps_h = calibrate_epsilon_h(m, 0.01, 1e-9, 1.0);
    let eps_p = calibrate_epsilon_p(m, 1e-9, 1.0);

    // The learning budget is paid once at training time, no matter how many
    // release requests the session serves afterwards.
    let session = SynthesisEngine::builder()
        .structure(StructureConfig::private(eps_h, 0.01))
        .parameters(ParameterConfig {
            epsilon_p: Some(eps_p),
            global_seed: 11,
            ..ParameterConfig::default()
        })
        .privacy_test(
            PrivacyTestConfig::randomized(50, 4.0, 1.0).with_limits(Some(100), Some(5_000)),
        )
        .seed(11)
        .train(&population, &bucketizer)
        .expect("training succeeds");

    let report = session
        .generate(&GenerateRequest::new(400).with_seed(11))
        .expect("generation succeeds");
    let ledger = session.ledger();

    println!("== Differentially-private census-style release ==");
    println!(
        "structure learning budget : epsilon = {:.3}",
        ledger.structure.epsilon
    );
    println!(
        "parameter learning budget : epsilon = {:.3}",
        ledger.parameters.epsilon
    );
    println!(
        "model budget (disjoint)   : epsilon = {:.3}",
        ledger.model_budget().epsilon
    );
    println!("released synthetics       : {}", report.synthetics.len());
    println!(
        "cumulative total          : epsilon = {:.3} over {} releases",
        ledger.total().epsilon,
        ledger.releases
    );

    // Utility check: total-variation distance to the held-out test records,
    // for the synthetics and for an equally-sized marginal sample.
    let mut rng = rand::rngs::mock::StepRng::new(1, 7);
    let marginal_data = session
        .models()
        .marginal
        .sample_dataset(report.synthetics.len(), &mut rng);
    let reports = compare_datasets(
        &session.split().test,
        &[
            ("synthetics".to_string(), &report.synthetics),
            ("marginals".to_string(), &marginal_data),
        ],
    );
    println!("\nmean total-variation distance to held-out reals:");
    for report in &reports {
        println!(
            "  {:<12} per-attribute {:.3}   per-pair {:.3}",
            report.label,
            report.mean_attribute_distance(),
            report.mean_pair_distance()
        );
    }
    println!("\n(lower is better; synthetics should preserve pairwise structure far better than marginals)");
}
