//! Quickstart: train a synthesis session once on an ACS-like population with
//! the paper's default parameters (k = 50, γ = 4, ε0 = 1, ω = 9), then serve
//! two `generate` requests from the same trained models and print the release
//! statistics and the cumulative privacy ledger.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Migrating from the one-shot API: `SynthesisPipeline::run(&data, &bkt)` is
//! now a thin wrapper over `SynthesisEngine::builder()...train(...)` followed
//! by one `session.generate(...)` — switch to the session when you release
//! more than once from the same model.

use sgf::core::{GenerateRequest, PrivacyTestConfig, SynthesisEngine};
use sgf::data::acs::{acs_bucketizer, acs_schema, generate_acs};

fn main() {
    // The ACS-like population stands in for the 2013 Census extract.
    let population = generate_acs(20_000, 7);
    let bucketizer = acs_bucketizer(&acs_schema());

    // Train once: validated config -> data split -> structure + parameters.
    let session = SynthesisEngine::builder()
        .privacy_test(
            PrivacyTestConfig::randomized(50, 4.0, 1.0).with_limits(Some(100), Some(5_000)),
        )
        .seed(7)
        .train(&population, &bucketizer)
        .expect("training succeeds on the generated population");

    println!("== Plausible-deniability synthesis quickstart ==");
    println!("input records          : {}", population.len());
    println!("seeds (D_S)            : {}", session.seeds().len());
    println!(
        "model structure edges  : {}",
        session.models().structure.graph.edge_count()
    );
    println!(
        "training time          : {:.2}s",
        session.training_time().as_secs_f64()
    );

    // Serve many: each request has its own target, seed, and worker count.
    let report = session
        .generate(&GenerateRequest::new(500).with_seed(7))
        .expect("generation succeeds");
    println!("\n-- request 1: 500 synthetics --");
    println!("released synthetics    : {}", report.synthetics.len());
    println!("candidates proposed    : {}", report.stats.candidates);
    println!(
        "privacy-test pass rate : {:.1}%",
        100.0 * report.stats.pass_rate()
    );
    if let Some(per_release) = report.per_release {
        println!(
            "per-release DP bound   : (epsilon = {:.3}, delta = {:.2e})  [Theorem 1]",
            per_release.epsilon, per_release.delta
        );
    }

    let second = session
        .generate(&GenerateRequest::new(250).with_seed(8).with_workers(2))
        .expect("generation succeeds");
    println!("\n-- request 2: 250 synthetics, 2 workers --");
    println!("released synthetics    : {}", second.synthetics.len());

    let ledger = session.ledger();
    println!("\ncumulative ledger      : {}", ledger.to_json());
    println!(
        "total (epsilon, delta) : ({:.3}, {:.2e}) over {} releases in {} requests",
        ledger.total().epsilon,
        ledger.total().delta,
        ledger.releases,
        ledger.requests
    );

    println!("\nfirst 5 synthetic records:");
    let schema = report.synthetics.schema();
    for record in report.synthetics.records().iter().take(5) {
        let rendered: Vec<String> = (0..schema.len())
            .map(|a| schema.attribute(a).render(record.get(a) as usize).unwrap())
            .collect();
        println!("  {}", rendered.join(", "));
    }
}
