//! Quickstart: generate a privacy-preserving synthetic dataset from an
//! ACS-like population with the paper's default parameters (k = 50, γ = 4,
//! ε0 = 1, ω = 9) and print the release statistics and privacy accounting.
//!
//! Run with: `cargo run --release --example quickstart`

use sgf::core::{PipelineConfig, SynthesisPipeline};
use sgf::data::acs::{acs_bucketizer, acs_schema, generate_acs};

fn main() {
    // The ACS-like population stands in for the 2013 Census extract.
    let population = generate_acs(20_000, 7);
    let bucketizer = acs_bucketizer(&acs_schema());

    let mut config = PipelineConfig::paper_defaults(500);
    config.privacy_test = config.privacy_test.with_limits(Some(100), Some(5_000));
    config.seed = 7;

    let result = SynthesisPipeline::new(config)
        .run(&population, &bucketizer)
        .expect("the pipeline runs on the generated population");

    println!("== Plausible-deniability synthesis quickstart ==");
    println!("input records          : {}", population.len());
    println!("seeds (D_S)            : {}", result.split.seeds.len());
    println!("released synthetics    : {}", result.synthetics.len());
    println!("candidates proposed    : {}", result.stats.candidates);
    println!(
        "privacy-test pass rate : {:.1}%",
        100.0 * result.stats.pass_rate()
    );
    println!(
        "model structure edges  : {}",
        result.models.structure.graph.edge_count()
    );
    if let Some(per_release) = result.budget.per_release {
        println!(
            "per-release DP bound   : (epsilon = {:.3}, delta = {:.2e})  [Theorem 1]",
            per_release.epsilon, per_release.delta
        );
    }

    println!("\nfirst 5 synthetic records:");
    let schema = result.synthetics.schema();
    for record in result.synthetics.records().iter().take(5) {
        let rendered: Vec<String> = (0..schema.len())
            .map(|a| schema.attribute(a).render(record.get(a) as usize).unwrap())
            .collect();
        println!("  {}", rendered.join(", "));
    }
}
