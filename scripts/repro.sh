#!/usr/bin/env bash
# Reproduce the paper's figure/table artifacts.
#
#   scripts/repro.sh [scale]     full-scale run of every fig*/table* binary
#                                (scale defaults to 1; passed through to each
#                                binary as its positional argument)
#   scripts/repro.sh --smoke     smoke mode: every binary runs the full code
#                                path at reduced population / synthetic sizes
#                                (sets SGF_SMOKE=1; finishes in minutes)
#
# Output of each binary is streamed to stdout and mirrored under artifacts/.
# Every binary also emits its machine-readable BENCH_<series>.json document
# (SGF_BENCH_DIR); the documents land in artifacts/ AND the repo root, and
# are gated against the checked-in BENCH_TRAJECTORY.jsonl baseline by
# `sgf-bench-track compare` — a counter regression fails this script.
#
# `set -e -o pipefail` makes every stage fail fast: a binary exiting nonzero
# (even through the `tee` pipe) aborts the whole run.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE=1
SMOKE=0
for arg in "$@"; do
    case "$arg" in
        --smoke) SMOKE=1 ;;
        ''|*[!0-9]*) echo "usage: $0 [scale|--smoke]" >&2; exit 2 ;;
        *) SCALE="$arg" ;;
    esac
done

BINARIES=(fig1 fig2 fig3 fig4 fig5 fig6 fig_index fig_folding fig_update table1 table2 table3 table4 table5)

echo "== building release binaries =="
cargo build --release -p bench -p sgf-serve

OUTDIR=artifacts
mkdir -p "$OUTDIR"

# Determinism & robustness invariants (R1-R5): the artifacts below are only
# trustworthy if the tree passes the mechanized lint pass.  Fails the script
# on any unallowed finding or stale exception entry; the JSON report lands
# next to the artifacts for auditing.
echo
echo "== sgf-lint invariants gate =="
cargo run --release -q -p sgf-lint -- --json-out "$OUTDIR/lint_report.json"

# End-to-end smoke of the release service: ephemeral-port server, two named
# sessions (budget-capped and uncapped), batch + stream + rejected requests,
# clean drain.  SGF_BENCH_DIR makes the smoke write its observability
# documents — the per-session labeled metrics snapshot, the deterministic
# trace span trees, and a release provenance block — into artifacts/ as
# SMOKE_METRICS.json / SMOKE_TRACE.json / SMOKE_PROVENANCE.json; the
# documents are canonical JSON, byte-identical across identically-seeded
# runs (tested in crates/sgf-serve/tests/smoke_determinism.rs).
echo
echo "== sgf-serve smoke =="
start=$SECONDS
SGF_BENCH_DIR="$OUTDIR" target/release/sgf-serve --smoke | tee "$OUTDIR/serve_smoke.txt"
for doc in SMOKE_METRICS.json SMOKE_TRACE.json SMOKE_PROVENANCE.json; do
    if [ ! -s "$OUTDIR/$doc" ]; then
        echo "ERROR: sgf-serve smoke did not write $doc" >&2
        exit 1
    fi
done
echo "== sgf-serve smoke finished in $((SECONDS - start))s =="

for bin in "${BINARIES[@]}"; do
    echo
    echo "== $bin (scale $SCALE, smoke $SMOKE) =="
    start=$SECONDS
    if [ "$SMOKE" = 1 ]; then
        SGF_SMOKE=1 SGF_BENCH_DIR="$OUTDIR" "target/release/$bin" "$SCALE" | tee "$OUTDIR/$bin.txt"
    else
        SGF_BENCH_DIR="$OUTDIR" "target/release/$bin" "$SCALE" | tee "$OUTDIR/$bin.txt"
    fi
    echo "== $bin finished in $((SECONDS - start))s =="
done

# Seed-store decision-equivalence gate: fig_index asserts that scan, inverted
# index, and partition store release byte-identical records in every swept
# configuration, and prints the confirmation line below only after every
# assertion held.  A store regression therefore fails this script (and CI)
# even when the unit/property suites were skipped.
if ! grep -q "byte-identical records in every configuration" "$OUTDIR/fig_index.txt"; then
    echo "ERROR: fig_index did not confirm seed-store decision equivalence" >&2
    exit 1
fi
echo
echo "== seed-store decision-equivalence gate passed (fig_index) =="

# Request-folding equivalence gate: fig_folding asserts that the shared
# class-match cache never changes a release (byte-identical records, cache
# on vs off, every request seed) and that the cache actually hits, then
# prints the confirmation line below.  A cache-soundness regression fails
# this script even when the unit/property suites were skipped.
if ! grep -q "byte-identical releases with class cache on vs off" "$OUTDIR/fig_folding.txt"; then
    echo "ERROR: fig_folding did not confirm class-cache release equivalence" >&2
    exit 1
fi
echo
echo "== request-folding equivalence gate passed (fig_folding) =="

# Incremental-update equivalence gate: fig_update folds a mixed delta into a
# trained session and asserts every artifact — split subsets, structure,
# CPTs, marginals, sufficient statistics, posting lists, equivalence classes,
# and identically-seeded releases — is byte-identical to a from-scratch
# retrain on the post-delta dataset, printing the confirmation line below
# only after every assertion held.  (At full scale the binary additionally
# asserts the >= 100x update-vs-retrain speedup internally.)
if ! grep -q "matches a from-scratch retrain bit-for-bit" "$OUTDIR/fig_update.txt"; then
    echo "ERROR: fig_update did not confirm incremental-update equivalence" >&2
    exit 1
fi
echo
echo "== incremental-update equivalence gate passed (fig_update) =="

# Perf-trajectory gate: mirror the emitted benchmark documents to the repo
# root (handy for diffing / CI artifact upload) and compare the deterministic
# counters against the last BENCH_TRAJECTORY.jsonl entry recorded at the same
# (smoke, scale).  After an intentional perf change, refresh the baseline
# with: target/release/sgf-bench-track append --dir artifacts
echo
echo "== perf trajectory gate (sgf-bench-track compare) =="
cp "$OUTDIR"/BENCH_*.json .
target/release/sgf-bench-track compare --dir "$OUTDIR"

# Regenerate the human-readable tables from the same documents; the repo-root
# BENCH_NOTES.md is refreshed only by full-scale runs so smoke runs cannot
# overwrite the reference numbers.
target/release/sgf-bench-track notes --dir "$OUTDIR" --out "$OUTDIR/BENCH_NOTES.md"
if [ "$SMOKE" = 0 ]; then
    cp "$OUTDIR/BENCH_NOTES.md" BENCH_NOTES.md
    echo "regenerated BENCH_NOTES.md from $OUTDIR/BENCH_*.json"
fi

echo
echo "== done: artifacts written to $OUTDIR/ (reference wall clocks: BENCH_NOTES.md) =="
