//! Error type for the plausible-deniability mechanism.

use std::fmt;

/// Errors produced by the privacy tests, the release mechanism, and the
/// end-to-end pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A privacy parameter is outside its valid range (k < 1, γ ≤ 1, ε ≤ 0, ...).
    InvalidParameter(String),
    /// The seed dataset is too small for the requested privacy parameter k.
    DatasetTooSmall {
        /// Number of records available.
        available: usize,
        /// Minimum required (the privacy parameter k).
        required: usize,
    },
    /// Admitting the request would push the session's worst-case (ε, δ) —
    /// committed releases plus every outstanding reservation — past its cap.
    BudgetCapExceeded {
        /// Worst-case total if the request were admitted and fully released.
        requested: sgf_stats::DpBudget,
        /// The configured per-session cap.
        cap: sgf_stats::DpBudget,
    },
    /// Underlying dataset error.
    Data(sgf_data::DataError),
    /// Underlying model error.
    Model(sgf_model::ModelError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            CoreError::DatasetTooSmall { available, required } => write!(
                f,
                "seed dataset has {available} records but the privacy parameter requires at least {required}"
            ),
            CoreError::BudgetCapExceeded { requested, cap } => write!(
                f,
                "admitting the request would raise the worst-case budget to (ε = {}, δ = {}), \
                 past the session cap (ε = {}, δ = {})",
                requested.epsilon, requested.delta, cap.epsilon, cap.delta
            ),
            CoreError::Data(err) => write!(f, "data error: {err}"),
            CoreError::Model(err) => write!(f, "model error: {err}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Data(err) => Some(err),
            CoreError::Model(err) => Some(err),
            _ => None,
        }
    }
}

impl From<sgf_data::DataError> for CoreError {
    fn from(err: sgf_data::DataError) -> Self {
        CoreError::Data(err)
    }
}

impl From<sgf_model::ModelError> for CoreError {
    fn from(err: sgf_model::ModelError) -> Self {
        CoreError::Model(err)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let err = CoreError::DatasetTooSmall {
            available: 10,
            required: 50,
        };
        assert!(err.to_string().contains("10") && err.to_string().contains("50"));
        let from_data: CoreError = sgf_data::DataError::EmptyDataset.into();
        assert!(matches!(from_data, CoreError::Data(_)));
        let from_model: CoreError = sgf_model::ModelError::EmptyTrainingData.into();
        assert!(matches!(from_model, CoreError::Model(_)));
    }
}
