//! The (k, γ)-plausible-deniability criterion (Definition 1) and the
//! seed-partition machinery used by the privacy tests and the differential
//! privacy proof (Appendix C).
//!
//! Given a candidate synthetic `y`, records are partitioned by how likely they
//! are to have generated it: record `d` with `p_d(y) = Pr{y = M(d)} > 0` falls
//! into partition `I_d(y) = ⌊-log_γ p_d(y)⌋`, i.e. the unique integer `i ≥ 0`
//! with `γ^{-(i+1)} < p_d(y) ≤ γ^{-i}`.  Records in the same partition generate
//! `y` with probabilities within a factor γ of one another, which is exactly
//! the indistinguishability Definition 1 asks for.

use crate::error::{CoreError, Result};
use sgf_data::{Dataset, Record};
use sgf_model::GenerativeModel;

/// Validate the (k, γ) privacy parameters shared by the criterion and the tests.
pub fn validate_parameters(k: usize, gamma: f64) -> Result<()> {
    if k < 1 {
        return Err(CoreError::InvalidParameter("k must be at least 1".into()));
    }
    if !(gamma.is_finite() && gamma > 1.0) {
        return Err(CoreError::InvalidParameter(format!(
            "gamma must be a finite value strictly greater than 1, got {gamma}"
        )));
    }
    Ok(())
}

/// The partition index `I_d(y) = ⌊-log_γ p⌋` of a generation probability, or
/// `None` when the probability is zero (such records are not plausible seeds).
///
/// Probabilities above 1 (possible only through floating-point slack) are
/// clamped into partition 0.
pub fn partition_index(probability: f64, gamma: f64) -> Option<u32> {
    if probability.is_nan() || probability <= 0.0 {
        return None;
    }
    if probability >= 1.0 {
        return Some(0);
    }
    let raw = -probability.log(gamma);
    let mut i = raw.floor().max(0.0) as i32;
    // The logarithm is only a first guess: nudge the index so the defining
    // inequality γ^{-(i+1)} < p ≤ γ^{-i} (open below, closed above) holds
    // exactly under the same `powi` arithmetic used by callers and tests.
    let mut guard = 0;
    while i > 0 && gamma.powi(-i) < probability && guard < 4 {
        i -= 1;
        guard += 1;
    }
    guard = 0;
    while gamma.powi(-(i + 1)) >= probability && guard < 4 {
        i += 1;
        guard += 1;
    }
    Some(i as u32)
}

/// Count how many records of `dataset` fall into partition `target_partition`
/// for the candidate `y`, i.e. `|C_i(D, y)|`.
pub fn partition_size<M: GenerativeModel + ?Sized>(
    model: &M,
    dataset: &Dataset,
    y: &Record,
    gamma: f64,
    target_partition: u32,
) -> usize {
    dataset
        .records()
        .iter()
        .filter(|d| partition_index(model.probability(d, y), gamma) == Some(target_partition))
        .count()
}

/// Check the (k, γ)-plausible-deniability criterion of Definition 1 directly:
/// does the dataset contain at least `k - 1` records other than `seed` whose
/// probability of generating `y` is within a factor γ of every other member of
/// the set (including the seed)?
///
/// This is the *criterion*; the mechanism enforces it through the stricter
/// geometric-partition test (Privacy Test 1), which implies it — see
/// [`crate::privacy_test`].
pub fn satisfies_plausible_deniability<M: GenerativeModel + ?Sized>(
    model: &M,
    dataset: &Dataset,
    seed: &Record,
    y: &Record,
    k: usize,
    gamma: f64,
) -> Result<bool> {
    validate_parameters(k, gamma)?;
    if dataset.len() < k {
        return Err(CoreError::DatasetTooSmall {
            available: dataset.len(),
            required: k,
        });
    }
    let p_seed = model.probability(seed, y);
    if p_seed <= 0.0 {
        return Ok(false);
    }
    // Definition 1 asks for a set {d_1 = seed, d_2, ..., d_k} whose generation
    // probabilities are *pairwise* within a factor γ, i.e. they all fit inside
    // some multiplicative window [L, γL] that contains p_seed.  Collect the
    // probabilities of the other records and slide that window.
    // `D \ {d_1}` removes the seed *row*, not every record that happens to
    // share its values: skip exactly one instance equal to the seed.
    let mut seed_skipped = false;
    let mut others: Vec<f64> = Vec::with_capacity(dataset.len());
    for d in dataset.records() {
        if !seed_skipped && d == seed {
            seed_skipped = true;
            continue;
        }
        let p = model.probability(d, y);
        if p > 0.0 {
            others.push(p);
        }
    }
    if others.len() + 1 < k {
        return Ok(false);
    }
    // total_cmp: the `p > 0.0` filter above drops NaNs today, but the
    // deniability verdict is a decision path — its ordering must stay a
    // total order even if a future model emits one (see --explain R1).
    others.sort_by(f64::total_cmp);

    // Candidate window lower ends: p_seed itself and every other probability
    // that could sit at the bottom of a window still containing p_seed.
    let mut candidates: Vec<f64> = others
        .iter()
        .copied()
        .filter(|&v| v <= p_seed && v * gamma >= p_seed)
        .collect();
    candidates.push(p_seed);

    for lower in candidates {
        let upper = lower * gamma;
        let start = others.partition_point(|&p| p < lower);
        let end = others.partition_point(|&p| p <= upper);
        // The seed plus every other record inside [lower, γ·lower].
        if 1 + (end - start) >= k {
            return Ok(true);
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;
    use sgf_data::{Attribute, Schema};
    use sgf_model::GenerativeModel;
    use std::sync::Arc;

    /// A toy model whose generation probability depends only on the Hamming
    /// distance between seed and candidate: p = base^(distance+1).
    struct HammingModel {
        schema: Schema,
        base: f64,
    }

    impl GenerativeModel for HammingModel {
        fn schema(&self) -> &Schema {
            &self.schema
        }
        fn generate(&self, seed: &Record, _rng: &mut dyn RngCore) -> Record {
            seed.clone()
        }
        fn probability(&self, seed: &Record, y: &Record) -> f64 {
            self.base.powi(seed.hamming_distance(y) as i32 + 1)
        }
    }

    fn toy() -> (HammingModel, Dataset) {
        let schema = Schema::new(vec![
            Attribute::categorical_anon("A", 4),
            Attribute::categorical_anon("B", 4),
        ])
        .unwrap();
        let model = HammingModel {
            schema: schema.clone(),
            base: 0.25,
        };
        let records = vec![
            Record::new(vec![0, 0]),
            Record::new(vec![0, 1]),
            Record::new(vec![0, 2]),
            Record::new(vec![1, 0]),
            Record::new(vec![3, 3]),
        ];
        let dataset = Dataset::from_records_unchecked(Arc::new(schema), records);
        (model, dataset)
    }

    #[test]
    fn partition_index_respects_geometric_ranges() {
        let gamma = 2.0;
        // p in (1/2, 1] -> 0, (1/4, 1/2] -> 1, (1/8, 1/4] -> 2, ...
        assert_eq!(partition_index(1.0, gamma), Some(0));
        assert_eq!(partition_index(0.6, gamma), Some(0));
        assert_eq!(partition_index(0.5, gamma), Some(1));
        assert_eq!(partition_index(0.3, gamma), Some(1));
        assert_eq!(partition_index(0.25, gamma), Some(2));
        assert_eq!(partition_index(0.2, gamma), Some(2));
        assert_eq!(partition_index(0.0, gamma), None);
        assert_eq!(partition_index(-0.1, gamma), None);
        assert_eq!(partition_index(f64::NAN, gamma), None);
    }

    #[test]
    fn partition_index_boundaries_for_various_gamma() {
        for &gamma in &[1.5f64, 2.0, 4.0, 10.0] {
            for i in 0..20u32 {
                let p_upper = gamma.powi(-(i as i32));
                let p_inside = gamma.powi(-(i as i32)) * 0.999;
                assert_eq!(
                    partition_index(p_upper, gamma),
                    Some(i),
                    "upper bound gamma={gamma} i={i}"
                );
                if i > 0 || p_inside < 1.0 {
                    assert_eq!(
                        partition_index(p_inside, gamma),
                        Some(i),
                        "inside gamma={gamma} i={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn partition_size_counts_matching_records() {
        let (model, dataset) = toy();
        let y = Record::new(vec![0, 0]);
        let gamma = 4.0;
        // Probabilities: seed (0,0) -> 0.25 (partition 1), distance-1 records
        // (0,1),(0,2),(1,0) -> 0.0625 (partition 2), (3,3) -> 0.015625 (partition 3).
        assert_eq!(partition_size(&model, &dataset, &y, gamma, 1), 1);
        assert_eq!(partition_size(&model, &dataset, &y, gamma, 2), 3);
        assert_eq!(partition_size(&model, &dataset, &y, gamma, 3), 1);
        assert_eq!(partition_size(&model, &dataset, &y, gamma, 0), 0);
    }

    #[test]
    fn criterion_detects_enough_plausible_seeds() {
        let (model, dataset) = toy();
        let y = Record::new(vec![0, 0]);
        let seed = Record::new(vec![0, 1]);
        // From seed (0,1): p = 0.0625.  Records within a factor 4: the three
        // distance-1 records (p=0.0625) and the seed itself plus (0,0) with
        // p=0.25 (ratio 4, inclusive).  So 4 plausible seeds exist.
        assert!(satisfies_plausible_deniability(&model, &dataset, &seed, &y, 4, 4.0).unwrap());
        assert!(!satisfies_plausible_deniability(&model, &dataset, &seed, &y, 5, 4.0).unwrap());
        // With a tighter gamma the high-probability record (0,0) no longer counts.
        assert!(!satisfies_plausible_deniability(&model, &dataset, &seed, &y, 4, 2.0).unwrap());
        assert!(satisfies_plausible_deniability(&model, &dataset, &seed, &y, 3, 2.0).unwrap());
    }

    #[test]
    fn criterion_tolerates_nan_probabilities() {
        // Regression: the probability sort used
        // `partial_cmp(..).expect("probabilities are finite")`.  A model that
        // emits NaN for some record must neither panic the verdict nor let
        // the NaN count as a plausible seed.
        struct NanModel {
            inner: HammingModel,
        }
        impl GenerativeModel for NanModel {
            fn schema(&self) -> &Schema {
                self.inner.schema()
            }
            fn generate(&self, seed: &Record, rng: &mut dyn RngCore) -> Record {
                self.inner.generate(seed, rng)
            }
            fn probability(&self, seed: &Record, y: &Record) -> f64 {
                // The (3,3) outlier row turns degenerate.
                if seed == &Record::new(vec![3, 3]) {
                    f64::NAN
                } else {
                    self.inner.probability(seed, y)
                }
            }
        }
        let (inner, dataset) = toy();
        let model = NanModel { inner };
        let y = Record::new(vec![0, 0]);
        let seed = Record::new(vec![0, 1]);
        // Same verdicts as `criterion_detects_enough_plausible_seeds`: the
        // NaN row was never inside any window, so only the panic is new.
        assert!(satisfies_plausible_deniability(&model, &dataset, &seed, &y, 4, 4.0).unwrap());
        assert!(!satisfies_plausible_deniability(&model, &dataset, &seed, &y, 5, 4.0).unwrap());
    }

    #[test]
    fn criterion_validates_parameters() {
        let (model, dataset) = toy();
        let y = Record::new(vec![0, 0]);
        let seed = Record::new(vec![0, 0]);
        assert!(matches!(
            satisfies_plausible_deniability(&model, &dataset, &seed, &y, 0, 4.0),
            Err(CoreError::InvalidParameter(_))
        ));
        assert!(matches!(
            satisfies_plausible_deniability(&model, &dataset, &seed, &y, 2, 1.0),
            Err(CoreError::InvalidParameter(_))
        ));
        assert!(matches!(
            satisfies_plausible_deniability(&model, &dataset, &seed, &y, 100, 4.0),
            Err(CoreError::DatasetTooSmall { .. })
        ));
    }
}
