//! The privacy tests of Section 2.
//!
//! * **Privacy Test 1** (deterministic, `T`): locate the seed's partition
//!   `i = I_d(y)` and count how many records of the dataset fall into the same
//!   partition (the plausible seeds `k'`); pass iff `k' ≥ k`.
//! * **Privacy Test 2** (randomized, `T_{ε0}`): identical, except the
//!   threshold is `k̃ = k + Lap(1/ε0)` — the randomization that upgrades the
//!   mechanism to (ε, δ)-differential privacy (Theorem 1).
//!
//! Both tests support the implementation-level early-termination knobs of
//! Section 5 (`max_plausible`, `max_check_plausible`): counting stops as soon
//! as enough plausible seeds were found or a bounded number of records were
//! examined.  These knobs trade generation throughput against the fraction of
//! candidates that pass; they never weaken the privacy guarantee because a
//! candidate that terminates early without reaching the threshold is simply
//! rejected.
//!
//! ## Seed stores and decision equivalence
//!
//! [`run_with_store`] runs the same test against any [`SeedStore`]: the store
//! returns a sound superset of the records that can plausibly have generated
//! the candidate, and the exact γ-partition check runs only on the survivors.
//! The test is engineered so that **every store yields the same accept/reject
//! decision, plausible-seed count, and RNG stream** for the same inputs:
//!
//! * the pass/fail decision depends only on the *set* of eligible records
//!   (never on visit order), because counting stops at a fixed count
//!   threshold and skipped records are provably non-plausible;
//! * the `max_check_plausible` subset is derived from a single `u64` RNG draw
//!   via an O(1)-random-access permutation ([`RandomSubset`]), so scan and
//!   index examine the same eligible subset while consuming identical
//!   randomness — and the per-candidate O(n) shuffle of the naive
//!   implementation is gone.

use crate::deniability::{partition_index, validate_parameters};
use crate::error::{CoreError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};
use sgf_data::{Dataset, Record};
use sgf_index::{CandidateIter, LinearScanStore, RandomSubset, SeedStore};
use sgf_model::GenerativeModel;
use sgf_stats::Laplace;

/// Configuration of the privacy test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrivacyTestConfig {
    /// Plausible-deniability parameter k: minimum number of plausible seeds.
    pub k: usize,
    /// Indistinguishability parameter γ > 1.
    pub gamma: f64,
    /// Randomization parameter ε0 of Privacy Test 2; `None` selects the
    /// deterministic Privacy Test 1.
    pub epsilon0: Option<f64>,
    /// Stop counting once this many plausible seeds were found
    /// (the tool's `max_plausible`; `None` = count until the threshold).
    pub max_plausible: Option<usize>,
    /// Examine at most this many candidate seed records
    /// (the tool's `max_check_plausible`; `None` = examine the whole dataset).
    pub max_check_plausible: Option<usize>,
}

impl PrivacyTestConfig {
    /// Deterministic Privacy Test 1 with the given parameters.
    pub fn deterministic(k: usize, gamma: f64) -> Self {
        PrivacyTestConfig {
            k,
            gamma,
            epsilon0: None,
            max_plausible: None,
            max_check_plausible: None,
        }
    }

    /// Randomized Privacy Test 2 with the given parameters.
    pub fn randomized(k: usize, gamma: f64, epsilon0: f64) -> Self {
        PrivacyTestConfig {
            k,
            gamma,
            epsilon0: Some(epsilon0),
            max_plausible: None,
            max_check_plausible: None,
        }
    }

    /// Builder-style setter for the early-termination knobs of Section 5.
    pub fn with_limits(
        mut self,
        max_plausible: Option<usize>,
        max_check_plausible: Option<usize>,
    ) -> Self {
        self.max_plausible = max_plausible;
        self.max_check_plausible = max_check_plausible;
        self
    }

    /// Validate all parameters.
    pub fn validate(&self) -> Result<()> {
        validate_parameters(self.k, self.gamma)?;
        if let Some(eps) = self.epsilon0 {
            if !(eps.is_finite() && eps > 0.0) {
                return Err(CoreError::InvalidParameter(format!(
                    "epsilon0 must be positive and finite, got {eps}"
                )));
            }
        }
        if self.max_plausible == Some(0) {
            return Err(CoreError::InvalidParameter(
                "max_plausible must be at least 1".into(),
            ));
        }
        if self.max_check_plausible == Some(0) {
            return Err(CoreError::InvalidParameter(
                "max_check_plausible must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// The outcome of running a privacy test on one candidate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestOutcome {
    /// Whether the candidate may be released.
    pub passed: bool,
    /// The partition index `i = I_d(y)` of the seed, if the seed can generate
    /// the candidate at all.
    pub seed_partition: Option<u32>,
    /// Number of plausible seeds counted before the test stopped.
    pub plausible_seeds: usize,
    /// Number of dataset records examined (model-probability evaluations).
    pub records_examined: usize,
    /// The (possibly noisy) threshold the count was compared against.
    pub threshold: f64,
    /// Whether an indexed seed store narrowed the candidate set for this test
    /// (`false` for the full scan).
    pub via_index: bool,
    /// Whether the test counted whole likelihood-equivalence classes (one
    /// model evaluation per class, members counted with multiplicity) rather
    /// than individual records.  Implies nothing about `via_index`: class
    /// counting is a third, coarser granularity.
    pub via_classes: bool,
    /// Class-match cache consultation for this test: `None` when no cache
    /// was in play (no cache attached to the store, or the model does not
    /// qualify), `Some(true)` when the per-class match row was served from
    /// the session cache, `Some(false)` when this test computed (and stored)
    /// it.  Purely observational — decisions, counts, and the RNG stream are
    /// identical either way (see `sgf_index::ClassMatchCache`).
    pub cache_hit: Option<bool>,
}

/// Run the privacy test on the tuple `(M, D, d, y)` with the given
/// configuration, scanning the full seed dataset (the baseline store).
///
/// The dataset `D` here is the seed dataset the mechanism samples from
/// (`D_S`), and `d` must be the seed that generated `y`.
pub fn run_privacy_test<M, R>(
    model: &M,
    dataset: &Dataset,
    seed: &Record,
    y: &Record,
    config: &PrivacyTestConfig,
    rng: &mut R,
) -> Result<TestOutcome>
where
    M: GenerativeModel + ?Sized,
    R: Rng + ?Sized,
{
    let scan = LinearScanStore::new(dataset);
    run_with_store(model, dataset, &scan, seed, y, config, rng)
}

/// Run the privacy test against an explicit [`SeedStore`].
///
/// The store must index exactly the records of `dataset` (same length, same
/// order).  For any store, the accept/reject decision, the plausible-seed
/// count, and the randomness consumed are identical to the full scan; only
/// `records_examined` — the number of model-probability evaluations — shrinks
/// when the store prunes non-plausible records (see the module docs).
pub fn run_with_store<M, R>(
    model: &M,
    dataset: &Dataset,
    store: &dyn SeedStore,
    seed: &Record,
    y: &Record,
    config: &PrivacyTestConfig,
    rng: &mut R,
) -> Result<TestOutcome>
where
    M: GenerativeModel + ?Sized,
    R: Rng + ?Sized,
{
    config.validate()?;
    if dataset.len() < config.k {
        return Err(CoreError::DatasetTooSmall {
            available: dataset.len(),
            required: config.k,
        });
    }
    if store.len() != dataset.len() {
        return Err(CoreError::InvalidParameter(format!(
            "seed store indexes {} records but the seed dataset has {}",
            store.len(),
            dataset.len()
        )));
    }

    // Step 1 (Test 2 only): randomize the threshold with fresh Laplace noise.
    let threshold = match config.epsilon0 {
        None => config.k as f64,
        Some(eps) => config.k as f64 + Laplace::new(1.0 / eps).sample(rng),
    };

    // Step 2: the seed's partition.  A seed that cannot generate y at all
    // (probability 0) has no partition and the candidate is rejected.
    let p_seed = model.probability(seed, y);
    let seed_partition = match partition_index(p_seed, config.gamma) {
        Some(i) => i,
        None => {
            return Ok(TestOutcome {
                passed: false,
                seed_partition: None,
                plausible_seeds: 0,
                records_examined: 0,
                threshold,
                via_index: false,
                via_classes: false,
                cache_hit: None,
            })
        }
    };

    // Step 3: count the records in the seed's partition.  When
    // `max_check_plausible` caps how many records may be examined, the
    // eligible subset is chosen pseudorandomly (so the cap does not bias
    // which records get counted, Section 5) from a single RNG draw — the
    // same subset for every store, which keeps decisions store-independent.
    // Without the cap the decision is a pure set cardinality and needs no
    // randomness at all.
    let stop_at = config.max_plausible.map(|mp| mp.max(config.k));
    let examine_cap = config.max_check_plausible.unwrap_or(usize::MAX);
    let subset = if examine_cap < dataset.len() {
        Some(RandomSubset::new(dataset.len(), examine_cap, rng.gen()))
    } else {
        None
    };

    // Class-level fast path: a partition-aware store collapses seeds into
    // likelihood-equivalence classes — every member shares the representative's
    // generation probability for every candidate — so the γ-partition check
    // runs once per class and members count with multiplicity.  The stopping
    // rule is replayed member-by-member below, so the reported plausible count
    // (and hence the decision) is bit-identical to the record-level walk; the
    // threshold and subset randomness were already drawn above, identically
    // for every store, so the RNG stream matches too.
    if let Some(classes) = store.likelihood_classes(
        y,
        model.likelihood_attributes(),
        model.exact_match_attributes(),
    ) {
        // Consult the shared class-match cache first: when the model's
        // likelihood set is contained in its exact-match set, the per-class
        // partition comparison below is independent of the seed, of γ, and
        // of all request randomness, so its row of booleans is computed once
        // per candidate projection and shared across requests.  The closure
        // is pure (no RNG, no shared state); a miss differs from the
        // uncached path only in evaluating every class eagerly.
        let lookup = store.class_match_row(
            y,
            model.likelihood_attributes(),
            model.exact_match_attributes(),
            &mut |representative| {
                let p = model.probability(dataset.record(representative), y);
                partition_index(p, config.gamma) == Some(seed_partition)
            },
        );
        let cache_hit = lookup.as_ref().map(|l| l.hit);
        let mut plausible = 0usize;
        let mut examined = 0usize;
        let mut stopped = false;
        for class in classes {
            examined += 1;
            let in_partition = match &lookup {
                Some(lookup) => lookup.row[class.index],
                None => {
                    let p = model.probability(dataset.record(class.representative), y);
                    partition_index(p, config.gamma) == Some(seed_partition)
                }
            };
            if !in_partition {
                continue;
            }
            // Count the class members one at a time — restricted to the
            // examined subset when one is in force — replaying the
            // record-level stopping rule per member, so the count freezes at
            // exactly the same value as the scan and no membership tests are
            // paid past the stopping point.
            for &member in class.members {
                if subset
                    .as_ref()
                    .is_some_and(|subset| !subset.contains(member as usize))
                {
                    continue;
                }
                plausible += 1;
                let enough_for_threshold = plausible as f64 >= threshold;
                let reached_cap = stop_at.is_some_and(|cap| plausible >= cap);
                if enough_for_threshold || reached_cap {
                    stopped = true;
                    break;
                }
            }
            if stopped {
                break;
            }
        }
        return Ok(TestOutcome {
            passed: plausible as f64 >= threshold,
            seed_partition: Some(seed_partition),
            plausible_seeds: plausible,
            records_examined: examined,
            threshold,
            via_index: false,
            via_classes: true,
            cache_hit,
        });
    }

    let candidates = store.plausible_candidates(y, model.exact_match_attributes());
    let via_index = candidates.is_filtered();

    let mut plausible = 0usize;
    let mut examined = 0usize;
    // Examine one record; returns true when counting may stop early.
    let mut examine = |idx: usize| -> bool {
        examined += 1;
        let p = model.probability(dataset.record(idx), y);
        if partition_index(p, config.gamma) == Some(seed_partition) {
            plausible += 1;
            // Deterministic test: k' >= k can be decided as soon as k is hit.
            // Randomized test: stop at max_plausible (if configured) or once
            // the count exceeds the (noisy) threshold.
            let enough_for_threshold = plausible as f64 >= threshold;
            let reached_cap = stop_at.is_some_and(|cap| plausible >= cap);
            if enough_for_threshold || reached_cap {
                return true;
            }
        }
        false
    };
    match (candidates, &subset) {
        // Unfiltered store + examine cap: enumerate the eligible subset
        // directly (O(cap)) instead of filtering all n indices through it.
        (CandidateIter::All(_), Some(subset)) => {
            for idx in subset.iter() {
                if examine(idx) {
                    break;
                }
            }
        }
        // Filtered store + examine cap: membership-test each survivor.
        (iter, Some(subset)) => {
            for idx in iter {
                if subset.contains(idx) && examine(idx) {
                    break;
                }
            }
        }
        // No examine cap: walk every candidate the store returns.
        (iter, None) => {
            for idx in iter {
                if examine(idx) {
                    break;
                }
            }
        }
    }

    // Step 4: compare against the (possibly noisy) threshold.
    Ok(TestOutcome {
        passed: plausible as f64 >= threshold,
        seed_partition: Some(seed_partition),
        plausible_seeds: plausible,
        records_examined: examined,
        threshold,
        via_index,
        via_classes: false,
        cache_hit: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use sgf_data::{Attribute, Schema};
    use std::sync::Arc;

    /// Toy model: probability depends only on the Hamming distance.
    struct HammingModel {
        schema: Schema,
        base: f64,
    }

    impl GenerativeModel for HammingModel {
        fn schema(&self) -> &Schema {
            &self.schema
        }
        fn generate(&self, seed: &Record, _rng: &mut dyn RngCore) -> Record {
            seed.clone()
        }
        fn probability(&self, seed: &Record, y: &Record) -> f64 {
            self.base.powi(seed.hamming_distance(y) as i32 + 1)
        }
    }

    /// Dataset with `close` records identical to the seed region and a few far-away ones.
    fn toy(close: usize, far: usize) -> (HammingModel, Dataset, Record) {
        let schema = Schema::new(vec![
            Attribute::categorical_anon("A", 8),
            Attribute::categorical_anon("B", 8),
        ])
        .unwrap();
        let model = HammingModel {
            schema: schema.clone(),
            base: 0.25,
        };
        let mut records = Vec::new();
        for _ in 0..close {
            records.push(Record::new(vec![0, 0]));
        }
        for j in 0..far {
            records.push(Record::new(vec![5, (j % 8) as u16]));
        }
        let dataset = Dataset::from_records_unchecked(Arc::new(schema), records);
        (model, dataset, Record::new(vec![0, 0]))
    }

    #[test]
    fn deterministic_test_passes_with_enough_plausible_seeds() {
        let (model, dataset, seed) = toy(10, 5);
        let y = Record::new(vec![0, 0]);
        let mut rng = StdRng::seed_from_u64(1);
        let config = PrivacyTestConfig::deterministic(10, 4.0);
        let outcome = run_privacy_test(&model, &dataset, &seed, &y, &config, &mut rng).unwrap();
        assert!(outcome.passed);
        assert_eq!(outcome.seed_partition, Some(1));
        assert!(outcome.plausible_seeds >= 10);
        assert_eq!(outcome.threshold, 10.0);

        let strict = PrivacyTestConfig::deterministic(11, 4.0);
        let outcome = run_privacy_test(&model, &dataset, &seed, &y, &strict, &mut rng).unwrap();
        assert!(!outcome.passed);
        assert_eq!(outcome.plausible_seeds, 10);
    }

    #[test]
    fn zero_probability_seed_is_rejected() {
        let (model, dataset, _) = toy(10, 5);
        // A model probability of zero cannot happen with the Hamming model, so
        // craft it via a seed record of mismatching arity semantics: use a model
        // with base 0 instead.
        let zero_model = HammingModel {
            schema: model.schema.clone(),
            base: 0.0,
        };
        let y = Record::new(vec![0, 0]);
        let seed = Record::new(vec![0, 0]);
        let mut rng = StdRng::seed_from_u64(2);
        let config = PrivacyTestConfig::deterministic(2, 4.0);
        let outcome =
            run_privacy_test(&zero_model, &dataset, &seed, &y, &config, &mut rng).unwrap();
        assert!(!outcome.passed);
        assert_eq!(outcome.seed_partition, None);
    }

    #[test]
    fn randomized_test_pass_rate_tracks_threshold_noise() {
        // With exactly k plausible seeds the deterministic test always passes,
        // while the randomized test fails roughly half the time (whenever the
        // Laplace noise is positive).
        let (model, dataset, seed) = toy(20, 10);
        let y = Record::new(vec![0, 0]);
        let mut rng = StdRng::seed_from_u64(3);
        let det = PrivacyTestConfig::deterministic(20, 4.0);
        assert!(
            run_privacy_test(&model, &dataset, &seed, &y, &det, &mut rng)
                .unwrap()
                .passed
        );

        let rand_cfg = PrivacyTestConfig::randomized(20, 4.0, 1.0);
        let trials = 400;
        let passes = (0..trials)
            .filter(|_| {
                run_privacy_test(&model, &dataset, &seed, &y, &rand_cfg, &mut rng)
                    .unwrap()
                    .passed
            })
            .count();
        let rate = passes as f64 / trials as f64;
        assert!((0.35..=0.65).contains(&rate), "pass rate {rate}");
    }

    #[test]
    fn randomized_test_almost_always_passes_with_many_plausible_seeds() {
        let (model, dataset, seed) = toy(200, 10);
        let y = Record::new(vec![0, 0]);
        let mut rng = StdRng::seed_from_u64(4);
        let config = PrivacyTestConfig::randomized(50, 4.0, 1.0);
        let passes = (0..100)
            .filter(|_| {
                run_privacy_test(&model, &dataset, &seed, &y, &config, &mut rng)
                    .unwrap()
                    .passed
            })
            .count();
        assert!(passes >= 99, "passes {passes}");
    }

    #[test]
    fn early_termination_limits_examined_records() {
        let (model, dataset, seed) = toy(500, 500);
        let y = Record::new(vec![0, 0]);
        let mut rng = StdRng::seed_from_u64(5);
        let config = PrivacyTestConfig::deterministic(10, 4.0).with_limits(Some(10), Some(50));
        let outcome = run_privacy_test(&model, &dataset, &seed, &y, &config, &mut rng).unwrap();
        assert!(outcome.records_examined <= 50);
        // max_check_plausible can cause a rejection even when the full dataset
        // would have passed — but with 50% close records and k=10 the cap of 50
        // examined records nearly always suffices.
        assert!(outcome.passed);

        let tight = PrivacyTestConfig::deterministic(100, 4.0).with_limits(None, Some(20));
        let outcome = run_privacy_test(&model, &dataset, &seed, &y, &tight, &mut rng).unwrap();
        assert!(!outcome.passed);
        assert_eq!(outcome.records_examined, 20);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let (model, dataset, seed) = toy(10, 0);
        let y = Record::new(vec![0, 0]);
        let mut rng = StdRng::seed_from_u64(6);
        for config in [
            PrivacyTestConfig::deterministic(0, 4.0),
            PrivacyTestConfig::deterministic(5, 1.0),
            PrivacyTestConfig::randomized(5, 4.0, 0.0),
            PrivacyTestConfig::deterministic(5, 4.0).with_limits(Some(0), None),
            PrivacyTestConfig::deterministic(5, 4.0).with_limits(None, Some(0)),
        ] {
            assert!(run_privacy_test(&model, &dataset, &seed, &y, &config, &mut rng).is_err());
        }
        // Dataset smaller than k.
        let config = PrivacyTestConfig::deterministic(50, 4.0);
        assert!(matches!(
            run_privacy_test(&model, &dataset, &seed, &y, &config, &mut rng),
            Err(CoreError::DatasetTooSmall { .. })
        ));
    }

    /// Model with an explicit agreement guarantee on attribute 0: a seed can
    /// generate y only when it matches y there; otherwise probability decays
    /// with the Hamming distance of the remaining attributes.
    struct MatchFirstModel {
        schema: Schema,
        matched: [usize; 1],
    }

    impl GenerativeModel for MatchFirstModel {
        fn schema(&self) -> &Schema {
            &self.schema
        }
        fn generate(&self, seed: &Record, _rng: &mut dyn RngCore) -> Record {
            seed.clone()
        }
        fn probability(&self, seed: &Record, y: &Record) -> f64 {
            if seed.get(0) != y.get(0) {
                return 0.0;
            }
            let rest = usize::from(seed.get(1) != y.get(1));
            0.25f64.powi(rest as i32 + 1)
        }
        fn exact_match_attributes(&self) -> Option<&[usize]> {
            Some(&self.matched)
        }
    }

    fn match_first_setup() -> (MatchFirstModel, Dataset, sgf_index::InvertedIndexStore) {
        let schema = Schema::new(vec![
            Attribute::categorical_anon("A", 8),
            Attribute::categorical_anon("B", 8),
        ])
        .unwrap();
        let model = MatchFirstModel {
            schema: schema.clone(),
            matched: [0],
        };
        let mut records = Vec::new();
        for g in 0..8u16 {
            for v in 0..8u16 {
                records.push(Record::new(vec![g, v]));
                records.push(Record::new(vec![g, v]));
            }
        }
        let dataset = Dataset::from_records_unchecked(Arc::new(schema), records);
        let bkt = sgf_data::Bucketizer::identity(dataset.schema());
        let index = sgf_index::InvertedIndexStore::build(&dataset, &bkt, &[1.0, 0.5], 4).unwrap();
        (model, dataset, index)
    }

    #[test]
    fn index_store_matches_scan_decisions_and_counts() {
        let (model, dataset, index) = match_first_setup();
        let scan = sgf_index::LinearScanStore::new(&dataset);
        let seed = Record::new(vec![3, 3]);
        let y = Record::new(vec![3, 3]);
        for config in [
            PrivacyTestConfig::deterministic(10, 4.0),
            PrivacyTestConfig::deterministic(20, 4.0),
            PrivacyTestConfig::randomized(10, 4.0, 1.0),
            PrivacyTestConfig::deterministic(10, 4.0).with_limits(Some(12), Some(40)),
            PrivacyTestConfig::randomized(10, 4.0, 0.5).with_limits(Some(12), Some(40)),
            PrivacyTestConfig::deterministic(100, 4.0).with_limits(None, Some(30)),
        ] {
            for master in 0..20u64 {
                let mut rng_a = StdRng::seed_from_u64(master);
                let mut rng_b = StdRng::seed_from_u64(master);
                let a = run_with_store(&model, &dataset, &scan, &seed, &y, &config, &mut rng_a)
                    .unwrap();
                let b = run_with_store(&model, &dataset, &index, &seed, &y, &config, &mut rng_b)
                    .unwrap();
                assert_eq!(a.passed, b.passed, "config {config:?} master {master}");
                assert_eq!(a.plausible_seeds, b.plausible_seeds);
                assert_eq!(a.threshold, b.threshold);
                assert_eq!(a.seed_partition, b.seed_partition);
                assert!(!a.via_index);
                assert!(b.via_index);
                // Identical downstream RNG state: same consumption in the test.
                assert_eq!(rng_a.next_u64(), rng_b.next_u64());
            }
        }
    }

    #[test]
    fn index_store_examines_fewer_records() {
        let (model, dataset, index) = match_first_setup();
        let scan = sgf_index::LinearScanStore::new(&dataset);
        let seed = Record::new(vec![3, 3]);
        let y = Record::new(vec![3, 3]);
        // No early termination: the scan examines everything, the index only
        // the 16 records sharing attribute A with the candidate.
        let config = PrivacyTestConfig::deterministic(20, 4.0);
        let mut rng = StdRng::seed_from_u64(1);
        let a = run_with_store(&model, &dataset, &scan, &seed, &y, &config, &mut rng).unwrap();
        let b = run_with_store(&model, &dataset, &index, &seed, &y, &config, &mut rng).unwrap();
        assert_eq!(a.passed, b.passed);
        assert_eq!(b.records_examined, 16);
        assert!(a.records_examined > b.records_examined);
    }

    #[test]
    fn store_size_mismatch_is_rejected() {
        let (model, dataset, _) = match_first_setup();
        let wrong = sgf_index::LinearScanStore::with_len(dataset.len() + 1);
        let seed = Record::new(vec![0, 0]);
        let mut rng = StdRng::seed_from_u64(2);
        let config = PrivacyTestConfig::deterministic(5, 4.0);
        assert!(matches!(
            run_with_store(&model, &dataset, &wrong, &seed, &seed, &config, &mut rng),
            Err(CoreError::InvalidParameter(_))
        ));
    }

    #[test]
    fn passing_test_implies_definition_one() {
        // Privacy Test 1 is strictly stronger than Definition 1: whenever the
        // test passes, the plausible-deniability criterion holds as well.
        let (model, dataset, seed) = toy(15, 40);
        let y = Record::new(vec![0, 0]);
        let mut rng = StdRng::seed_from_u64(7);
        let config = PrivacyTestConfig::deterministic(12, 3.0);
        let outcome = run_privacy_test(&model, &dataset, &seed, &y, &config, &mut rng).unwrap();
        if outcome.passed {
            assert!(crate::deniability::satisfies_plausible_deniability(
                &model, &dataset, &seed, &y, 12, 3.0
            )
            .unwrap());
        }
    }
}
