//! Mechanism 1 (`F`): sample a seed, generate a candidate synthetic record,
//! subject it to the privacy test, and release it only on a pass.

use crate::error::{CoreError, Result};
use crate::privacy_test::{run_with_store, PrivacyTestConfig, TestOutcome};
use rand::Rng;
use serde::{Deserialize, Serialize};
use sgf_data::{Dataset, Record};
use sgf_index::{LinearScanStore, SeedStore};
use sgf_model::GenerativeModel;

/// One released (or rejected) candidate together with the test diagnostics.
#[derive(Debug, Clone)]
pub struct CandidateReport {
    /// The candidate synthetic record.
    pub record: Record,
    /// Index of the seed in the seed dataset.
    pub seed_index: usize,
    /// Outcome of the privacy test.
    pub outcome: TestOutcome,
}

impl CandidateReport {
    /// Whether the candidate may be released.
    pub fn released(&self) -> bool {
        self.outcome.passed
    }
}

/// Aggregate statistics over a batch of mechanism invocations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MechanismStats {
    /// Number of candidates generated.
    pub candidates: usize,
    /// Number of candidates that passed the privacy test.
    pub released: usize,
    /// Total number of seed records examined by the privacy tests
    /// (model-probability evaluations — the dominant cost of the test).
    pub records_examined: usize,
    /// Privacy tests served by an indexed seed store (posting-list pruning).
    pub index_tests: usize,
    /// Privacy tests served by the full linear scan.
    pub scan_tests: usize,
    /// Privacy tests served at likelihood-equivalence-class granularity (one
    /// model evaluation per class, members counted with multiplicity); for
    /// these, `records_examined` counts classes examined.
    pub partition_tests: usize,
    /// Class-granularity tests whose per-class match row was served from the
    /// session's class-match cache (no model evaluations at all; for these,
    /// `records_examined` still counts the classes iterated).
    pub class_cache_hits: usize,
    /// Class-granularity tests that computed (and stored) their match row on
    /// a cache miss.  Tests without a cache in play count in neither bucket.
    pub class_cache_misses: usize,
}

impl MechanismStats {
    /// Fraction of candidates that passed the privacy test.
    pub fn pass_rate(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.released as f64 / self.candidates as f64
        }
    }

    /// Record the per-test counters of one proposed candidate (everything
    /// except `released`, which callers manage — under parallel generation a
    /// passing candidate only counts as released once it wins a slot).
    pub fn observe(&mut self, outcome: &TestOutcome) {
        self.candidates += 1;
        self.records_examined += outcome.records_examined;
        if outcome.via_classes {
            self.partition_tests += 1;
        } else if outcome.via_index {
            self.index_tests += 1;
        } else {
            self.scan_tests += 1;
        }
        match outcome.cache_hit {
            Some(true) => self.class_cache_hits += 1,
            Some(false) => self.class_cache_misses += 1,
            None => {}
        }
    }

    /// Merge the statistics of another batch into this one.
    pub fn merge(&mut self, other: &MechanismStats) {
        self.candidates += other.candidates;
        self.released += other.released;
        self.records_examined += other.records_examined;
        self.index_tests += other.index_tests;
        self.scan_tests += other.scan_tests;
        self.partition_tests += other.partition_tests;
        self.class_cache_hits += other.class_cache_hits;
        self.class_cache_misses += other.class_cache_misses;
    }

    /// Render the counters as a JSON object, so services and the bench
    /// binaries can emit machine-readable reports.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"candidates\":{},\"released\":{},\"records_examined\":{},\"index_tests\":{},\"scan_tests\":{},\"partition_tests\":{},\"class_cache_hits\":{},\"class_cache_misses\":{},\"pass_rate\":{}}}",
            self.candidates,
            self.released,
            self.records_examined,
            self.index_tests,
            self.scan_tests,
            self.partition_tests,
            self.class_cache_hits,
            self.class_cache_misses,
            crate::dp::json_f64(self.pass_rate())
        )
    }
}

/// One invocation of Mechanism 1 against an explicit model, seed dataset, and
/// test configuration: sample a seed uniformly, generate a candidate, test it
/// with the full linear scan.
///
/// This is the validation-free hot path shared by [`Mechanism::propose`] and
/// the owning session iterators; callers are responsible for having validated
/// `test` (and the seed store size) up front, e.g. via [`Mechanism::new`].
pub fn propose_candidate<M: GenerativeModel + ?Sized, R: Rng + ?Sized>(
    model: &M,
    seeds: &Dataset,
    test: &PrivacyTestConfig,
    rng: &mut R,
) -> Result<CandidateReport> {
    let scan = LinearScanStore::new(seeds);
    propose_candidate_with_store(model, seeds, &scan, test, rng)
}

/// [`propose_candidate`] against an explicit [`SeedStore`] (e.g. the
/// inverted index a trained session builds over its seed dataset).
///
/// Store choice never changes which candidates pass: decisions, plausible
/// counts, and RNG consumption are store-independent (see
/// [`crate::privacy_test::run_with_store`]); only the number of records the
/// test must examine shrinks.
pub fn propose_candidate_with_store<M: GenerativeModel + ?Sized, R: Rng + ?Sized>(
    model: &M,
    seeds: &Dataset,
    store: &dyn SeedStore,
    test: &PrivacyTestConfig,
    rng: &mut R,
) -> Result<CandidateReport> {
    let seed_index = rng.gen_range(0..seeds.len());
    let seed = seeds.record(seed_index);
    let candidate = model.generate(seed, &mut as_dyn(rng));
    let outcome = run_with_store(model, seeds, store, seed, &candidate, test, rng)?;
    Ok(CandidateReport {
        record: candidate,
        seed_index,
        outcome,
    })
}

/// The plausible-deniability release mechanism (Mechanism 1).
#[derive(Debug, Clone)]
pub struct Mechanism<'a, M: GenerativeModel + ?Sized> {
    model: &'a M,
    seeds: &'a Dataset,
    store: Option<&'a dyn SeedStore>,
    test: PrivacyTestConfig,
}

impl<'a, M: GenerativeModel + ?Sized> Mechanism<'a, M> {
    /// Create the mechanism over a generative model and a seed dataset `D_S`,
    /// testing candidates with the full linear scan.
    pub fn new(model: &'a M, seeds: &'a Dataset, test: PrivacyTestConfig) -> Result<Self> {
        Self::build(model, seeds, None, test)
    }

    /// Create the mechanism with an indexed [`SeedStore`] over the same seed
    /// dataset; the privacy test only examines the store's survivors.
    pub fn with_store(
        model: &'a M,
        seeds: &'a Dataset,
        store: &'a dyn SeedStore,
        test: PrivacyTestConfig,
    ) -> Result<Self> {
        if store.len() != seeds.len() {
            return Err(CoreError::InvalidParameter(format!(
                "seed store indexes {} records but the seed dataset has {}",
                store.len(),
                seeds.len()
            )));
        }
        Self::build(model, seeds, Some(store), test)
    }

    fn build(
        model: &'a M,
        seeds: &'a Dataset,
        store: Option<&'a dyn SeedStore>,
        test: PrivacyTestConfig,
    ) -> Result<Self> {
        test.validate()?;
        if seeds.len() < test.k {
            return Err(CoreError::DatasetTooSmall {
                available: seeds.len(),
                required: test.k,
            });
        }
        if seeds.schema() != model.schema() {
            return Err(CoreError::InvalidParameter(
                "seed dataset schema does not match the generative model schema".into(),
            ));
        }
        Ok(Mechanism {
            model,
            seeds,
            store,
            test,
        })
    }

    /// The privacy-test configuration in force.
    pub fn test_config(&self) -> &PrivacyTestConfig {
        &self.test
    }

    /// Run one invocation of Mechanism 1: sample a seed uniformly at random,
    /// generate a candidate, and test it.  The returned report carries the
    /// candidate whether or not it passed; callers must release only records
    /// with `outcome.passed == true`.
    pub fn propose<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<CandidateReport> {
        match self.store {
            Some(store) => {
                propose_candidate_with_store(self.model, self.seeds, store, &self.test, rng)
            }
            None => propose_candidate(self.model, self.seeds, &self.test, rng),
        }
    }

    /// Run the mechanism `candidates` times and collect the released records.
    pub fn release_batch<R: Rng + ?Sized>(
        &self,
        candidates: usize,
        rng: &mut R,
    ) -> Result<(Vec<Record>, MechanismStats)> {
        let mut stats = MechanismStats::default();
        let mut released = Vec::new();
        for _ in 0..candidates {
            let report = self.propose(rng)?;
            stats.observe(&report.outcome);
            if report.released() {
                stats.released += 1;
                released.push(report.record);
            }
        }
        Ok((released, stats))
    }

    /// Keep proposing candidates until `target` records were released or
    /// `max_candidates` proposals were spent, whichever happens first.
    pub fn release_until<R: Rng + ?Sized>(
        &self,
        target: usize,
        max_candidates: usize,
        rng: &mut R,
    ) -> Result<(Vec<Record>, MechanismStats)> {
        let mut stats = MechanismStats::default();
        let mut released = Vec::with_capacity(target);
        while released.len() < target && stats.candidates < max_candidates {
            let report = self.propose(rng)?;
            stats.observe(&report.outcome);
            if report.released() {
                stats.released += 1;
                released.push(report.record);
            }
        }
        Ok((released, stats))
    }
}

/// Adapt a generic `Rng` into the `dyn RngCore` the object-safe
/// [`GenerativeModel::generate`] signature expects.
fn as_dyn<R: Rng + ?Sized>(rng: &mut R) -> impl rand::RngCore + '_ {
    DynRng { inner: rng }
}

struct DynRng<'a, R: Rng + ?Sized> {
    inner: &'a mut R,
}

impl<R: Rng + ?Sized> rand::RngCore for DynRng<'_, R> {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> std::result::Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use sgf_data::{Attribute, Schema};
    use std::sync::Arc;

    /// Model that flips the last attribute uniformly and keeps the rest.
    struct FlipLastModel {
        schema: Schema,
    }

    impl GenerativeModel for FlipLastModel {
        fn schema(&self) -> &Schema {
            &self.schema
        }
        fn generate(&self, seed: &Record, rng: &mut dyn RngCore) -> Record {
            let mut y = seed.clone();
            let last = self.schema.len() - 1;
            let card = self.schema.cardinality(last) as u32;
            y.set(last, (rng.next_u32() % card) as u16);
            y
        }
        fn probability(&self, seed: &Record, y: &Record) -> f64 {
            let last = self.schema.len() - 1;
            for attr in 0..last {
                if seed.get(attr) != y.get(attr) {
                    return 0.0;
                }
            }
            1.0 / self.schema.cardinality(last) as f64
        }
    }

    fn setup(groups: usize, per_group: usize) -> (FlipLastModel, Dataset) {
        let schema = Schema::new(vec![
            Attribute::categorical_anon("G", groups.max(2)),
            Attribute::categorical_anon("V", 4),
        ])
        .unwrap();
        let mut records = Vec::new();
        for g in 0..groups {
            for v in 0..per_group {
                records.push(Record::new(vec![g as u16, (v % 4) as u16]));
            }
        }
        let dataset = Dataset::from_records_unchecked(Arc::new(schema.clone()), records);
        (FlipLastModel { schema }, dataset)
    }

    #[test]
    fn released_records_always_pass_and_have_plausible_seeds() {
        let (model, seeds) = setup(4, 30);
        let mechanism =
            Mechanism::new(&model, &seeds, PrivacyTestConfig::deterministic(20, 4.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let (released, stats) = mechanism.release_batch(200, &mut rng).unwrap();
        assert_eq!(stats.candidates, 200);
        assert_eq!(stats.released, released.len());
        // Every group has 30 records in the same partition, so everything passes.
        assert_eq!(stats.released, 200);
        assert!((stats.pass_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn too_strict_k_rejects_everything() {
        let (model, seeds) = setup(4, 30);
        let mechanism =
            Mechanism::new(&model, &seeds, PrivacyTestConfig::deterministic(31, 4.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let (released, stats) = mechanism.release_batch(100, &mut rng).unwrap();
        assert!(released.is_empty());
        assert_eq!(stats.pass_rate(), 0.0);
    }

    #[test]
    fn release_until_stops_at_target() {
        let (model, seeds) = setup(4, 30);
        let mechanism =
            Mechanism::new(&model, &seeds, PrivacyTestConfig::deterministic(10, 4.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let (released, stats) = mechanism.release_until(25, 10_000, &mut rng).unwrap();
        assert_eq!(released.len(), 25);
        assert!(stats.candidates >= 25);
        // And respects the candidate cap when the target is unreachable.
        let strict =
            Mechanism::new(&model, &seeds, PrivacyTestConfig::deterministic(31, 4.0)).unwrap();
        let (released, stats) = strict.release_until(5, 50, &mut rng).unwrap();
        assert!(released.is_empty());
        assert_eq!(stats.candidates, 50);
    }

    #[test]
    fn construction_validates_inputs() {
        let (model, seeds) = setup(2, 5);
        assert!(matches!(
            Mechanism::new(&model, &seeds, PrivacyTestConfig::deterministic(100, 4.0)),
            Err(CoreError::DatasetTooSmall { .. })
        ));
        assert!(Mechanism::new(&model, &seeds, PrivacyTestConfig::deterministic(5, 0.5)).is_err());

        // Schema mismatch.
        let other_schema = Schema::new(vec![Attribute::categorical_anon("X", 2)]).unwrap();
        let other_model = FlipLastModel {
            schema: other_schema,
        };
        assert!(matches!(
            Mechanism::new(
                &other_model,
                &seeds,
                PrivacyTestConfig::deterministic(5, 4.0)
            ),
            Err(CoreError::InvalidParameter(_))
        ));
    }

    #[test]
    fn stats_merge_adds_counters() {
        let mut a = MechanismStats {
            candidates: 10,
            released: 4,
            records_examined: 100,
            index_tests: 6,
            scan_tests: 4,
            partition_tests: 0,
            class_cache_hits: 0,
            class_cache_misses: 0,
        };
        let b = MechanismStats {
            candidates: 5,
            released: 5,
            records_examined: 50,
            index_tests: 0,
            scan_tests: 2,
            partition_tests: 3,
            class_cache_hits: 2,
            class_cache_misses: 1,
        };
        a.merge(&b);
        assert_eq!(a.candidates, 15);
        assert_eq!(a.released, 9);
        assert_eq!(a.records_examined, 150);
        assert_eq!(a.index_tests, 6);
        assert_eq!(a.scan_tests, 6);
        assert_eq!(a.partition_tests, 3);
        assert_eq!(a.class_cache_hits, 2);
        assert_eq!(a.class_cache_misses, 1);
        assert!((a.pass_rate() - 0.6).abs() < 1e-12);
        assert_eq!(MechanismStats::default().pass_rate(), 0.0);
    }

    #[test]
    fn kept_attributes_of_released_records_come_from_real_seeds() {
        let (model, seeds) = setup(4, 30);
        let mechanism =
            Mechanism::new(&model, &seeds, PrivacyTestConfig::deterministic(10, 4.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let report = mechanism.propose(&mut rng).unwrap();
        let seed = seeds.record(report.seed_index);
        assert_eq!(report.record.get(0), seed.get(0));
    }
}
