//! The one-shot synthesis pipeline: split the input dataset, learn the
//! (privacy-preserving) generative model, and run the plausible-deniability
//! mechanism — in parallel — until the requested number of synthetic records
//! has been released.
//!
//! This is the Rust equivalent of the paper's C++ tool (Section 5): the
//! configuration mirrors the tool's config file (privacy parameters k, γ, ε0,
//! the generative-model parameter ω, and the early-termination knobs).
//!
//! [`SynthesisPipeline::run`] is kept as a thin compatibility wrapper over the
//! staged [`crate::session`] API (builder → [`crate::SynthesisSession`] → one
//! `generate`); services that issue more than one release request should use
//! the session directly so the model is learned once and the cumulative
//! privacy ledger spans every request.  For serving releases over the network
//! — with a bounded request queue and an (ε, δ) admission cap enforced
//! through the ledger's reserve/commit protocol — see the `sgf-serve` crate.

use crate::dp::PipelineBudget;
use crate::error::{CoreError, Result};
use crate::mechanism::MechanismStats;
use crate::privacy_test::PrivacyTestConfig;
use crate::session::{GenerateRequest, SynthesisEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use sgf_data::{Bucketizer, DataSplit, Dataset, Record, SplitSpec};
use sgf_index::SeedIndex;
use sgf_model::{
    learn_structure_from_counts, BayesNetModel, CptStore, LearnedStructure, MarginalConfig,
    MarginalCounts, MarginalModel, OmegaSpec, ParameterConfig, SeedSynthesizer, StructureConfig,
    StructureCounts,
};
use std::sync::Arc;
use std::time::Duration;

/// Configuration of the full pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// How to split the input dataset into D_T / D_P / D_S / test.
    pub split: SplitSpec,
    /// Structure-learning configuration (Section 3.3).
    pub structure: StructureConfig,
    /// Parameter-learning configuration (Section 3.4).
    pub parameters: ParameterConfig,
    /// How many attributes each candidate re-samples (Section 3.2).
    pub omega: OmegaSpec,
    /// Privacy-test configuration (Section 2).
    pub privacy_test: PrivacyTestConfig,
    /// Number of synthetic records to release.
    pub target_synthetics: usize,
    /// Give up after `max_candidate_factor * target_synthetics` proposals.
    pub max_candidate_factor: usize,
    /// Number of worker threads for candidate generation (the process is
    /// embarrassingly parallel, Section 5).
    pub workers: usize,
    /// Seed-store policy for the privacy test: full scan, inverted index,
    /// partition store, or automatic selection.  All stores are
    /// decision-equivalent — the policy only affects how many records (or
    /// equivalence classes) each test must examine.
    pub seed_index: SeedIndex,
    /// Seed-dataset size above which [`SeedIndex::Auto`] prefers an index
    /// over the linear scan.  Defaults to [`SeedIndex::AUTO_MIN_SEEDS`]; set
    /// it to the measured scan/index crossover of the deployment hardware.
    pub auto_index_min_seeds: usize,
    /// Attach a shared class-match cache to the session's partition store
    /// (`sgf_index::ClassMatchCache`): seed-independent per-class match rows
    /// are computed once per candidate likelihood projection and reused by
    /// every request of the session.  Decisions, counts, and RNG streams are
    /// bit-identical with the cache on or off — only repeated model
    /// evaluations are skipped — so this defaults to `true`.
    pub class_cache: bool,
    /// Structure-drift tolerance of [`crate::SynthesisSession::update`]: a
    /// delta touching `D_T` re-derives the correlation matrix from the
    /// updated counts and re-learns the dependency graph only when the
    /// entrywise max-abs drift from the previous matrix exceeds this
    /// threshold.  `0.0` (the default) re-learns on any change, which keeps
    /// incremental updates bit-identical to from-scratch retrains; a positive
    /// tolerance trades that exactness for skipping CFS re-runs under small
    /// drift.
    pub drift_threshold: f64,
    /// Master seed for all randomness in the pipeline.
    pub seed: u64,
}

impl PipelineConfig {
    /// A configuration close to the paper's defaults (Section 6.1):
    /// k = 50, γ = 4, ε0 = 1, ω = 9, randomized privacy test.
    pub fn paper_defaults(target_synthetics: usize) -> Self {
        PipelineConfig {
            split: SplitSpec::paper_defaults(),
            structure: StructureConfig::exact(),
            parameters: ParameterConfig::default(),
            omega: OmegaSpec::Fixed(9),
            privacy_test: PrivacyTestConfig::randomized(50, 4.0, 1.0)
                .with_limits(Some(100), Some(50_000)),
            target_synthetics,
            max_candidate_factor: 20,
            workers: 1,
            seed_index: SeedIndex::Auto,
            auto_index_min_seeds: SeedIndex::AUTO_MIN_SEEDS,
            class_cache: true,
            drift_threshold: 0.0,
            seed: 0,
        }
    }

    /// Validate the configuration against a schema with `m` attributes.
    pub fn validate(&self, m: usize) -> Result<()> {
        self.split.validate()?;
        self.privacy_test.validate()?;
        self.omega.validate(m)?;
        if self.target_synthetics == 0 {
            return Err(CoreError::InvalidParameter(
                "target_synthetics must be at least 1".into(),
            ));
        }
        if self.max_candidate_factor == 0 {
            return Err(CoreError::InvalidParameter(
                "max_candidate_factor must be at least 1".into(),
            ));
        }
        if self.workers == 0 {
            return Err(CoreError::InvalidParameter(
                "workers must be at least 1".into(),
            ));
        }
        if !self.drift_threshold.is_finite() || self.drift_threshold < 0.0 {
            return Err(CoreError::InvalidParameter(format!(
                "drift_threshold must be finite and non-negative, got {}",
                self.drift_threshold
            )));
        }
        Ok(())
    }
}

/// Wall-clock timings of the two pipeline phases (Figure 5 distinguishes
/// "model learning" from "synthesis").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineTimings {
    /// Time spent splitting the data and learning structure + parameters.
    pub model_learning: Duration,
    /// Time spent building the seed indexes (inverted and/or partition
    /// store; zero under [`SeedIndex::Scan`]).
    pub index_build: Duration,
    /// Time spent generating and testing candidates.
    pub synthesis: Duration,
}

impl PipelineTimings {
    /// Render the phase timings (in seconds) as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"model_learning_seconds\":{},\"index_build_seconds\":{},\"synthesis_seconds\":{}}}",
            crate::dp::json_f64(self.model_learning.as_secs_f64()),
            crate::dp::json_f64(self.index_build.as_secs_f64()),
            crate::dp::json_f64(self.synthesis.as_secs_f64())
        )
    }
}

/// The models trained by the pipeline.
///
/// Cloning is shallow where it matters: the CPT store — by far the largest
/// artifact — sits behind an `Arc`, so clones share it.
#[derive(Debug, Clone)]
pub struct TrainedModels {
    /// The learned dependency structure (and its correlation matrix / budget).
    pub structure: LearnedStructure,
    /// The conditional probability tables.
    pub cpts: Arc<CptStore>,
    /// Whole-record view over the CPTs (likelihood, prediction, ancestral sampling).
    pub bayes_net: BayesNetModel,
    /// The marginal baseline learned from the same parameter subset.
    pub marginal: MarginalModel,
    /// Summable sufficient statistics of structure learning over `D_T`,
    /// kept so a [`crate::SynthesisSession::update`] delta can merge counts
    /// in O(|Δ|) instead of re-scanning the subset.
    pub structure_counts: StructureCounts,
    /// Summable per-attribute counts of the marginal baseline over `D_P`,
    /// kept for the same incremental-update path.
    pub marginal_counts: MarginalCounts,
}

/// Everything the pipeline produced.
#[derive(Debug)]
pub struct PipelineResult {
    /// The released synthetic records.
    pub synthetics: Dataset,
    /// Mechanism statistics (candidates proposed, pass rate, ...).
    pub stats: MechanismStats,
    /// End-to-end differential-privacy accounting.
    pub budget: PipelineBudget,
    /// The disjoint data split that was used.
    pub split: DataSplit,
    /// The trained models (useful for evaluation).
    pub models: TrainedModels,
    /// Phase timings.
    pub timings: PipelineTimings,
}

/// Learn structure, parameters, and the marginal baseline from an
/// already-split dataset — the shared training phase behind both
/// [`SynthesisEngine::train`] and [`SynthesisPipeline::learn_models`].
pub(crate) fn learn_models(
    config: &PipelineConfig,
    split: &DataSplit,
    bucketizer: &Bucketizer,
) -> Result<TrainedModels> {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0x5eed));
    // Learn from summable sufficient statistics so an incremental session
    // update can merge a delta into the same counts and re-derive the model
    // bit-identically (see `SynthesisSession::update`).
    let structure_counts = StructureCounts::fit(&split.structure, bucketizer)?;
    let structure =
        learn_structure_from_counts(&structure_counts, bucketizer, &config.structure, &mut rng)?;
    let cpts = Arc::new(CptStore::learn(
        &split.parameters,
        bucketizer,
        &structure.graph,
        config.parameters,
    )?);
    let marginal_counts = MarginalCounts::fit(&split.parameters);
    let marginal = MarginalModel::from_counts(&marginal_counts, marginal_config(config))?;
    Ok(TrainedModels {
        bayes_net: BayesNetModel::new(Arc::clone(&cpts)),
        structure,
        cpts,
        marginal,
        structure_counts,
        marginal_counts,
    })
}

/// The marginal-baseline configuration derived from the pipeline parameters.
pub(crate) fn marginal_config(config: &PipelineConfig) -> MarginalConfig {
    MarginalConfig {
        alpha: config.parameters.alpha,
        epsilon_p: config.parameters.epsilon_p,
        global_seed: config.parameters.global_seed,
        delta_slack: config.parameters.delta_slack,
    }
}

/// The one-shot end-to-end pipeline — a thin compatibility wrapper over the
/// staged session API (train once → one `generate`).
///
/// **Migration note:** prefer [`SynthesisEngine::builder`] →
/// [`SynthesisEngine::train`] → [`crate::SynthesisSession::generate`] when
/// more than one release request is served from the same trained model; the
/// session learns the model once and its [`crate::BudgetLedger`] composes the
/// (ε, δ) cost across every request.
#[derive(Debug, Clone)]
pub struct SynthesisPipeline {
    config: PipelineConfig,
}

impl SynthesisPipeline {
    /// Create a pipeline with the given configuration.
    pub fn new(config: PipelineConfig) -> Self {
        SynthesisPipeline { config }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Learn the models from an already-split dataset.
    pub fn learn_models(
        &self,
        split: &DataSplit,
        bucketizer: &Bucketizer,
    ) -> Result<TrainedModels> {
        learn_models(&self.config, split, bucketizer)
    }

    /// Run the full pipeline on an input dataset: train a session and serve a
    /// single `generate` request for `target_synthetics` records, seeded with
    /// the pipeline seed.
    pub fn run(&self, dataset: &Dataset, bucketizer: &Bucketizer) -> Result<PipelineResult> {
        self.config.validate(dataset.schema().len())?;
        let session = SynthesisEngine::from_config(self.config).train(dataset, bucketizer)?;
        let request = GenerateRequest::new(self.config.target_synthetics)
            .with_omega(self.config.omega)
            .with_seed(self.config.seed);
        let report = session.generate(&request)?;
        let timings = PipelineTimings {
            model_learning: session.training_time(),
            index_build: session.index_build_time(),
            synthesis: report.synthesis,
        };
        let (split, models, ledger) = session.into_parts();
        Ok(PipelineResult {
            synthetics: report.synthetics,
            stats: report.stats,
            budget: ledger.as_pipeline_budget(),
            split,
            models,
            timings,
        })
    }

    /// Generate synthetics from already-trained models and an explicit seed
    /// dataset (one release batch over the pipeline's ω spec and worker
    /// count, seeded with the pipeline seed).
    ///
    /// An explicit seed dataset carries no session-built index, so the
    /// privacy tests always run as linear scans here: `SeedIndex::Inverted`
    /// and `SeedIndex::Partition` are rejected (train a
    /// [`SynthesisSession`](crate::SynthesisSession) for index-accelerated
    /// generation), and `Auto` degrades to the scan.
    pub fn generate(
        &self,
        models: &TrainedModels,
        seeds: &Dataset,
    ) -> Result<(Vec<Record>, MechanismStats)> {
        if matches!(
            self.config.seed_index,
            SeedIndex::Inverted | SeedIndex::Partition
        ) {
            return Err(CoreError::InvalidParameter(format!(
                "SynthesisPipeline::generate runs over an explicit seed dataset without a \
                 trained index; use SeedIndex::Scan/Auto here or train a SynthesisSession \
                 for SeedIndex::{}",
                self.config.seed_index
            )));
        }
        self.config.omega.validate(seeds.schema().len())?;
        let (lo, hi) = match self.config.omega {
            OmegaSpec::Fixed(w) => (w, w),
            OmegaSpec::UniformRange { lo, hi } => (lo, hi),
        };
        // Pre-build one synthesizer per admissible ω; the mechanism fan-out
        // constructs each Mechanism exactly once and shares it across workers.
        let synthesizers: Vec<SeedSynthesizer> = (lo..=hi)
            .map(|w| SeedSynthesizer::new(Arc::clone(&models.cpts), w))
            .collect::<sgf_model::Result<_>>()?;
        let refs: Vec<&SeedSynthesizer> = synthesizers.iter().collect();
        let target = self.config.target_synthetics;
        crate::session::run_mechanism(
            &refs,
            seeds,
            None,
            self.config.privacy_test,
            target,
            target.saturating_mul(self.config.max_candidate_factor),
            self.config.workers,
            self.config.seed,
            None,
            None,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgf_data::acs::{acs_bucketizer, acs_schema, generate_acs};

    fn small_config(target: usize) -> PipelineConfig {
        let mut config = PipelineConfig::paper_defaults(target);
        config.privacy_test =
            PrivacyTestConfig::randomized(20, 4.0, 1.0).with_limits(Some(40), Some(2000));
        config.omega = OmegaSpec::Fixed(9);
        config.max_candidate_factor = 30;
        config.seed = 7;
        config
    }

    #[test]
    fn end_to_end_pipeline_releases_valid_records() {
        let data = generate_acs(4000, 1);
        let bkt = acs_bucketizer(&acs_schema());
        let pipeline = SynthesisPipeline::new(small_config(50));
        let result = pipeline.run(&data, &bkt).unwrap();
        assert!(!result.synthetics.is_empty());
        assert!(result.synthetics.len() <= 50);
        for r in result.synthetics.records() {
            data.schema().validate_values(r.values()).unwrap();
        }
        assert!(result.stats.candidates >= result.stats.released);
        assert!(result.stats.pass_rate() > 0.0);
        assert!(result.budget.per_release.is_some());
        assert!(result.timings.synthesis > Duration::ZERO);
    }

    #[test]
    fn deterministic_test_pipeline_reports_no_release_budget() {
        let data = generate_acs(3000, 2);
        let bkt = acs_bucketizer(&acs_schema());
        let mut config = small_config(20);
        config.privacy_test =
            PrivacyTestConfig::deterministic(20, 4.0).with_limits(Some(40), Some(2000));
        let result = SynthesisPipeline::new(config).run(&data, &bkt).unwrap();
        assert!(result.budget.per_release.is_none());
        assert!(result.budget.total().epsilon.is_infinite());
    }

    #[test]
    fn random_omega_range_is_accepted() {
        let data = generate_acs(3000, 3);
        let bkt = acs_bucketizer(&acs_schema());
        let mut config = small_config(20);
        config.omega = OmegaSpec::UniformRange { lo: 9, hi: 11 };
        let result = SynthesisPipeline::new(config).run(&data, &bkt).unwrap();
        assert!(!result.synthetics.is_empty());
    }

    #[test]
    fn multi_worker_generation_matches_single_worker_count() {
        let data = generate_acs(3000, 4);
        let bkt = acs_bucketizer(&acs_schema());
        let mut config = small_config(30);
        config.workers = 3;
        let result = SynthesisPipeline::new(config).run(&data, &bkt).unwrap();
        assert!(result.synthetics.len() <= 30);
        assert!(!result.synthetics.is_empty());
        // Release accounting must stay exact even when several workers race
        // for the last slots near the target.
        assert_eq!(result.synthetics.len(), result.stats.released);
        assert!(result.stats.released <= result.stats.candidates);
    }

    #[test]
    fn explicit_seed_generation_rejects_the_inverted_policy() {
        let data = generate_acs(3000, 6);
        let bkt = acs_bucketizer(&acs_schema());
        let mut config = small_config(10);
        let split = {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(6);
            sgf_data::split_dataset(&data, &config.split, &mut rng).unwrap()
        };
        let models = SynthesisPipeline::new(config)
            .learn_models(&split, &bkt)
            .unwrap();
        // Scan and Auto work over an explicit seed dataset...
        for policy in [SeedIndex::Scan, SeedIndex::Auto] {
            config.seed_index = policy;
            let (released, stats) = SynthesisPipeline::new(config)
                .generate(&models, &split.seeds)
                .unwrap();
            assert_eq!(stats.index_tests, 0, "no session index exists");
            assert!(released.len() <= 10);
        }
        // ...but an explicit Inverted policy cannot be honoured and errors.
        config.seed_index = SeedIndex::Inverted;
        assert!(matches!(
            SynthesisPipeline::new(config).generate(&models, &split.seeds),
            Err(CoreError::InvalidParameter(_))
        ));
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let data = generate_acs(500, 5);
        let bkt = acs_bucketizer(&acs_schema());
        let mut config = small_config(0);
        assert!(SynthesisPipeline::new(config).run(&data, &bkt).is_err());
        config = small_config(10);
        config.workers = 0;
        assert!(SynthesisPipeline::new(config).run(&data, &bkt).is_err());
        config = small_config(10);
        config.omega = OmegaSpec::Fixed(99);
        assert!(SynthesisPipeline::new(config).run(&data, &bkt).is_err());
        // Seed dataset smaller than k.
        config = small_config(10);
        config.privacy_test = PrivacyTestConfig::deterministic(100_000, 4.0);
        assert!(matches!(
            SynthesisPipeline::new(config).run(&data, &bkt),
            Err(CoreError::DatasetTooSmall { .. })
        ));
    }
}
