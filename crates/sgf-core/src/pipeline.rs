//! The end-to-end synthesis pipeline: split the input dataset, learn the
//! (privacy-preserving) generative model, and run the plausible-deniability
//! mechanism — in parallel — until the requested number of synthetic records
//! has been released.
//!
//! This is the Rust equivalent of the paper's C++ tool (Section 5): the
//! configuration mirrors the tool's config file (privacy parameters k, γ, ε0,
//! the generative-model parameter ω, and the early-termination knobs).

use crate::dp::PipelineBudget;
use crate::error::{CoreError, Result};
use crate::mechanism::{Mechanism, MechanismStats};
use crate::privacy_test::PrivacyTestConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sgf_data::{split_dataset, Bucketizer, DataSplit, Dataset, Record, SplitSpec};
use sgf_model::{
    learn_dependency_structure, BayesNetModel, CptStore, LearnedStructure, MarginalConfig,
    MarginalModel, OmegaSpec, ParameterConfig, SeedSynthesizer, StructureConfig,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of the full pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// How to split the input dataset into D_T / D_P / D_S / test.
    pub split: SplitSpec,
    /// Structure-learning configuration (Section 3.3).
    pub structure: StructureConfig,
    /// Parameter-learning configuration (Section 3.4).
    pub parameters: ParameterConfig,
    /// How many attributes each candidate re-samples (Section 3.2).
    pub omega: OmegaSpec,
    /// Privacy-test configuration (Section 2).
    pub privacy_test: PrivacyTestConfig,
    /// Number of synthetic records to release.
    pub target_synthetics: usize,
    /// Give up after `max_candidate_factor * target_synthetics` proposals.
    pub max_candidate_factor: usize,
    /// Number of worker threads for candidate generation (the process is
    /// embarrassingly parallel, Section 5).
    pub workers: usize,
    /// Master seed for all randomness in the pipeline.
    pub seed: u64,
}

impl PipelineConfig {
    /// A configuration close to the paper's defaults (Section 6.1):
    /// k = 50, γ = 4, ε0 = 1, ω = 9, randomized privacy test.
    pub fn paper_defaults(target_synthetics: usize) -> Self {
        PipelineConfig {
            split: SplitSpec::paper_defaults(),
            structure: StructureConfig::exact(),
            parameters: ParameterConfig::default(),
            omega: OmegaSpec::Fixed(9),
            privacy_test: PrivacyTestConfig::randomized(50, 4.0, 1.0)
                .with_limits(Some(100), Some(50_000)),
            target_synthetics,
            max_candidate_factor: 20,
            workers: 1,
            seed: 0,
        }
    }

    /// Validate the configuration against a schema with `m` attributes.
    pub fn validate(&self, m: usize) -> Result<()> {
        self.split.validate()?;
        self.privacy_test.validate()?;
        self.omega.validate(m)?;
        if self.target_synthetics == 0 {
            return Err(CoreError::InvalidParameter(
                "target_synthetics must be at least 1".into(),
            ));
        }
        if self.max_candidate_factor == 0 {
            return Err(CoreError::InvalidParameter(
                "max_candidate_factor must be at least 1".into(),
            ));
        }
        if self.workers == 0 {
            return Err(CoreError::InvalidParameter(
                "workers must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// Wall-clock timings of the two pipeline phases (Figure 5 distinguishes
/// "model learning" from "synthesis").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineTimings {
    /// Time spent splitting the data and learning structure + parameters.
    pub model_learning: Duration,
    /// Time spent generating and testing candidates.
    pub synthesis: Duration,
}

/// The models trained by the pipeline.
#[derive(Debug)]
pub struct TrainedModels {
    /// The learned dependency structure (and its correlation matrix / budget).
    pub structure: LearnedStructure,
    /// The conditional probability tables.
    pub cpts: Arc<CptStore>,
    /// Whole-record view over the CPTs (likelihood, prediction, ancestral sampling).
    pub bayes_net: BayesNetModel,
    /// The marginal baseline learned from the same parameter subset.
    pub marginal: MarginalModel,
}

/// Everything the pipeline produced.
#[derive(Debug)]
pub struct PipelineResult {
    /// The released synthetic records.
    pub synthetics: Dataset,
    /// Mechanism statistics (candidates proposed, pass rate, ...).
    pub stats: MechanismStats,
    /// End-to-end differential-privacy accounting.
    pub budget: PipelineBudget,
    /// The disjoint data split that was used.
    pub split: DataSplit,
    /// The trained models (useful for evaluation).
    pub models: TrainedModels,
    /// Phase timings.
    pub timings: PipelineTimings,
}

/// The end-to-end synthesis pipeline.
#[derive(Debug, Clone)]
pub struct SynthesisPipeline {
    config: PipelineConfig,
}

impl SynthesisPipeline {
    /// Create a pipeline with the given configuration.
    pub fn new(config: PipelineConfig) -> Self {
        SynthesisPipeline { config }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Learn the models from an already-split dataset.
    pub fn learn_models(
        &self,
        split: &DataSplit,
        bucketizer: &Bucketizer,
    ) -> Result<TrainedModels> {
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(0x5eed));
        let structure = learn_dependency_structure(
            &split.structure,
            bucketizer,
            &self.config.structure,
            &mut rng,
        )?;
        let cpts = Arc::new(CptStore::learn(
            &split.parameters,
            bucketizer,
            &structure.graph,
            self.config.parameters,
        )?);
        let marginal = MarginalModel::learn(
            &split.parameters,
            MarginalConfig {
                alpha: self.config.parameters.alpha,
                epsilon_p: self.config.parameters.epsilon_p,
                global_seed: self.config.parameters.global_seed,
                delta_slack: self.config.parameters.delta_slack,
            },
        )?;
        Ok(TrainedModels {
            bayes_net: BayesNetModel::new(Arc::clone(&cpts)),
            structure,
            cpts,
            marginal,
        })
    }

    /// Run the full pipeline on an input dataset.
    pub fn run(&self, dataset: &Dataset, bucketizer: &Bucketizer) -> Result<PipelineResult> {
        self.config.validate(dataset.schema().len())?;
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        let learning_start = Instant::now();
        let split = split_dataset(dataset, &self.config.split, &mut rng)?;
        if split.seeds.len() < self.config.privacy_test.k {
            return Err(CoreError::DatasetTooSmall {
                available: split.seeds.len(),
                required: self.config.privacy_test.k,
            });
        }
        let models = self.learn_models(&split, bucketizer)?;
        let model_learning = learning_start.elapsed();

        let synthesis_start = Instant::now();
        let (records, stats) = self.generate(&models, &split.seeds)?;
        let synthesis = synthesis_start.elapsed();

        let budget = PipelineBudget {
            structure: models.structure.budget,
            parameters: models.cpts.budget(),
            per_release: self.per_release_budget(),
            releases: records.len(),
        };

        Ok(PipelineResult {
            synthetics: Dataset::from_records_unchecked(dataset.schema_arc(), records),
            stats,
            budget,
            split,
            models,
            timings: PipelineTimings {
                model_learning,
                synthesis,
            },
        })
    }

    /// Generate synthetics from already-trained models and an explicit seed dataset.
    pub fn generate(
        &self,
        models: &TrainedModels,
        seeds: &Dataset,
    ) -> Result<(Vec<Record>, MechanismStats)> {
        let m = seeds.schema().len();
        self.config.omega.validate(m)?;

        // Pre-build one synthesizer per admissible ω so workers only clone Arcs.
        let (lo, hi) = match self.config.omega {
            OmegaSpec::Fixed(w) => (w, w),
            OmegaSpec::UniformRange { lo, hi } => (lo, hi),
        };
        let synthesizers: Vec<SeedSynthesizer> = (lo..=hi)
            .map(|w| SeedSynthesizer::new(Arc::clone(&models.cpts), w))
            .collect::<sgf_model::Result<_>>()?;

        let target = self.config.target_synthetics;
        let max_candidates = target.saturating_mul(self.config.max_candidate_factor);
        let released_count = AtomicUsize::new(0);
        let candidate_count = AtomicUsize::new(0);
        let workers = self.config.workers.min(max_candidates.max(1));

        let worker_results: Vec<Result<(Vec<Record>, MechanismStats)>> = if workers <= 1 {
            vec![self.worker_loop(
                0,
                &synthesizers,
                seeds,
                target,
                max_candidates,
                &released_count,
                &candidate_count,
            )]
        } else {
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(workers);
                for worker in 0..workers {
                    let synthesizers = &synthesizers;
                    let released_count = &released_count;
                    let candidate_count = &candidate_count;
                    handles.push(scope.spawn(move || {
                        self.worker_loop(
                            worker,
                            synthesizers,
                            seeds,
                            target,
                            max_candidates,
                            released_count,
                            candidate_count,
                        )
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker panicked"))
                    .collect()
            })
        };

        let mut records = Vec::with_capacity(target);
        let mut stats = MechanismStats::default();
        for result in worker_results {
            let (mut r, s) = result?;
            stats.merge(&s);
            records.append(&mut r);
        }
        // The slot reservation in `worker_loop` caps total releases at the
        // target, so no truncation (which would desync the stats) is needed.
        debug_assert!(records.len() <= target, "workers released past the target");
        debug_assert_eq!(
            records.len(),
            stats.released,
            "release accounting out of sync"
        );
        Ok((records, stats))
    }

    #[allow(clippy::too_many_arguments)]
    fn worker_loop(
        &self,
        worker: usize,
        synthesizers: &[SeedSynthesizer],
        seeds: &Dataset,
        target: usize,
        max_candidates: usize,
        released_count: &AtomicUsize,
        candidate_count: &AtomicUsize,
    ) -> Result<(Vec<Record>, MechanismStats)> {
        let mut rng = StdRng::seed_from_u64(
            self.config
                .seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(worker as u64),
        );
        let mechanisms: Vec<Mechanism<'_, SeedSynthesizer>> = synthesizers
            .iter()
            .map(|s| Mechanism::new(s, seeds, self.config.privacy_test))
            .collect::<Result<_>>()?;

        let mut records = Vec::new();
        let mut stats = MechanismStats::default();
        loop {
            if released_count.load(Ordering::Relaxed) >= target {
                break;
            }
            let ticket = candidate_count.fetch_add(1, Ordering::Relaxed);
            if ticket >= max_candidates {
                break;
            }
            let which = if mechanisms.len() == 1 {
                0
            } else {
                rng.gen_range(0..mechanisms.len())
            };
            let report = mechanisms[which].propose(&mut rng)?;
            stats.candidates += 1;
            stats.records_examined += report.outcome.records_examined;
            if report.released() {
                // Reserve a release slot atomically: near the target, several
                // workers can each have a passing candidate in flight, and only
                // the ones that win a slot may keep theirs.  This keeps
                // `stats.released` equal to the number of records actually
                // returned (a surplus candidate counts as proposed, not
                // released).
                let slot = released_count.fetch_add(1, Ordering::Relaxed);
                if slot < target {
                    stats.released += 1;
                    records.push(report.record);
                } else {
                    break;
                }
            }
        }
        Ok((records, stats))
    }

    fn per_release_budget(&self) -> Option<sgf_stats::DpBudget> {
        let test = &self.config.privacy_test;
        let epsilon0 = test.epsilon0?;
        crate::dp::ReleaseBudget::optimize(test.k, test.gamma, epsilon0, 1e-6)
            .ok()
            .flatten()
            .map(|b| b.budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgf_data::acs::{acs_bucketizer, acs_schema, generate_acs};

    fn small_config(target: usize) -> PipelineConfig {
        let mut config = PipelineConfig::paper_defaults(target);
        config.privacy_test =
            PrivacyTestConfig::randomized(20, 4.0, 1.0).with_limits(Some(40), Some(2000));
        config.omega = OmegaSpec::Fixed(9);
        config.max_candidate_factor = 30;
        config.seed = 7;
        config
    }

    #[test]
    fn end_to_end_pipeline_releases_valid_records() {
        let data = generate_acs(4000, 1);
        let bkt = acs_bucketizer(&acs_schema());
        let pipeline = SynthesisPipeline::new(small_config(50));
        let result = pipeline.run(&data, &bkt).unwrap();
        assert!(!result.synthetics.is_empty());
        assert!(result.synthetics.len() <= 50);
        for r in result.synthetics.records() {
            data.schema().validate_values(r.values()).unwrap();
        }
        assert!(result.stats.candidates >= result.stats.released);
        assert!(result.stats.pass_rate() > 0.0);
        assert!(result.budget.per_release.is_some());
        assert!(result.timings.synthesis > Duration::ZERO);
    }

    #[test]
    fn deterministic_test_pipeline_reports_no_release_budget() {
        let data = generate_acs(3000, 2);
        let bkt = acs_bucketizer(&acs_schema());
        let mut config = small_config(20);
        config.privacy_test =
            PrivacyTestConfig::deterministic(20, 4.0).with_limits(Some(40), Some(2000));
        let result = SynthesisPipeline::new(config).run(&data, &bkt).unwrap();
        assert!(result.budget.per_release.is_none());
        assert!(result.budget.total().epsilon.is_infinite());
    }

    #[test]
    fn random_omega_range_is_accepted() {
        let data = generate_acs(3000, 3);
        let bkt = acs_bucketizer(&acs_schema());
        let mut config = small_config(20);
        config.omega = OmegaSpec::UniformRange { lo: 9, hi: 11 };
        let result = SynthesisPipeline::new(config).run(&data, &bkt).unwrap();
        assert!(!result.synthetics.is_empty());
    }

    #[test]
    fn multi_worker_generation_matches_single_worker_count() {
        let data = generate_acs(3000, 4);
        let bkt = acs_bucketizer(&acs_schema());
        let mut config = small_config(30);
        config.workers = 3;
        let result = SynthesisPipeline::new(config).run(&data, &bkt).unwrap();
        assert!(result.synthetics.len() <= 30);
        assert!(!result.synthetics.is_empty());
        // Release accounting must stay exact even when several workers race
        // for the last slots near the target.
        assert_eq!(result.synthetics.len(), result.stats.released);
        assert!(result.stats.released <= result.stats.candidates);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let data = generate_acs(500, 5);
        let bkt = acs_bucketizer(&acs_schema());
        let mut config = small_config(0);
        assert!(SynthesisPipeline::new(config).run(&data, &bkt).is_err());
        config = small_config(10);
        config.workers = 0;
        assert!(SynthesisPipeline::new(config).run(&data, &bkt).is_err());
        config = small_config(10);
        config.omega = OmegaSpec::Fixed(99);
        assert!(SynthesisPipeline::new(config).run(&data, &bkt).is_err());
        // Seed dataset smaller than k.
        config = small_config(10);
        config.privacy_test = PrivacyTestConfig::deterministic(100_000, 4.0);
        assert!(matches!(
            SynthesisPipeline::new(config).run(&data, &bkt),
            Err(CoreError::DatasetTooSmall { .. })
        ));
    }
}
