//! The staged synthesis-session API: **train once, serve many**.
//!
//! The paper's tool (Section 5) separates one expensive phase — structure +
//! parameter learning — from an embarrassingly-parallel synthesis phase.  This
//! module exposes that lifecycle directly:
//!
//! 1. [`SynthesisEngine::builder`] assembles a validated configuration;
//! 2. [`SynthesisEngine::train`] splits the data, learns the models **once**,
//!    and produces an immutable [`SynthesisSession`];
//! 3. the session serves repeated [`SynthesisSession::generate`] calls — each
//!    with its own target, ω, seed, and worker count — while a cumulative
//!    [`BudgetLedger`] composes the per-release (ε, δ) of Theorem 1 across
//!    every request served;
//! 4. [`SynthesisSession::release_iter`] streams released records one at a
//!    time for services that consume them incrementally.
//!
//! The mechanism fan-out is generic over [`GenerativeModel`], so the marginal
//! baseline (or any future model) plugs into the same plausible-deniability
//! test via [`SynthesisSession::generate_with`].
//!
//! The legacy one-shot [`crate::SynthesisPipeline::run`] is a thin wrapper
//! over builder → train → one `generate`.

use crate::dp::BudgetLedger;
use crate::error::{CoreError, Result};
use crate::mechanism::{propose_candidate_with_store, Mechanism, MechanismStats};
use crate::pipeline::{learn_models, marginal_config, PipelineConfig, TrainedModels};
use crate::privacy_test::PrivacyTestConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sgf_data::{
    apply_deletes, split_dataset_by_hash, split_role, Bucketizer, DataSplit, Dataset, DatasetDelta,
    Record, SplitRole, SplitSpec,
};
use sgf_index::{
    InvertedIndexStore, LinearScanStore, PartitionIndexStore, SeedIndex, SeedStore,
    MAX_INTERSECT_LISTS,
};
use sgf_metrics::{CachePadded, Json, Scope, SpanId, TraceBatch};
use sgf_model::{
    structure_from_correlations, BayesNetModel, CptStore, GenerativeModel, MarginalModel,
    OmegaSpec, ParameterConfig, SeedSynthesizer, StructureConfig,
};
use sgf_stats::DpBudget;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Builder for a [`SynthesisEngine`]: collects the training-time configuration
/// (data split, structure / parameter learning, privacy test, defaults for
/// synthesis) and validates it before any data is touched.
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    config: PipelineConfig,
}

impl EngineBuilder {
    fn new() -> Self {
        EngineBuilder {
            config: PipelineConfig::paper_defaults(1),
        }
    }

    /// Start from an explicit full configuration instead of the paper defaults.
    pub fn config(mut self, config: PipelineConfig) -> Self {
        self.config = config;
        self
    }

    /// How to split the input dataset into D_T / D_P / D_S / test.
    pub fn split(mut self, split: SplitSpec) -> Self {
        self.config.split = split;
        self
    }

    /// Structure-learning configuration (Section 3.3).
    pub fn structure(mut self, structure: StructureConfig) -> Self {
        self.config.structure = structure;
        self
    }

    /// Parameter-learning configuration (Section 3.4).
    pub fn parameters(mut self, parameters: ParameterConfig) -> Self {
        self.config.parameters = parameters;
        self
    }

    /// Privacy-test configuration (Section 2).
    pub fn privacy_test(mut self, test: PrivacyTestConfig) -> Self {
        self.config.privacy_test = test;
        self
    }

    /// Default ω for requests that do not override it.
    pub fn omega(mut self, omega: OmegaSpec) -> Self {
        self.config.omega = omega;
        self
    }

    /// Default worker count for requests that do not override it.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Default proposal cap factor (`max_candidate_factor * target` proposals).
    pub fn max_candidate_factor(mut self, factor: usize) -> Self {
        self.config.max_candidate_factor = factor;
        self
    }

    /// Seed-store policy: scan, inverted index, partition store, or automatic
    /// selection.
    pub fn seed_index(mut self, policy: SeedIndex) -> Self {
        self.config.seed_index = policy;
        self
    }

    /// Seed-dataset size above which [`SeedIndex::Auto`] prefers an index
    /// over the linear scan (default [`SeedIndex::AUTO_MIN_SEEDS`]).  Set it
    /// to the measured scan/index crossover of the deployment hardware.
    pub fn auto_index_min_seeds(mut self, min_seeds: usize) -> Self {
        self.config.auto_index_min_seeds = min_seeds;
        self
    }

    /// Whether the session's partition store carries a shared class-match
    /// cache (`sgf_index::ClassMatchCache`, default on).  Decisions and RNG
    /// streams are identical either way; disabling it only forces every
    /// request to re-evaluate the per-class model probabilities.
    pub fn class_cache(mut self, enabled: bool) -> Self {
        self.config.class_cache = enabled;
        self
    }

    /// Master seed for the data split and model learning.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Structure-drift tolerance of [`SynthesisSession::update`] (default
    /// `0.0`: any correlation-matrix change re-learns the dependency graph,
    /// keeping updates bit-identical to from-scratch retrains).
    pub fn drift_threshold(mut self, threshold: f64) -> Self {
        self.config.drift_threshold = threshold;
        self
    }

    /// Validate the schema-independent parts of the configuration and produce
    /// the engine.  (Schema-dependent checks — ω against the attribute count,
    /// the seed store against k — run at [`SynthesisEngine::train`] time.)
    pub fn build(self) -> Result<SynthesisEngine> {
        self.config.split.validate()?;
        self.config.privacy_test.validate()?;
        if self.config.workers == 0 {
            return Err(CoreError::InvalidParameter(
                "workers must be at least 1".into(),
            ));
        }
        if self.config.max_candidate_factor == 0 {
            return Err(CoreError::InvalidParameter(
                "max_candidate_factor must be at least 1".into(),
            ));
        }
        Ok(SynthesisEngine {
            config: self.config,
        })
    }

    /// Convenience: build the engine and immediately train a session.
    pub fn train(self, dataset: &Dataset, bucketizer: &Bucketizer) -> Result<SynthesisSession> {
        self.build()?.train(dataset, bucketizer)
    }
}

/// A validated synthesis configuration, ready to train sessions.
///
/// The engine is cheap and reusable: each [`train`](SynthesisEngine::train)
/// call pays the expensive learning phase once and yields an immutable
/// [`SynthesisSession`] that serves any number of `generate` requests.
#[derive(Debug, Clone)]
pub struct SynthesisEngine {
    config: PipelineConfig,
}

impl SynthesisEngine {
    /// Start building an engine from the paper's default parameters.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// Wrap an existing full pipeline configuration (the compatibility path
    /// used by [`crate::SynthesisPipeline`]).
    pub fn from_config(config: PipelineConfig) -> Self {
        SynthesisEngine { config }
    }

    /// The engine configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The expensive phase, paid exactly once per session: validate against
    /// the schema, split the dataset into the four disjoint subsets, and learn
    /// structure + parameters (+ the marginal baseline).
    pub fn train(&self, dataset: &Dataset, bucketizer: &Bucketizer) -> Result<SynthesisSession> {
        self.config.validate(dataset.schema().len())?;
        let start = Instant::now();
        // Deterministic value-hash split: each record's subset depends only
        // on its values and the session seed, so the split commutes with
        // dataset deltas — the foundation of `SynthesisSession::update`
        // producing the same subsets as a from-scratch retrain.
        let split = split_dataset_by_hash(dataset, &self.config.split, self.config.seed)?;
        if split.seeds.len() < self.config.privacy_test.k {
            return Err(CoreError::DatasetTooSmall {
                available: split.seeds.len(),
                required: self.config.privacy_test.k,
            });
        }
        let models = learn_models(&self.config, &split, bucketizer)?;
        let per_release = per_release_budget(&self.config.privacy_test);
        let ledger = BudgetLedger::new(models.structure.budget, models.cpts.budget(), per_release);
        let training = start.elapsed();
        // Build the seed indexes once per session (unless the policy pins the
        // scan); every generate request shares them read-only.  The partition
        // store is keyed on the largest likelihood-relevant attribute set of
        // the session's ω spec — the kept attributes at the smallest
        // admissible ω — so it covers every fixed-ω synthesizer the session's
        // default spec can produce.
        let build_start = Instant::now();
        let index = match self.config.seed_index {
            SeedIndex::Scan | SeedIndex::Partition => None,
            SeedIndex::Inverted | SeedIndex::Auto => {
                let weights = models.structure.attribute_weights();
                Some(InvertedIndexStore::build(
                    &split.seeds,
                    bucketizer,
                    &weights,
                    MAX_INTERSECT_LISTS,
                )?)
            }
        };
        let partition = match self.config.seed_index {
            SeedIndex::Scan | SeedIndex::Inverted => None,
            SeedIndex::Partition | SeedIndex::Auto => {
                let lo = match self.config.omega {
                    OmegaSpec::Fixed(w) => w,
                    OmegaSpec::UniformRange { lo, .. } => lo,
                };
                let synthesizer = SeedSynthesizer::new(Arc::clone(&models.cpts), lo)?;
                let store =
                    PartitionIndexStore::build(&split.seeds, synthesizer.kept_attributes())?;
                Some(if self.config.class_cache {
                    store.with_class_cache()
                } else {
                    store
                })
            }
        };
        let index_build = if index.is_some() || partition.is_some() {
            build_start.elapsed()
        } else {
            Duration::ZERO
        };
        sgf_metrics::timer("core.train").observe(training);
        sgf_metrics::timer("core.index_build").observe(index_build);
        let trace = sgf_metrics::trace();
        if trace.enabled() {
            let mut batch = TraceBatch::new();
            let root = batch.span("core.train", SpanId::NONE);
            batch.counter(root, "records", dataset.len() as u64);
            batch.counter(root, "seeds", split.seeds.len() as u64);
            batch.wall(root, training);
            let build = batch.span("core.index_build", root);
            batch.label(build, "inverted", on_off(index.is_some()));
            batch.label(build, "partition", on_off(partition.is_some()));
            if let Some(partition) = &partition {
                batch.counter(build, "classes", partition.class_count() as u64);
            }
            batch.wall(build, index_build);
            trace.commit(batch);
        }
        Ok(SynthesisSession {
            config: self.config,
            shared: Arc::new(SessionShared {
                split,
                models,
                index: StoreSlot::ready(index),
                partition: StoreSlot::ready(partition),
                index_build,
                training,
            }),
            per_release,
            ledger: Arc::new(Mutex::new(ledger)),
            scope: None,
            epoch: 0,
        })
    }
}

/// One synthesis request served by a [`SynthesisSession`]: how many records to
/// release and, optionally, per-request overrides of the session defaults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenerateRequest {
    /// Number of synthetic records to release.
    pub target: usize,
    /// Per-request ω override (`None` uses the session default).
    pub omega: Option<OmegaSpec>,
    /// Per-request worker-count override (`None` uses the session default).
    /// Applies to [`SynthesisSession::generate`] /
    /// [`SynthesisSession::generate_with`] only; the streaming
    /// [`SynthesisSession::release_iter`] always proposes on the calling
    /// thread.
    pub workers: Option<usize>,
    /// Per-request proposal-cap override (`None` uses the session default).
    pub max_candidate_factor: Option<usize>,
    /// Per-request seed-store policy override (`None` uses the session
    /// default).  Scan and index are decision-equivalent, so this only
    /// affects performance — see [`SeedIndex`].
    pub seed_index: Option<SeedIndex>,
    /// Seed for all randomness of this request (two requests with the same
    /// seed and parameters release identical records).
    pub seed: u64,
}

impl GenerateRequest {
    /// A request for `target` records with the session defaults and seed 0.
    pub fn new(target: usize) -> Self {
        GenerateRequest {
            target,
            omega: None,
            workers: None,
            max_candidate_factor: None,
            seed_index: None,
            seed: 0,
        }
    }

    /// Override the number of re-sampled attributes ω for this request.
    pub fn with_omega(mut self, omega: OmegaSpec) -> Self {
        self.omega = Some(omega);
        self
    }

    /// Override the worker count for this request.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Override the proposal cap factor for this request.
    pub fn with_max_candidate_factor(mut self, factor: usize) -> Self {
        self.max_candidate_factor = Some(factor);
        self
    }

    /// Override the seed-store policy for this request.
    pub fn with_seed_index(mut self, policy: SeedIndex) -> Self {
        self.seed_index = Some(policy);
        self
    }

    /// Set the request seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Everything one `generate` request produced.
#[derive(Debug)]
pub struct ReleaseReport {
    /// The released synthetic records.
    pub synthetics: Dataset,
    /// Mechanism statistics for this request.
    pub stats: MechanismStats,
    /// Per-release (ε, δ) bound of Theorem 1 (randomized test only).
    pub per_release: Option<DpBudget>,
    /// Snapshot of the cumulative session ledger *after* this request.
    pub ledger: BudgetLedger,
    /// Wall-clock time spent generating and testing candidates.
    pub synthesis: Duration,
    /// Where this release came from: store, knobs, and budget before/after.
    pub provenance: Provenance,
}

impl ReleaseReport {
    /// Sequential-composition (ε, δ) cost of this request alone.
    pub fn request_budget(&self) -> DpBudget {
        crate::dp::compose_releases(self.per_release, self.stats.released)
    }

    /// The provenance block as canonical JSON (budget before/after pair
    /// resolved against this report's post-request ledger).
    pub fn provenance_json(&self) -> Json {
        self.provenance.to_json(&self.ledger)
    }

    /// Render the report (counters + budgets + provenance) as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"stats\":{},\"synthesis_seconds\":{},\"request_epsilon\":{},\"ledger\":{},\
             \"provenance\":{}}}",
            self.stats.to_json(),
            crate::dp::json_f64(self.synthesis.as_secs_f64()),
            crate::dp::json_f64(self.request_budget().epsilon),
            self.ledger.to_json(),
            self.provenance_json().render(),
        )
    }
}

/// ProvSQL-style provenance of one release: which seed store served the
/// privacy tests, the effective knobs, the request seed, and the budget
/// ledger as admitted — enough to audit (or re-derive) the release without
/// replaying it.
///
/// Attached to every [`ReleaseReport`]; the serve layer forwards it verbatim
/// in protocol responses.  `trace_spans` counts the spans this request
/// committed to the global [`sgf_metrics::trace`] ring (0 when tracing is
/// off): the trace holds the span-level detail, this block the summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Provenance {
    /// Store granularity that served the privacy tests (`"scan"`,
    /// `"inverted"`, `"partition"` — see [`SeedStore::kind`]).
    pub store: &'static str,
    /// Seed records the store draws from (`|D_S|`).
    pub seeds: usize,
    /// Likelihood-equivalence classes of the partition store, when it served
    /// the request.
    pub classes: Option<usize>,
    /// Effective ω spec (request override or session default).
    pub omega: OmegaSpec,
    /// Effective worker count.
    pub workers: usize,
    /// Effective proposal cap.
    pub max_candidates: usize,
    /// Privacy-test plausibility threshold `k`.
    pub k: usize,
    /// Privacy-test γ.
    pub gamma: f64,
    /// Randomized-test ε₀ (`None` for the deterministic test).
    pub epsilon0: Option<f64>,
    /// The request seed every stream of request randomness derives from.
    pub request_seed: u64,
    /// Session epoch that served the request: [`update`] steps since the
    /// original train (0 = freshly trained session).
    ///
    /// [`update`]: SynthesisSession::update
    pub epoch: u64,
    /// Ledger snapshot *before* this request committed.
    pub ledger_before: BudgetLedger,
    /// Spans committed to the trace ring for this request (0 = tracing off).
    pub trace_spans: usize,
}

impl Provenance {
    /// Canonical JSON of the provenance block; `ledger_after` (the
    /// post-request ledger of the same release) completes the budget
    /// before/after pair.
    pub fn to_json(&self, ledger_after: &BudgetLedger) -> Json {
        let mut obj = BTreeMap::new();
        obj.insert("store".to_string(), Json::from(self.store));
        obj.insert("seeds".to_string(), Json::Int(self.seeds as i128));
        let classes = match self.classes {
            Some(classes) => Json::Int(classes as i128),
            None => Json::Null,
        };
        obj.insert("classes".to_string(), classes);
        obj.insert("omega".to_string(), Json::Str(render_omega(self.omega)));
        obj.insert("workers".to_string(), Json::Int(self.workers as i128));
        obj.insert(
            "max_candidates".to_string(),
            Json::Int(self.max_candidates as i128),
        );
        obj.insert("k".to_string(), Json::Int(self.k as i128));
        obj.insert("gamma".to_string(), Json::Float(self.gamma));
        let epsilon0 = match self.epsilon0 {
            Some(epsilon0) => Json::Float(epsilon0),
            None => Json::Null,
        };
        obj.insert("epsilon0".to_string(), epsilon0);
        obj.insert(
            "request_seed".to_string(),
            Json::Int(self.request_seed as i128),
        );
        obj.insert("epoch".to_string(), Json::Int(self.epoch as i128));
        let mut ledger = BTreeMap::new();
        ledger.insert("before".to_string(), ledger_side_json(&self.ledger_before));
        ledger.insert("after".to_string(), ledger_side_json(ledger_after));
        obj.insert("ledger".to_string(), Json::Obj(ledger));
        obj.insert(
            "trace_spans".to_string(),
            Json::Int(self.trace_spans as i128),
        );
        Json::Obj(obj)
    }
}

/// Stable string rendering of an ω spec for provenance (`"fixed:9"`,
/// `"uniform:8-11"`).
fn render_omega(omega: OmegaSpec) -> String {
    match omega {
        OmegaSpec::Fixed(w) => format!("fixed:{w}"),
        OmegaSpec::UniformRange { lo, hi } => format!("uniform:{lo}-{hi}"),
    }
}

/// One side of the provenance budget pair: cumulative (ε, δ) plus the release
/// and request totals of the ledger at that point.
fn ledger_side_json(ledger: &BudgetLedger) -> Json {
    let total = ledger.total();
    let mut obj = BTreeMap::new();
    obj.insert("epsilon".to_string(), Json::Float(total.epsilon));
    obj.insert("delta".to_string(), Json::Float(total.delta));
    obj.insert("releases".to_string(), Json::Int(ledger.releases as i128));
    obj.insert("requests".to_string(), Json::Int(ledger.requests as i128));
    Json::Obj(obj)
}

/// One privacy-test observation captured for tracing: which store served the
/// test, at what granularity, and how it decided.  Collection is bounded
/// ([`MAX_TRACE_PROBES`] per request) and only happens when the global trace
/// is enabled — the probes feed `core.privacy_test` spans, never decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidateProbe {
    /// Global proposal rank of the candidate (worker-interleaved ordering).
    pub rank: usize,
    /// Store granularity that served this test (`"scan"`, `"inverted"`,
    /// `"partition"`).
    pub store: &'static str,
    /// Whether the candidate passed the privacy test.
    pub passed: bool,
    /// Plausible seeds (or classes, at class granularity) counted before the
    /// test stopped.
    pub plausible_seeds: usize,
    /// Records (or classes) examined by the test.
    pub records_examined: usize,
}

/// Per-request cap on traced privacy tests: each worker keeps its first
/// `MAX_TRACE_PROBES` probes (ranks increase monotonically per worker), the
/// merge keeps the globally smallest-ranked `MAX_TRACE_PROBES` — a
/// deterministic prefix of the proposal order at `workers = 1`.
pub const MAX_TRACE_PROBES: usize = 32;

/// A seed-store slot of [`SessionShared`]: either materialized up front
/// (training builds its stores eagerly) or deferred behind a splice/build
/// closure that the first accessor runs exactly once.
///
/// [`SynthesisSession::update`] defers store maintenance so the ingest
/// critical path stays O(|Δ|): the splice cost amortizes into the first
/// request of the new epoch, which its privacy test dominates anyway.  Every
/// failure mode of the deferred closure is ruled out at update time (schema
/// validation covers insert arity and domains, delete indices are derived
/// ascending, sizes and weights are checked), so materialization is
/// infallible.
struct StoreSlot<S> {
    cell: OnceLock<Option<Arc<S>>>,
    /// The deferred work, consumed by the first materialization.
    pending: Mutex<Option<Box<dyn FnOnce() -> S + Send>>>,
}

impl<S> StoreSlot<S> {
    /// A slot holding `store` (or holding "no store") from the start.
    fn ready(store: Option<S>) -> Self {
        StoreSlot::ready_shared(store.map(Arc::new))
    }

    /// Like [`ready`](StoreSlot::ready) but sharing an existing handle — the
    /// "unchanged state shared via `Arc`" path of an incremental update.
    fn ready_shared(store: Option<Arc<S>>) -> Self {
        let cell = OnceLock::new();
        let _ = cell.set(store);
        StoreSlot {
            cell,
            pending: Mutex::new(None),
        }
    }

    /// A slot that materializes by running `work` on first access.
    fn deferred(work: impl FnOnce() -> S + Send + 'static) -> Self {
        StoreSlot {
            cell: OnceLock::new(),
            pending: Mutex::new(Some(Box::new(work))),
        }
    }

    /// The store, materializing it first if this slot was deferred.  The
    /// `OnceLock` guarantees exactly one thread runs the deferred work; the
    /// rest block and observe the finished store.
    fn get(&self) -> Option<&S> {
        self.cell
            .get_or_init(|| {
                let work = self
                    .pending
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .take()
                    .expect("a deferred slot holds its pending work");
                Some(Arc::new(work()))
            })
            .as_deref()
    }

    /// Materialize (if needed) and return a shared handle.
    fn get_shared(&self) -> Option<Arc<S>> {
        self.get();
        self.cell.get().expect("just materialized").clone()
    }
}

impl<S> std::fmt::Debug for StoreSlot<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.cell.get() {
            Some(Some(_)) => f.write_str("StoreSlot(ready)"),
            Some(None) => f.write_str("StoreSlot(none)"),
            None => f.write_str("StoreSlot(deferred)"),
        }
    }
}

/// The immutable trained artifacts of a session, shared (via `Arc`) across
/// every clone: the data split, the learned models, and the inverted seed
/// index.  Training — and the index build — happen exactly once per
/// [`SynthesisEngine::train`] call no matter how many handles serve requests.
#[derive(Debug)]
struct SessionShared {
    split: DataSplit,
    models: TrainedModels,
    /// The inverted seed index, built at train time (absent when the
    /// session policy is [`SeedIndex::Scan`] or [`SeedIndex::Partition`]) and
    /// spliced lazily after an [`update`](SynthesisSession::update).
    index: StoreSlot<InvertedIndexStore>,
    /// The partition-aware store of likelihood-equivalence classes, built at
    /// train time (absent when the session policy is [`SeedIndex::Scan`] or
    /// [`SeedIndex::Inverted`]) and spliced lazily after an
    /// [`update`](SynthesisSession::update).
    partition: StoreSlot<PartitionIndexStore>,
    index_build: Duration,
    training: Duration,
}

/// A trained, immutable synthesis session: the learned models plus the seed
/// store, serving repeated [`generate`](SynthesisSession::generate) requests
/// while a [`BudgetLedger`] accumulates the privacy cost of every release.
///
/// The session is `Send + Sync`; concurrent requests only contend on the
/// ledger mutex for a few nanoseconds per request.
///
/// # Cloning
///
/// `SynthesisSession` is `Clone`, and clones are **handles to the same
/// logical session**: they share the trained models, the seed split, the
/// inverted index (no rebuild — one build per train), *and* the budget
/// ledger.  Sharing the ledger is deliberate: releases from the same seed
/// store compose sequentially no matter which handle served them
/// (Section 8), so every handle must charge — and be capped against — the
/// same cumulative (ε, δ).
#[derive(Debug, Clone)]
pub struct SynthesisSession {
    config: PipelineConfig,
    shared: Arc<SessionShared>,
    per_release: Option<DpBudget>,
    ledger: Arc<Mutex<BudgetLedger>>,
    /// Metric scope of this handle (see
    /// [`with_scope`](SynthesisSession::with_scope)); `None` writes the
    /// global rollup only.
    scope: Option<Scope>,
    /// How many [`update`](SynthesisSession::update) steps separate this
    /// session from its original [`SynthesisEngine::train`] (0 = freshly
    /// trained).  Stamped into every release's [`Provenance`].
    epoch: u64,
}

impl SynthesisSession {
    /// The configuration the session was trained with (request defaults).
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Label every metric this handle records with `scope` (e.g.
    /// `session=<name>`): request counters and timers land in both the
    /// global rollup and the scope's cell, and generate-trace roots carry the
    /// scope's labels.  The scope travels with **this handle** — other clones
    /// of the session keep their own (or no) scope — so one trained session
    /// can serve differently-labeled surfaces.  Scope on bounded dimensions
    /// only (session names, shards); unbounded ids belong in trace labels.
    pub fn with_scope(mut self, scope: Scope) -> Self {
        self.scope = Some(scope);
        self
    }

    /// The metric scope of this handle, if any.
    pub fn scope(&self) -> Option<&Scope> {
        self.scope.as_ref()
    }

    /// The models learned at training time.
    pub fn models(&self) -> &TrainedModels {
        &self.shared.models
    }

    /// The disjoint data split the session was trained on.
    pub fn split(&self) -> &DataSplit {
        &self.shared.split
    }

    /// The seed store `D_S` that every request draws seeds from.
    pub fn seeds(&self) -> &Dataset {
        &self.shared.split.seeds
    }

    /// Per-release (ε, δ) bound of Theorem 1 under the session's privacy test.
    pub fn per_release_budget(&self) -> Option<DpBudget> {
        self.per_release
    }

    /// Wall-clock time spent splitting the data and learning the models.
    pub fn training_time(&self) -> Duration {
        self.shared.training
    }

    /// Wall-clock time spent building the seed indexes (inverted and/or
    /// partition store) at train time (zero when the session policy is
    /// [`SeedIndex::Scan`]).
    pub fn index_build_time(&self) -> Duration {
        self.shared.index_build
    }

    /// The inverted seed index, if the session built one.  Clones of the same
    /// session return the same shared instance.  After an
    /// [`update`](SynthesisSession::update), the first accessor call splices
    /// the deferred delta into the store (exactly once).
    pub fn seed_store(&self) -> Option<&InvertedIndexStore> {
        self.shared.index.get()
    }

    /// The partition-aware store of likelihood-equivalence classes, if the
    /// session built one.  Clones of the same session return the same shared
    /// instance.  After an [`update`](SynthesisSession::update), the first
    /// accessor call splices the deferred delta into the store (exactly once).
    pub fn partition_store(&self) -> Option<&PartitionIndexStore> {
        self.shared.partition.get()
    }

    /// Resolve the effective store for a request: the request override, else
    /// the session policy.  `None` means "use the linear scan".
    ///
    /// `likelihood` is the request model's likelihood guarantee
    /// ([`GenerativeModel::likelihood_attributes`]); [`SeedIndex::Auto`]
    /// prefers the partition store only when its class keying covers it (so
    /// tests run at class granularity), degrading to the inverted index
    /// otherwise.
    fn resolve_store(
        &self,
        request: &GenerateRequest,
        likelihood: Option<&[usize]>,
    ) -> Result<Option<&dyn SeedStore>> {
        match request.seed_index.unwrap_or(self.config.seed_index) {
            SeedIndex::Scan => Ok(None),
            SeedIndex::Inverted => match self.shared.index.get() {
                Some(index) => Ok(Some(index as &dyn SeedStore)),
                None => Err(CoreError::InvalidParameter(format!(
                    "request asked for SeedIndex::Inverted but the session was trained \
                     with SeedIndex::{} (no inverted index was built)",
                    self.config.seed_index
                ))),
            },
            SeedIndex::Partition => match self.shared.partition.get() {
                Some(partition) => Ok(Some(partition as &dyn SeedStore)),
                None => Err(CoreError::InvalidParameter(format!(
                    "request asked for SeedIndex::Partition but the session was trained \
                     with SeedIndex::{} (no partition store was built)",
                    self.config.seed_index
                ))),
            },
            SeedIndex::Auto => {
                if self.seeds().len() < self.config.auto_index_min_seeds {
                    return Ok(None);
                }
                if let Some(partition) =
                    self.shared.partition.get().filter(|p| p.covers(likelihood))
                {
                    return Ok(Some(partition as &dyn SeedStore));
                }
                Ok(self.shared.index.get().map(|index| index as &dyn SeedStore))
            }
        }
    }

    /// A snapshot of the cumulative privacy ledger.
    pub fn ledger(&self) -> BudgetLedger {
        *self.ledger.lock().expect("ledger lock poisoned")
    }

    /// Flush the statistics of a finished streaming release into the metrics
    /// registry (scoped to the session's label set when one was attached with
    /// [`with_scope`](SynthesisSession::with_scope)).
    ///
    /// [`release_iter`](SynthesisSession::release_iter) itself never touches
    /// the registry — a streaming caller decides when (and whether) the
    /// request's counters are observed, typically once per drained iterator.
    /// The scoped handles write both the global rollup and the scope cell, so
    /// callers must invoke this at most once per iterator.
    pub fn flush_stream_stats(&self, stats: &MechanismStats) {
        match &self.scope {
            Some(scope) => {
                let view = sgf_metrics::scoped(scope);
                view.counter("core.mechanism.requests").incr();
                view.counter("core.mechanism.candidates")
                    .add(stats.candidates as u64);
                view.counter("core.mechanism.released")
                    .add(stats.released as u64);
                view.counter("core.mechanism.records_examined")
                    .add(stats.records_examined as u64);
                view.counter("core.mechanism.index_tests")
                    .add(stats.index_tests as u64);
                view.counter("core.mechanism.scan_tests")
                    .add(stats.scan_tests as u64);
                view.counter("core.mechanism.partition_tests")
                    .add(stats.partition_tests as u64);
                view.counter("core.mechanism.class_cache_hits")
                    .add(stats.class_cache_hits as u64);
                view.counter("core.mechanism.class_cache_misses")
                    .add(stats.class_cache_misses as u64);
            }
            None => {
                sgf_metrics::counter("core.mechanism.requests").incr();
                sgf_metrics::counter("core.mechanism.candidates").add(stats.candidates as u64);
                sgf_metrics::counter("core.mechanism.released").add(stats.released as u64);
                sgf_metrics::counter("core.mechanism.records_examined")
                    .add(stats.records_examined as u64);
                sgf_metrics::counter("core.mechanism.index_tests").add(stats.index_tests as u64);
                sgf_metrics::counter("core.mechanism.scan_tests").add(stats.scan_tests as u64);
                sgf_metrics::counter("core.mechanism.partition_tests")
                    .add(stats.partition_tests as u64);
                sgf_metrics::counter("core.mechanism.class_cache_hits")
                    .add(stats.class_cache_hits as u64);
                sgf_metrics::counter("core.mechanism.class_cache_misses")
                    .add(stats.class_cache_misses as u64);
            }
        }
    }

    /// Atomically reserve budget for up to `records` releases under the
    /// per-session cap `cap` (see [`BudgetLedger::try_reserve`]).
    ///
    /// This is the admission-control half of serving releases under a cap:
    /// the check and the reservation happen under one ledger lock, so
    /// concurrent requests can never jointly overshoot the cap.  A successful
    /// reservation must be settled by exactly one
    /// [`generate_reserved`](SynthesisSession::generate_reserved) /
    /// [`generate_reserved_with`](SynthesisSession::generate_reserved_with)
    /// call or one [`abort_reservation`](SynthesisSession::abort_reservation).
    pub fn try_reserve(&self, records: usize, cap: DpBudget) -> Result<()> {
        self.ledger
            .lock()
            .expect("ledger lock poisoned")
            .try_reserve(records, cap)
    }

    /// Free a reservation made with
    /// [`try_reserve`](SynthesisSession::try_reserve) without releasing
    /// anything (the request was rejected downstream or failed).
    pub fn abort_reservation(&self, records: usize) {
        self.ledger
            .lock()
            .expect("ledger lock poisoned")
            .abort(records);
    }

    /// Serve one request with the session's own seed-based synthesizer: build
    /// one fixed-ω synthesizer per admissible ω and fan candidate generation
    /// out over the request's worker count.
    pub fn generate(&self, request: &GenerateRequest) -> Result<ReleaseReport> {
        self.generate_seeded(request, None)
    }

    /// Serve one request against a prior reservation of `reserved` records
    /// (`request.target` must not exceed it): on success the actual releases
    /// are committed and any unused part of the reservation is freed; on
    /// error the whole reservation is aborted.  Either way the reservation is
    /// fully settled when this returns.
    pub fn generate_reserved(
        &self,
        reserved: usize,
        request: &GenerateRequest,
    ) -> Result<ReleaseReport> {
        self.generate_seeded(request, Some(reserved))
            .inspect_err(|_| self.abort_reservation(reserved))
    }

    /// [`generate_with`](SynthesisSession::generate_with) against a prior
    /// reservation — same settlement semantics as
    /// [`generate_reserved`](SynthesisSession::generate_reserved).
    pub fn generate_reserved_with<M: GenerativeModel + ?Sized>(
        &self,
        model: &M,
        reserved: usize,
        request: &GenerateRequest,
    ) -> Result<ReleaseReport> {
        self.check_reservation(reserved, request)
            .and_then(|_| self.generate_over(&[model], request, Some(reserved)))
            .inspect_err(|_| self.abort_reservation(reserved))
    }

    /// The seed-synthesizer generate path, optionally settling a reservation.
    fn generate_seeded(
        &self,
        request: &GenerateRequest,
        reservation: Option<usize>,
    ) -> Result<ReleaseReport> {
        if let Some(reserved) = reservation {
            self.check_reservation(reserved, request)?;
        }
        let synthesizers = self.build_synthesizers(request.omega.unwrap_or(self.config.omega))?;
        let refs: Vec<&SeedSynthesizer> = synthesizers.iter().collect();
        self.generate_over(&refs, request, reservation)
    }

    /// A reserved request may not target more records than were admitted.
    fn check_reservation(&self, reserved: usize, request: &GenerateRequest) -> Result<()> {
        if request.target > reserved {
            return Err(CoreError::InvalidParameter(format!(
                "request targets {} records but only {} were reserved at admission",
                request.target, reserved
            )));
        }
        Ok(())
    }

    /// One fixed-ω synthesizer per admissible ω of `omega` (the mechanism
    /// needs `Pr{y = M(d)}` for the exact model that produced `y`, so a
    /// randomized ω draws among pre-built fixed-ω models per candidate).
    fn build_synthesizers(&self, omega: OmegaSpec) -> Result<Vec<SeedSynthesizer>> {
        omega.validate(self.seeds().schema().len())?;
        let (lo, hi) = match omega {
            OmegaSpec::Fixed(w) => (w, w),
            OmegaSpec::UniformRange { lo, hi } => (lo, hi),
        };
        Ok((lo..=hi)
            .map(|w| SeedSynthesizer::new(Arc::clone(&self.shared.models.cpts), w))
            .collect::<sgf_model::Result<_>>()?)
    }

    /// Serve one request through an *arbitrary* generative model — the same
    /// plausible-deniability mechanism and budget accounting, with `model`
    /// (e.g. the marginal baseline, or a `&dyn GenerativeModel` trait object)
    /// in place of the seed-based synthesizer.
    pub fn generate_with<M: GenerativeModel + ?Sized>(
        &self,
        model: &M,
        request: &GenerateRequest,
    ) -> Result<ReleaseReport> {
        self.generate_over(&[model], request, None)
    }

    /// Open a streaming iterator over released records.  Records are proposed
    /// and tested lazily as the iterator is advanced; each released record is
    /// charged to the session ledger as it is yielded.
    ///
    /// Streaming is inherently sequential: proposals run on the calling
    /// thread and the request's `workers` override is ignored.  Use
    /// [`generate`](SynthesisSession::generate) for parallel fan-out.
    pub fn release_iter(&self, request: GenerateRequest) -> Result<ReleaseIter<'_>> {
        self.open_release_iter(request, false)
    }

    /// [`release_iter`](SynthesisSession::release_iter) against a prior
    /// reservation of `reserved` records (`request.target` must not exceed
    /// it).  Each yielded record *converts* one reserved record into a
    /// release, so the ledger's worst case stays exact for the whole stream;
    /// when the stream finishes, the caller settles the remainder with
    /// [`abort_reservation`](SynthesisSession::abort_reservation)
    /// (`reserved` minus the records actually yielded).  An open error
    /// settles the whole reservation.
    pub fn release_iter_reserved(
        &self,
        reserved: usize,
        request: GenerateRequest,
    ) -> Result<ReleaseIter<'_>> {
        self.check_reservation(reserved, &request)
            .and_then(|_| self.open_release_iter(request, true))
            .inspect_err(|_| self.abort_reservation(reserved))
    }

    fn open_release_iter(
        &self,
        request: GenerateRequest,
        from_reservation: bool,
    ) -> Result<ReleaseIter<'_>> {
        let (target, _workers, max_candidates) = self.request_limits(&request)?;
        let models = self.build_synthesizers(request.omega.unwrap_or(self.config.omega))?;
        // models[0] is the smallest-ω synthesizer: its kept attributes are
        // the largest likelihood set of the request, so if the partition
        // store covers it, it covers every synthesizer of the request.
        let store = self.resolve_store(&request, models[0].likelihood_attributes())?;
        // Validate the mechanism inputs once; `next` uses the raw hot path.
        Mechanism::new(&models[0], self.seeds(), self.config.privacy_test)?;
        let ledger_before = {
            let mut guard = self.ledger.lock().expect("ledger lock poisoned");
            let before = *guard;
            guard.record_request(0);
            before
        };
        Ok(ReleaseIter {
            session: self,
            models,
            store,
            rng: StdRng::seed_from_u64(request_worker_seed(request.seed, 0)),
            stats: MechanismStats::default(),
            target,
            max_candidates,
            from_reservation,
            request,
            ledger_before,
        })
    }

    /// Validate and resolve the per-request limits against session defaults.
    fn request_limits(&self, request: &GenerateRequest) -> Result<(usize, usize, usize)> {
        if request.target == 0 {
            return Err(CoreError::InvalidParameter(
                "target must be at least 1".into(),
            ));
        }
        let workers = request.workers.unwrap_or(self.config.workers);
        if workers == 0 {
            return Err(CoreError::InvalidParameter(
                "workers must be at least 1".into(),
            ));
        }
        let factor = request
            .max_candidate_factor
            .unwrap_or(self.config.max_candidate_factor);
        if factor == 0 {
            return Err(CoreError::InvalidParameter(
                "max_candidate_factor must be at least 1".into(),
            ));
        }
        Ok((
            request.target,
            workers,
            request.target.saturating_mul(factor),
        ))
    }

    fn generate_over<M: GenerativeModel + ?Sized>(
        &self,
        models: &[&M],
        request: &GenerateRequest,
        reservation: Option<usize>,
    ) -> Result<ReleaseReport> {
        let (target, workers, max_candidates) = self.request_limits(request)?;
        let likelihood = models.first().and_then(|m| m.likelihood_attributes());
        let store = self.resolve_store(request, likelihood)?;
        let store_kind = store.map_or("scan", |s| s.kind());
        let ledger_before = self.ledger();
        let tracing = sgf_metrics::trace().enabled();
        let mut probes: Vec<CandidateProbe> = Vec::new();
        let start = Instant::now();
        let (records, stats) = run_mechanism(
            models,
            self.seeds(),
            store,
            self.config.privacy_test,
            target,
            max_candidates,
            workers,
            request.seed,
            self.scope.as_ref(),
            tracing.then_some(&mut probes),
        )?;
        let synthesis = start.elapsed();
        match &self.scope {
            Some(scope) => sgf_metrics::scoped(scope)
                .timer("core.synthesis")
                .observe(synthesis),
            None => sgf_metrics::timer("core.synthesis").observe(synthesis),
        }
        let ledger = {
            let mut guard = self.ledger.lock().expect("ledger lock poisoned");
            match reservation {
                Some(reserved) => guard.commit(reserved, stats.released),
                None => guard.record_request(stats.released),
            }
            *guard
        };
        let trace_spans = if tracing {
            commit_generate_trace(
                self.scope.as_ref(),
                request,
                store_kind,
                target,
                workers,
                &stats,
                &probes,
                synthesis,
            )
        } else {
            0
        };
        let provenance = Provenance {
            store: store_kind,
            seeds: self.seeds().len(),
            classes: (store_kind == "partition")
                .then(|| self.shared.partition.get().map(|p| p.class_count()))
                .flatten(),
            omega: request.omega.unwrap_or(self.config.omega),
            workers,
            max_candidates,
            k: self.config.privacy_test.k,
            gamma: self.config.privacy_test.gamma,
            epsilon0: self.config.privacy_test.epsilon0,
            request_seed: request.seed,
            epoch: self.epoch,
            ledger_before,
            trace_spans,
        };
        Ok(ReleaseReport {
            synthetics: Dataset::from_records_unchecked(self.seeds().schema_arc(), records),
            stats,
            per_release: self.per_release,
            ledger,
            synthesis,
            provenance,
        })
    }

    /// Dismantle the session into its split, models, and final ledger (used by
    /// the one-shot compatibility wrapper, and handy for evaluation).
    ///
    /// When this handle is the last one, the trained artifacts are moved out;
    /// while clones are still alive they are cloned instead (and the returned
    /// ledger is a snapshot of the shared one).
    pub fn into_parts(self) -> (DataSplit, TrainedModels, BudgetLedger) {
        let ledger = *self.ledger.lock().expect("ledger lock poisoned");
        match Arc::try_unwrap(self.shared) {
            Ok(shared) => (shared.split, shared.models, ledger),
            Err(arc) => (arc.split.clone(), arc.models.clone(), ledger),
        }
    }

    /// How many [`update`](SynthesisSession::update) steps separate this
    /// session from its original train (0 = freshly trained).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Apply a seed-data delta and return the next session **epoch**: a new
    /// immutable session over the post-delta dataset, leaving this one
    /// untouched (old epochs keep serving until dropped).
    ///
    /// Work scales with the delta, not the dataset: the deterministic hash
    /// split routes each ±record to its subset by value alone, model counts
    /// merge in O(|Δ|) ([`sgf_model::StructureCounts`],
    /// [`sgf_model::CptCounts`], [`sgf_model::MarginalCounts`]), and the seed
    /// indexes splice their posting lists / equivalence classes in place
    /// instead of rebuilding.  A delta touching `D_T` re-derives the
    /// correlation matrix from the merged counts and re-learns the dependency
    /// graph when the entrywise drift exceeds the configured
    /// `drift_threshold`; a graph change cascades into a full CPT re-learn
    /// and (if the kept-attribute key changed) a partition-store rebuild.
    ///
    /// **Equivalence invariant** (at the default `drift_threshold = 0.0`):
    /// the returned session's split, models, classes, and posting lists are
    /// bit-identical to `SynthesisEngine::train` on the post-delta dataset,
    /// so identically-seeded `generate` calls release byte-identical records.
    ///
    /// The privacy ledger is **shared** with this session (same `Arc`):
    /// releases keep composing across epochs because they disclose the same
    /// underlying population.  The scope handle and per-release budget carry
    /// over; `epoch` increments and is stamped into every release's
    /// [`Provenance`].
    pub fn update(&self, delta: &DatasetDelta) -> Result<SynthesisSession> {
        let start = Instant::now();
        let shared = &self.shared;
        delta.validate_against(shared.split.seeds.schema())?;
        if delta.is_empty() {
            // Nothing changed: the new epoch shares the *entire* trained
            // state (one `Arc` bump) and differs only in its epoch stamp.
            sgf_metrics::counter("core.updates").incr();
            sgf_metrics::timer("core.update").observe(start.elapsed());
            return Ok(SynthesisSession {
                config: self.config,
                shared: Arc::clone(shared),
                per_release: self.per_release,
                ledger: Arc::clone(&self.ledger),
                scope: self.scope.clone(),
                epoch: self.epoch + 1,
            });
        }
        let bucketizer = shared.models.cpts.bucketizer();
        // Route every ±record to its split subset by value hash — the same
        // assignment `train`'s `split_dataset_by_hash` would make, so the
        // per-subset deltas reproduce the from-scratch split of the final
        // dataset.  `Unassigned` records never entered any subset.
        let mut deletes: [Vec<Record>; 4] = Default::default();
        let mut inserts: [Vec<Record>; 4] = Default::default();
        for record in delta.deletes() {
            if let Some(slot) = role_slot(split_role(&self.config.split, self.config.seed, record))
            {
                deletes[slot].push(record.clone());
            }
        }
        for record in delta.inserts() {
            if let Some(slot) = role_slot(split_role(&self.config.split, self.config.seed, record))
            {
                inserts[slot].push(record.clone());
            }
        }
        let (_, structure_data) =
            apply_subset_delta(&shared.split.structure, &deletes[0], &inserts[0])?;
        let (_, parameters_data) =
            apply_subset_delta(&shared.split.parameters, &deletes[1], &inserts[1])?;
        let (seed_deletes, seeds_data) =
            apply_subset_delta(&shared.split.seeds, &deletes[2], &inserts[2])?;
        let (_, test_data) = apply_subset_delta(&shared.split.test, &deletes[3], &inserts[3])?;
        if seeds_data.len() < self.config.privacy_test.k {
            return Err(CoreError::DatasetTooSmall {
                available: seeds_data.len(),
                required: self.config.privacy_test.k,
            });
        }
        let structure_changed = !deletes[0].is_empty() || !inserts[0].is_empty();
        let parameters_changed = !deletes[1].is_empty() || !inserts[1].is_empty();

        // Structure: merge the delta into the sufficient statistics, then
        // re-derive the correlation matrix from counts — no pass over D_T.
        // The rng seed matches `learn_models`, so the (possibly noisy) matrix
        // is bit-identical to a from-scratch retrain.  The drift gate splits
        // the relearn at the matrix: below the threshold the old structure is
        // kept (the documented exactness relaxation) and the CFS parent-set
        // search — the expensive half of the relearn — never runs.
        let mut structure_counts = shared.models.structure_counts.clone();
        let structure = if structure_changed {
            structure_counts.apply_delta(&deletes[0], &inserts[0], bucketizer)?;
            if let Some(dp) = &self.config.structure.dp {
                dp.validate()?;
            }
            let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(0x5eed));
            let correlations =
                structure_counts.matrix(self.config.structure.dp.as_ref(), &mut rng)?;
            let drift = shared
                .models
                .structure
                .correlations
                .max_abs_diff(&correlations);
            sgf_metrics::summary("core.update.structure_drift")
                .observe((drift * 1e6).min(u64::MAX as f64) as u64);
            if drift > self.config.drift_threshold {
                structure_from_correlations(correlations, bucketizer, &self.config.structure)?
            } else {
                shared.models.structure.clone()
            }
        } else {
            shared.models.structure.clone()
        };
        let graph_changed = structure.graph != shared.models.structure.graph;

        // Parameters: a graph change invalidates the CPT layout (full
        // re-learn over the new D_P); otherwise the contingency counts merge
        // and the store is re-derived from them, or shared untouched.
        let cpts: Arc<CptStore> = if graph_changed {
            Arc::new(CptStore::learn(
                &parameters_data,
                bucketizer,
                &structure.graph,
                self.config.parameters,
            )?)
        } else if parameters_changed {
            Arc::new(shared.models.cpts.apply_delta(&deletes[1], &inserts[1])?)
        } else {
            Arc::clone(&shared.models.cpts)
        };
        let mut marginal_counts = shared.models.marginal_counts.clone();
        let marginal = if parameters_changed {
            marginal_counts.apply_delta(&deletes[1], &inserts[1])?;
            MarginalModel::from_counts(&marginal_counts, marginal_config(&self.config))?
        } else {
            shared.models.marginal.clone()
        };
        let models = TrainedModels {
            bayes_net: BayesNetModel::new(Arc::clone(&cpts)),
            structure,
            cpts,
            marginal,
            structure_counts,
            marginal_counts,
        };
        let training = start.elapsed();

        // Indexes: a store the delta cannot have changed is shared with the
        // parent epoch via `Arc`; a touched one defers its splice (or
        // rebuild) into a [`StoreSlot`] that the first request of the new
        // epoch materializes, keeping `update` itself O(|Δ|).  Every failure
        // mode of the deferred work is ruled out *here*: delta records are
        // schema-validated (arity and domains), delete indices are derived
        // ascending, and sizes/weights are checked below.
        let build_start = Instant::now();
        if seeds_data.len() > u32::MAX as usize {
            return Err(CoreError::InvalidParameter(
                "seed stores support at most u32::MAX records".into(),
            ));
        }
        let seeds_untouched = seed_deletes.is_empty() && inserts[2].is_empty();
        let structure_same =
            !graph_changed && models.structure.correlations == shared.models.structure.correlations;
        let seed_deletes = Arc::new(seed_deletes);
        let seed_inserts = Arc::new(std::mem::take(&mut inserts[2]));
        let index = match self.config.seed_index {
            SeedIndex::Scan | SeedIndex::Partition => StoreSlot::ready(None),
            SeedIndex::Inverted | SeedIndex::Auto => {
                let weights = models.structure.attribute_weights();
                if let Some((attr, &w)) = weights.iter().enumerate().find(|(_, w)| !w.is_finite()) {
                    return Err(CoreError::InvalidParameter(format!(
                        "attribute weight {attr} of the updated structure is {w}; \
                         weights must be finite"
                    )));
                }
                match self.shared.index.get_shared() {
                    // Same seeds, same weights: the parent's posting lists
                    // are byte-identical to a fresh build — share them.
                    Some(old) if seeds_untouched && structure_same => {
                        StoreSlot::ready_shared(Some(old))
                    }
                    Some(old) => {
                        let deletes = Arc::clone(&seed_deletes);
                        let ins = Arc::clone(&seed_inserts);
                        StoreSlot::deferred(move || {
                            old.apply_delta(&deletes, &ins, &weights)
                                .expect("splice inputs were validated at update time")
                        })
                    }
                    None => {
                        let seeds = seeds_data.clone();
                        let bucketizer = bucketizer.clone();
                        StoreSlot::deferred(move || {
                            InvertedIndexStore::build(
                                &seeds,
                                &bucketizer,
                                &weights,
                                MAX_INTERSECT_LISTS,
                            )
                            .expect("build inputs were validated at update time")
                        })
                    }
                }
            }
        };
        let partition = match self.config.seed_index {
            SeedIndex::Scan | SeedIndex::Inverted => StoreSlot::ready(None),
            SeedIndex::Partition | SeedIndex::Auto => {
                let lo = match self.config.omega {
                    OmegaSpec::Fixed(w) => w,
                    OmegaSpec::UniformRange { lo, .. } => lo,
                };
                let synthesizer = SeedSynthesizer::new(Arc::clone(&models.cpts), lo)?;
                let mut key: Vec<usize> = synthesizer.kept_attributes().to_vec();
                key.sort_unstable();
                key.dedup();
                let reusable = self
                    .shared
                    .partition
                    .get_shared()
                    .filter(|old| old.attributes() == key.as_slice());
                match reusable {
                    // Same seeds, same kept-attribute key: the parent's
                    // classes are byte-identical to a fresh build.
                    Some(old) if seeds_untouched => StoreSlot::ready_shared(Some(old)),
                    Some(old) => {
                        let deletes = Arc::clone(&seed_deletes);
                        let ins = Arc::clone(&seed_inserts);
                        StoreSlot::deferred(move || {
                            old.apply_delta(&deletes, &ins)
                                .expect("splice inputs were validated at update time")
                        })
                    }
                    None => {
                        let seeds = seeds_data.clone();
                        let kept: Vec<usize> = synthesizer.kept_attributes().to_vec();
                        let class_cache = self.config.class_cache;
                        StoreSlot::deferred(move || {
                            let store = PartitionIndexStore::build(&seeds, &kept)
                                .expect("build inputs were validated at update time");
                            if class_cache {
                                store.with_class_cache()
                            } else {
                                store
                            }
                        })
                    }
                }
            }
        };
        let index_build = build_start.elapsed();
        sgf_metrics::counter("core.updates").incr();
        sgf_metrics::timer("core.update").observe(start.elapsed());
        let trace = sgf_metrics::trace();
        if trace.enabled() {
            let mut batch = TraceBatch::new();
            let root = batch.span("core.update", SpanId::NONE);
            batch.counter(root, "epoch", self.epoch + 1);
            batch.counter(root, "delta_records", delta.change_count() as u64);
            batch.counter(root, "seeds", seeds_data.len() as u64);
            batch.label(root, "structure_relearned", on_off(graph_changed));
            batch.wall(root, start.elapsed());
            trace.commit(batch);
        }
        Ok(SynthesisSession {
            config: self.config,
            shared: Arc::new(SessionShared {
                split: DataSplit {
                    structure: structure_data,
                    parameters: parameters_data,
                    seeds: seeds_data,
                    test: test_data,
                },
                models,
                index,
                partition,
                index_build,
                training,
            }),
            per_release: self.per_release,
            ledger: Arc::clone(&self.ledger),
            scope: self.scope.clone(),
            epoch: self.epoch + 1,
        })
    }
}

/// Slot of a split role in the per-subset delta arrays (`None` for records
/// the hash split drops entirely).
fn role_slot(role: SplitRole) -> Option<usize> {
    match role {
        SplitRole::Structure => Some(0),
        SplitRole::Parameters => Some(1),
        SplitRole::Seeds => Some(2),
        SplitRole::Test => Some(3),
        SplitRole::Unassigned => None,
    }
}

/// Apply one subset's delta: resolve `deletes` by value against the current
/// records (first remaining occurrence, the canonical `DatasetDelta` rule),
/// append `inserts` after the survivors, and return the **deleted** index
/// list (ascending — what the index stores splice on) plus the new dataset.
fn apply_subset_delta(
    dataset: &Dataset,
    deletes: &[Record],
    inserts: &[Record],
) -> Result<(Vec<usize>, Dataset)> {
    if deletes.is_empty() {
        // Untouched or insert-only subset: share every existing record with
        // the parent epoch (`Dataset::with_appended` keeps the base block
        // behind the same `Arc`) — O(|inserts|) instead of O(subset).
        return Ok((Vec::new(), dataset.with_appended(inserts.to_vec())?));
    }
    let survivors = apply_deletes(dataset.records(), deletes)?;
    let mut deleted = Vec::with_capacity(deletes.len());
    let mut next_survivor = survivors.iter().peekable();
    for idx in 0..dataset.len() {
        match next_survivor.peek() {
            Some(&&s) if s == idx => {
                next_survivor.next();
            }
            _ => deleted.push(idx),
        }
    }
    let mut records: Vec<Record> = survivors
        .iter()
        .map(|&i| dataset.records()[i].clone())
        .collect();
    records.extend(inserts.iter().cloned());
    Ok((
        deleted,
        Dataset::from_records_unchecked(dataset.schema_arc(), records),
    ))
}

/// Streaming iterator over released records (see
/// [`SynthesisSession::release_iter`]).  Yields `Ok(record)` for every
/// candidate that passes the privacy test, stops after the request target or
/// the proposal cap, whichever comes first.
#[derive(Debug)]
pub struct ReleaseIter<'s> {
    session: &'s SynthesisSession,
    models: Vec<SeedSynthesizer>,
    store: Option<&'s dyn SeedStore>,
    rng: StdRng,
    stats: MechanismStats,
    target: usize,
    max_candidates: usize,
    /// Opened via [`SynthesisSession::release_iter_reserved`]: each yielded
    /// record converts one reserved record instead of charging anew.
    from_reservation: bool,
    /// The request this iterator serves, kept for the provenance block.
    request: GenerateRequest,
    /// Ledger snapshot taken just before this request was recorded.
    ledger_before: BudgetLedger,
}

impl ReleaseIter<'_> {
    /// Statistics over the candidates proposed so far.
    pub fn stats(&self) -> MechanismStats {
        self.stats
    }

    /// Provenance of this streaming release.  Streaming always proposes on
    /// the calling thread (`workers: 1`) and commits no trace spans of its
    /// own, so those fields are fixed; the ledger snapshot is the one taken
    /// when the iterator was opened.
    pub fn provenance(&self) -> Provenance {
        let store_kind = self.store.map_or("scan", |s| s.kind());
        Provenance {
            store: store_kind,
            seeds: self.session.seeds().len(),
            classes: (store_kind == "partition")
                .then(|| self.session.shared.partition.get().map(|p| p.class_count()))
                .flatten(),
            omega: self.request.omega.unwrap_or(self.session.config.omega),
            workers: 1,
            max_candidates: self.max_candidates,
            k: self.session.config.privacy_test.k,
            gamma: self.session.config.privacy_test.gamma,
            epsilon0: self.session.config.privacy_test.epsilon0,
            request_seed: self.request.seed,
            epoch: self.session.epoch,
            ledger_before: self.ledger_before,
            trace_spans: 0,
        }
    }
}

impl Iterator for ReleaseIter<'_> {
    type Item = Result<Record>;

    fn next(&mut self) -> Option<Self::Item> {
        while self.stats.released < self.target && self.stats.candidates < self.max_candidates {
            let which = if self.models.len() == 1 {
                0
            } else {
                self.rng.gen_range(0..self.models.len())
            };
            let scan;
            let store: &dyn SeedStore = match self.store {
                Some(store) => store,
                None => {
                    scan = LinearScanStore::new(self.session.seeds());
                    &scan
                }
            };
            let report = match propose_candidate_with_store(
                &self.models[which],
                self.session.seeds(),
                store,
                &self.session.config.privacy_test,
                &mut self.rng,
            ) {
                Ok(report) => report,
                Err(err) => return Some(Err(err)),
            };
            self.stats.observe(&report.outcome);
            if report.released() {
                self.stats.released += 1;
                let mut ledger = self.session.ledger.lock().expect("ledger lock poisoned");
                if self.from_reservation {
                    ledger.convert_reserved_release();
                } else {
                    ledger.record_streamed_release();
                }
                drop(ledger);
                return Some(Ok(report.record));
            }
        }
        None
    }
}

/// Theorem-1 per-release budget for a privacy-test configuration (tightest ε
/// with δ ≤ 1e-6), or `None` for the deterministic test.
pub(crate) fn per_release_budget(test: &PrivacyTestConfig) -> Option<DpBudget> {
    let epsilon0 = test.epsilon0?;
    crate::dp::ReleaseBudget::optimize(test.k, test.gamma, epsilon0, 1e-6)
        .ok()
        .flatten()
        .map(|b| b.budget)
}

/// Deterministic per-worker RNG seed derivation.
fn request_worker_seed(request_seed: u64, worker: usize) -> u64 {
    request_seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(worker as u64)
}

/// Trace-label rendering of an optional build step.
fn on_off(built: bool) -> &'static str {
    if built {
        "built"
    } else {
        "skipped"
    }
}

/// Commit the span tree of one generate request to the global trace ring:
/// a `core.generate` root (scope labels, store, seed, outcome counters), a
/// `core.proposals` child with the mechanism counters, and one
/// `core.privacy_test` child per captured probe.  Returns the events
/// committed (0 when tracing was toggled off mid-request).
#[allow(clippy::too_many_arguments)]
fn commit_generate_trace(
    scope: Option<&Scope>,
    request: &GenerateRequest,
    store_kind: &'static str,
    target: usize,
    workers: usize,
    stats: &MechanismStats,
    probes: &[CandidateProbe],
    synthesis: Duration,
) -> usize {
    let mut batch = TraceBatch::new();
    let root = batch.span("core.generate", SpanId::NONE);
    if let Some(scope) = scope {
        batch.scope_labels(root, scope);
    }
    batch.label(root, "store", store_kind);
    batch.label(root, "seed", &request.seed.to_string());
    batch.counter(root, "target", target as u64);
    batch.counter(root, "released", stats.released as u64);
    batch.counter(root, "workers", workers as u64);
    batch.wall(root, synthesis);
    let proposals = batch.span("core.proposals", root);
    batch.counter(proposals, "candidates", stats.candidates as u64);
    batch.counter(proposals, "records_examined", stats.records_examined as u64);
    batch.counter(proposals, "index_tests", stats.index_tests as u64);
    batch.counter(proposals, "scan_tests", stats.scan_tests as u64);
    batch.counter(proposals, "partition_tests", stats.partition_tests as u64);
    batch.counter(proposals, "class_cache_hits", stats.class_cache_hits as u64);
    batch.counter(
        proposals,
        "class_cache_misses",
        stats.class_cache_misses as u64,
    );
    if stats.candidates > probes.len() {
        batch.counter(
            proposals,
            "candidates_untraced",
            (stats.candidates - probes.len()) as u64,
        );
    }
    for probe in probes {
        let span = batch.span("core.privacy_test", proposals);
        batch.label(span, "store", probe.store);
        batch.label(span, "outcome", if probe.passed { "pass" } else { "fail" });
        batch.counter(span, "rank", probe.rank as u64);
        batch.counter(span, "plausible_seeds", probe.plausible_seeds as u64);
        batch.counter(span, "records_examined", probe.records_examined as u64);
    }
    sgf_metrics::trace().commit(batch)
}

/// A passing candidate tagged with its global proposal rank.
///
/// Worker `w`'s `i`-th proposal has rank `w + workers * i` — globally unique
/// (distinct residues mod `workers`) and strictly increasing within each
/// worker.  Ordering is by rank alone so the shared selection heap can evict
/// its largest-rank member first.
struct RankedRecord {
    rank: usize,
    record: Record,
}

impl PartialEq for RankedRecord {
    fn eq(&self, other: &Self) -> bool {
        self.rank == other.rank
    }
}

impl Eq for RankedRecord {}

impl PartialOrd for RankedRecord {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RankedRecord {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.rank.cmp(&other.rank)
    }
}

/// Per-worker contention tallies for the shared release selection, merged
/// across workers and flushed into the [`sgf_metrics`] global registry per
/// request (`core.mechanism.*`).
#[derive(Debug, Default, Clone, Copy)]
struct WorkerProfile {
    /// Times this worker acquired the shared selection lock (once per
    /// *passing* candidate — failing candidates never touch shared state).
    selection_locks: u64,
    /// Passing candidates that lost to a full selection of smaller ranks
    /// (wasted proposals the rank threshold did not stop in time).
    outranked_passes: u64,
}

impl WorkerProfile {
    fn merge(&mut self, other: &WorkerProfile) {
        self.selection_locks += other.selection_locks;
        self.outranked_passes += other.outranked_passes;
    }
}

/// The model-generic parallel release engine shared by the session API and the
/// legacy pipeline: build (and validate) every [`Mechanism`] exactly once,
/// then fan proposals out over the workers.
///
/// # Determinism and contention
///
/// Earlier revisions coordinated workers through two shared atomics bumped on
/// **every proposal** (a `fetch_add` candidate ticket plus a released-slot
/// reservation counter) — a cache-line ping-pong between all workers, and the
/// winner of the slot race varied run to run, so multi-worker releases were
/// nondeterministic.  The loop now statically shards the proposal space:
/// worker `w` owns ranks `w, w + workers, w + 2·workers, …  < max_candidates`
/// (exactly the tickets it could win before, assigned up front), drives its
/// private RNG stream, and touches shared state only when a candidate
/// **passes** the privacy test.  Passing candidates enter a bounded max-heap
/// of capacity `target` under a mutex — the release selection is the `target`
/// *smallest-rank* passing candidates — and a lock-free threshold mirror of
/// the heap's max rank lets workers stop early: once the heap is full, the
/// threshold only decreases, so a worker whose next rank exceeds it can never
/// displace a selected record (ranks are unique, and every later rank of that
/// worker is larger still).  Skipped proposals therefore cannot change the
/// selection, which makes the released records — sorted by rank on return —
/// **identical across runs and byte-identical at `workers = 1`** to the
/// sequential [`ReleaseIter`] order.  Per-proposal shared traffic is one
/// relaxed load of a cache-padded threshold.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_mechanism<M: GenerativeModel + ?Sized>(
    models: &[&M],
    seeds: &Dataset,
    store: Option<&dyn SeedStore>,
    test: PrivacyTestConfig,
    target: usize,
    max_candidates: usize,
    workers: usize,
    request_seed: u64,
    scope: Option<&Scope>,
    probes_out: Option<&mut Vec<CandidateProbe>>,
) -> Result<(Vec<Record>, MechanismStats)> {
    if models.is_empty() {
        return Err(CoreError::InvalidParameter(
            "at least one generative model is required".into(),
        ));
    }
    // Construct the mechanisms once per request (validation included); the
    // workers below only borrow them.
    let mechanisms: Vec<Mechanism<'_, M>> = models
        .iter()
        .map(|m| match store {
            Some(store) => Mechanism::with_store(*m, seeds, store, test),
            None => Mechanism::new(*m, seeds, test),
        })
        .collect::<Result<_>>()?;

    let workers = workers.min(max_candidates.max(1));
    let selection = Mutex::new(BinaryHeap::with_capacity(target.min(max_candidates)));
    // usize::MAX = "heap not full yet, every rank is still in the running".
    let threshold = CachePadded::new(AtomicUsize::new(usize::MAX));
    let collect_probes = probes_out.is_some();

    type WorkerResult = Result<(MechanismStats, WorkerProfile, Vec<CandidateProbe>)>;
    let worker_results: Vec<WorkerResult> = if workers <= 1 {
        vec![worker_loop(
            request_worker_seed(request_seed, 0),
            0,
            1,
            &mechanisms,
            target,
            max_candidates,
            &selection,
            &threshold,
            collect_probes,
        )]
    } else {
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for worker in 0..workers {
                let mechanisms = &mechanisms;
                let selection = &selection;
                let threshold = &threshold;
                handles.push(scope.spawn(move || {
                    worker_loop(
                        request_worker_seed(request_seed, worker),
                        worker,
                        workers,
                        mechanisms,
                        target,
                        max_candidates,
                        selection,
                        threshold,
                        collect_probes,
                    )
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        })
    };

    let mut stats = MechanismStats::default();
    let mut profile = WorkerProfile::default();
    let mut probes: Vec<CandidateProbe> = Vec::new();
    for result in worker_results {
        let (s, p, mut worker_probes) = result?;
        stats.merge(&s);
        profile.merge(&p);
        probes.append(&mut worker_probes);
    }
    if let Some(out) = probes_out {
        // Each worker kept its smallest-ranked probes; the merged smallest
        // `MAX_TRACE_PROBES` ranks are therefore a true global prefix.
        probes.sort_by_key(|probe| probe.rank);
        probes.truncate(MAX_TRACE_PROBES);
        *out = probes;
    }
    let heap = selection
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    // Ascending rank order: deterministic, and at workers = 1 exactly the
    // proposal order of the sequential path.
    let records: Vec<Record> = heap
        .into_sorted_vec()
        .into_iter()
        .map(|ranked| ranked.record)
        .collect();
    debug_assert!(records.len() <= target, "selection grew past the target");
    // The heap caps releases at the target; workers cannot know which of
    // their passes survive the selection, so the released total is settled
    // here instead of per worker.
    stats.released = records.len();

    // Flush exactly once: the scoped handles below write both the global
    // rollup and the scope cell, so a scoped request must not also run the
    // unscoped block (it would double-count the rollup).
    match scope {
        Some(scope) => {
            let view = sgf_metrics::scoped(scope);
            view.counter("core.mechanism.requests").incr();
            view.counter("core.mechanism.candidates")
                .add(stats.candidates as u64);
            view.counter("core.mechanism.released")
                .add(stats.released as u64);
            view.counter("core.mechanism.records_examined")
                .add(stats.records_examined as u64);
            view.counter("core.mechanism.index_tests")
                .add(stats.index_tests as u64);
            view.counter("core.mechanism.scan_tests")
                .add(stats.scan_tests as u64);
            view.counter("core.mechanism.partition_tests")
                .add(stats.partition_tests as u64);
            view.counter("core.mechanism.class_cache_hits")
                .add(stats.class_cache_hits as u64);
            view.counter("core.mechanism.class_cache_misses")
                .add(stats.class_cache_misses as u64);
            view.counter("core.mechanism.selection_locks")
                .add(profile.selection_locks);
            view.counter("core.mechanism.outranked_passes")
                .add(profile.outranked_passes);
            view.summary("core.mechanism.workers")
                .observe(workers as u64);
        }
        None => {
            sgf_metrics::counter("core.mechanism.requests").incr();
            sgf_metrics::counter("core.mechanism.candidates").add(stats.candidates as u64);
            sgf_metrics::counter("core.mechanism.released").add(stats.released as u64);
            sgf_metrics::counter("core.mechanism.records_examined")
                .add(stats.records_examined as u64);
            sgf_metrics::counter("core.mechanism.index_tests").add(stats.index_tests as u64);
            sgf_metrics::counter("core.mechanism.scan_tests").add(stats.scan_tests as u64);
            sgf_metrics::counter("core.mechanism.partition_tests")
                .add(stats.partition_tests as u64);
            sgf_metrics::counter("core.mechanism.class_cache_hits")
                .add(stats.class_cache_hits as u64);
            sgf_metrics::counter("core.mechanism.class_cache_misses")
                .add(stats.class_cache_misses as u64);
            sgf_metrics::counter("core.mechanism.selection_locks").add(profile.selection_locks);
            sgf_metrics::counter("core.mechanism.outranked_passes").add(profile.outranked_passes);
            sgf_metrics::summary("core.mechanism.workers").observe(workers as u64);
        }
    }

    Ok((records, stats))
}

#[allow(clippy::too_many_arguments)]
fn worker_loop<M: GenerativeModel + ?Sized>(
    worker_seed: u64,
    worker: usize,
    workers: usize,
    mechanisms: &[Mechanism<'_, M>],
    target: usize,
    max_candidates: usize,
    selection: &Mutex<BinaryHeap<RankedRecord>>,
    threshold: &AtomicUsize,
    collect_probes: bool,
) -> Result<(MechanismStats, WorkerProfile, Vec<CandidateProbe>)> {
    let mut rng = StdRng::seed_from_u64(worker_seed);
    let mut stats = MechanismStats::default();
    let mut profile = WorkerProfile::default();
    let mut probes: Vec<CandidateProbe> = Vec::new();
    let mut rank = worker;
    while rank < max_candidates {
        // Once the selection is full its max rank only decreases, and this
        // worker's ranks only increase — past the threshold it can never
        // contribute again, so stopping here cannot change the selection.
        if threshold.load(Ordering::Relaxed) <= rank {
            break;
        }
        let which = if mechanisms.len() == 1 {
            0
        } else {
            rng.gen_range(0..mechanisms.len())
        };
        let report = mechanisms[which].propose(&mut rng)?;
        stats.observe(&report.outcome);
        if collect_probes && probes.len() < MAX_TRACE_PROBES {
            probes.push(CandidateProbe {
                rank,
                store: if report.outcome.via_classes {
                    "partition"
                } else if report.outcome.via_index {
                    "inverted"
                } else {
                    "scan"
                },
                passed: report.outcome.passed,
                plausible_seeds: report.outcome.plausible_seeds,
                records_examined: report.outcome.records_examined,
            });
        }
        if report.released() {
            let mut heap = selection
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            profile.selection_locks += 1;
            if heap.len() < target {
                heap.push(RankedRecord {
                    rank,
                    record: report.record,
                });
                if heap.len() == target {
                    if let Some(top) = heap.peek() {
                        threshold.store(top.rank, Ordering::Relaxed);
                    }
                }
            } else if heap.peek().is_some_and(|top| rank < top.rank) {
                heap.pop();
                heap.push(RankedRecord {
                    rank,
                    record: report.record,
                });
                if let Some(top) = heap.peek() {
                    threshold.store(top.rank, Ordering::Relaxed);
                }
            } else {
                profile.outranked_passes += 1;
            }
        }
        rank += workers;
    }
    Ok((stats, profile, probes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgf_data::acs::{acs_bucketizer, acs_schema, generate_acs};

    fn small_engine(seed: u64) -> SynthesisEngine {
        SynthesisEngine::builder()
            .privacy_test(
                PrivacyTestConfig::randomized(20, 4.0, 1.0).with_limits(Some(40), Some(2000)),
            )
            .omega(OmegaSpec::Fixed(9))
            .max_candidate_factor(30)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_rejects_invalid_defaults() {
        assert!(SynthesisEngine::builder().workers(0).build().is_err());
        assert!(SynthesisEngine::builder()
            .max_candidate_factor(0)
            .build()
            .is_err());
        assert!(SynthesisEngine::builder()
            .privacy_test(PrivacyTestConfig::deterministic(5, 0.5))
            .build()
            .is_err());
    }

    #[test]
    fn session_serves_repeated_requests_and_accumulates_the_ledger() {
        let data = generate_acs(4000, 11);
        let bkt = acs_bucketizer(&acs_schema());
        let session = small_engine(11).train(&data, &bkt).unwrap();
        assert_eq!(session.ledger().releases, 0);

        let mut total = 0usize;
        let mut last_epsilon = 0.0;
        for request_seed in 0..3u64 {
            let report = session
                .generate(&GenerateRequest::new(15).with_seed(request_seed))
                .unwrap();
            assert!(!report.synthetics.is_empty());
            total += report.stats.released;
            assert_eq!(report.ledger.releases, total);
            assert_eq!(report.ledger.requests, request_seed as usize + 1);
            let epsilon = report.ledger.cumulative_release().epsilon;
            assert!(epsilon > last_epsilon, "ledger must grow monotonically");
            last_epsilon = epsilon;
        }
        assert_eq!(session.ledger().releases, total);
    }

    #[test]
    fn identical_requests_release_identical_records() {
        let data = generate_acs(3500, 12);
        let bkt = acs_bucketizer(&acs_schema());
        let session = small_engine(12).train(&data, &bkt).unwrap();
        let request = GenerateRequest::new(12).with_seed(99);
        let a = session.generate(&request).unwrap();
        let b = session.generate(&request).unwrap();
        assert_eq!(a.synthetics.records(), b.synthetics.records());
        // The ledger still charges both requests.
        assert_eq!(b.ledger.releases, a.stats.released + b.stats.released);
    }

    #[test]
    fn release_iter_streams_and_charges_the_ledger() {
        let data = generate_acs(3500, 13);
        let bkt = acs_bucketizer(&acs_schema());
        let session = small_engine(13).train(&data, &bkt).unwrap();
        let mut iter = session
            .release_iter(GenerateRequest::new(8).with_seed(5))
            .unwrap();
        let first = iter.next().unwrap().unwrap();
        data.schema().validate_values(first.values()).unwrap();
        assert_eq!(session.ledger().releases, 1);
        let rest: Vec<_> = iter.by_ref().map(|r| r.unwrap()).collect();
        assert!(rest.len() <= 7);
        assert_eq!(session.ledger().releases, 1 + rest.len());
        assert_eq!(iter.stats().released, 1 + rest.len());
        assert!(iter.stats().candidates >= iter.stats().released);
        // A single-worker generate with the same seed releases the same records.
        let report = session
            .generate(&GenerateRequest::new(8).with_seed(5).with_workers(1))
            .unwrap();
        let mut streamed = vec![first];
        streamed.extend(rest);
        assert_eq!(report.synthetics.records(), &streamed[..]);
    }

    #[test]
    fn trait_object_models_pass_through_the_mechanism() {
        let data = generate_acs(3000, 14);
        let bkt = acs_bucketizer(&acs_schema());
        let session = small_engine(14).train(&data, &bkt).unwrap();
        let marginal: &dyn GenerativeModel = &session.models().marginal;
        let report = session
            .generate_with(marginal, &GenerateRequest::new(10).with_seed(3))
            .unwrap();
        // Seed-independent model: every candidate passes (Section 8).
        assert_eq!(report.stats.released, 10);
        assert!((report.stats.pass_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scan_and_index_release_identical_records() {
        // The acceptance bar of the indexed seed stores: for a fixed request
        // seed, SeedIndex::Scan, SeedIndex::Inverted, and
        // SeedIndex::Partition must release exactly the same records with the
        // same counters (only records_examined may differ).
        let data = generate_acs(4000, 21);
        let bkt = acs_bucketizer(&acs_schema());
        let session = small_engine(21).train(&data, &bkt).unwrap();
        assert!(session.seed_store().is_some(), "Auto builds the index");
        assert!(
            session.partition_store().is_some(),
            "Auto builds the partition store"
        );
        for request_seed in 0..3u64 {
            let base = GenerateRequest::new(20).with_seed(request_seed);
            let scan = session
                .generate(&base.with_seed_index(SeedIndex::Scan))
                .unwrap();
            let index = session
                .generate(&base.with_seed_index(SeedIndex::Inverted))
                .unwrap();
            let partition = session
                .generate(&base.with_seed_index(SeedIndex::Partition))
                .unwrap();
            assert_eq!(scan.synthetics.records(), index.synthetics.records());
            assert_eq!(scan.synthetics.records(), partition.synthetics.records());
            assert_eq!(scan.stats.candidates, index.stats.candidates);
            assert_eq!(scan.stats.candidates, partition.stats.candidates);
            assert_eq!(scan.stats.released, index.stats.released);
            assert_eq!(scan.stats.released, partition.stats.released);
            assert_eq!(scan.stats.index_tests, 0);
            assert_eq!(scan.stats.partition_tests, 0);
            assert_eq!(index.stats.scan_tests, 0);
            assert_eq!(index.stats.index_tests, index.stats.candidates);
            assert_eq!(partition.stats.scan_tests, 0);
            assert_eq!(partition.stats.index_tests, 0);
            assert_eq!(partition.stats.partition_tests, partition.stats.candidates);
            assert!(
                index.stats.records_examined < scan.stats.records_examined,
                "index {} vs scan {}",
                index.stats.records_examined,
                scan.stats.records_examined
            );
            assert!(
                partition.stats.records_examined < index.stats.records_examined,
                "partition {} vs index {}",
                partition.stats.records_examined,
                index.stats.records_examined
            );
        }
    }

    #[test]
    fn class_cache_never_perturbs_releases() {
        // The instrumentation-equivalence bar for the class-match cache: a
        // cache-on session and a cache-off session trained identically must
        // release byte-identical records with identical candidate, count,
        // and examined totals — only the hit/miss tallies may differ.
        let data = generate_acs(4000, 44);
        let bkt = acs_bucketizer(&acs_schema());
        let cached = small_engine(44).train(&data, &bkt).unwrap();
        let uncached = SynthesisEngine::builder()
            .privacy_test(
                PrivacyTestConfig::randomized(20, 4.0, 1.0).with_limits(Some(40), Some(2000)),
            )
            .omega(OmegaSpec::Fixed(9))
            .max_candidate_factor(30)
            .class_cache(false)
            .seed(44)
            .train(&data, &bkt)
            .unwrap();
        assert!(cached.partition_store().unwrap().class_cache().is_some());
        assert!(uncached.partition_store().unwrap().class_cache().is_none());
        for request_seed in 0..3u64 {
            let request = GenerateRequest::new(15)
                .with_seed(request_seed)
                .with_seed_index(SeedIndex::Partition);
            let a = cached.generate(&request).unwrap();
            let b = uncached.generate(&request).unwrap();
            assert_eq!(a.synthetics.records(), b.synthetics.records());
            assert_eq!(a.stats.candidates, b.stats.candidates);
            assert_eq!(a.stats.released, b.stats.released);
            assert_eq!(a.stats.records_examined, b.stats.records_examined);
            // The seed synthesizer's likelihood set equals its exact-match
            // set, so every class-granularity test goes through the cache.
            assert_eq!(
                a.stats.class_cache_hits + a.stats.class_cache_misses,
                a.stats.partition_tests
            );
            assert_eq!(b.stats.class_cache_hits, 0);
            assert_eq!(b.stats.class_cache_misses, 0);
        }
        // Re-running a seed the session already served finds every candidate
        // projection warm: all hits, zero misses.
        let request = GenerateRequest::new(15)
            .with_seed(0)
            .with_seed_index(SeedIndex::Partition);
        let again = cached.generate(&request).unwrap();
        assert_eq!(again.stats.class_cache_misses, 0);
        assert_eq!(again.stats.class_cache_hits, again.stats.partition_tests);
        assert!(again.stats.class_cache_hits > 0);
        let rows = cached
            .partition_store()
            .unwrap()
            .class_cache()
            .unwrap()
            .rows();
        assert!(rows > 0, "served requests must have populated rows");
    }

    #[test]
    fn partition_store_counts_classes_not_records() {
        let data = generate_acs(4000, 31);
        let bkt = acs_bucketizer(&acs_schema());
        let session = small_engine(31).train(&data, &bkt).unwrap();
        let store = session.partition_store().unwrap();
        assert!(store.class_count() <= session.seeds().len());
        // The session ω is Fixed(9): the store is keyed on the kept
        // attributes of the ω = 9 synthesizer.
        assert_eq!(store.attributes().len(), session.seeds().schema().len() - 9);
        // Fixed ω means every key attribute is exact-matched: the test is a
        // single class lookup, so each candidate examines at most one
        // representative.
        let report = session
            .generate(
                &GenerateRequest::new(10)
                    .with_seed(7)
                    .with_seed_index(SeedIndex::Partition),
            )
            .unwrap();
        assert_eq!(report.stats.partition_tests, report.stats.candidates);
        assert!(
            report.stats.records_examined <= report.stats.candidates,
            "fixed-omega partition tests are single-class lookups: {} examined for {} candidates",
            report.stats.records_examined,
            report.stats.candidates
        );
    }

    #[test]
    fn scan_only_sessions_reject_inverted_requests() {
        let data = generate_acs(3000, 22);
        let bkt = acs_bucketizer(&acs_schema());
        let session = SynthesisEngine::builder()
            .privacy_test(
                PrivacyTestConfig::randomized(20, 4.0, 1.0).with_limits(Some(40), Some(2000)),
            )
            .max_candidate_factor(30)
            .seed_index(SeedIndex::Scan)
            .seed(22)
            .train(&data, &bkt)
            .unwrap();
        assert!(session.seed_store().is_none());
        assert!(session.partition_store().is_none());
        assert_eq!(session.index_build_time(), Duration::ZERO);
        assert!(session
            .generate(&GenerateRequest::new(5).with_seed_index(SeedIndex::Inverted))
            .is_err());
        assert!(session
            .generate(&GenerateRequest::new(5).with_seed_index(SeedIndex::Partition))
            .is_err());
        // Scan and Auto both degrade gracefully to the linear scan.
        let report = session
            .generate(&GenerateRequest::new(5).with_seed_index(SeedIndex::Auto))
            .unwrap();
        assert_eq!(report.stats.index_tests, 0);
    }

    #[test]
    fn auto_policy_uses_the_index_only_for_large_seed_stores() {
        let bkt = acs_bucketizer(&acs_schema());
        // Small population: the seed split (49%) stays below AUTO_MIN_SEEDS.
        let small = generate_acs(900, 23);
        let session = small_engine(23).train(&small, &bkt).unwrap();
        assert!(session.seeds().len() < SeedIndex::AUTO_MIN_SEEDS);
        let report = session.generate(&GenerateRequest::new(5)).unwrap();
        assert_eq!(report.stats.index_tests, 0, "small store must scan");
        // Large population: Auto switches to an index — the partition store,
        // because its class keying covers the seed synthesizer's likelihood
        // guarantee.
        let large = generate_acs(6000, 23);
        let session = small_engine(23).train(&large, &bkt).unwrap();
        assert!(session.seeds().len() >= SeedIndex::AUTO_MIN_SEEDS);
        let report = session.generate(&GenerateRequest::new(5)).unwrap();
        assert_eq!(report.stats.scan_tests, 0, "large store must use an index");
        assert_eq!(
            report.stats.partition_tests, report.stats.candidates,
            "Auto prefers the covering partition store"
        );
    }

    #[test]
    fn auto_index_min_seeds_is_configurable() {
        let bkt = acs_bucketizer(&acs_schema());
        // ~1960 seeds: above the default 512 crossover, below a raised one.
        let data = generate_acs(4000, 24);
        let raised = SynthesisEngine::builder()
            .privacy_test(
                PrivacyTestConfig::randomized(20, 4.0, 1.0).with_limits(Some(40), Some(2000)),
            )
            .omega(OmegaSpec::Fixed(9))
            .max_candidate_factor(30)
            .auto_index_min_seeds(10_000)
            .seed(24)
            .train(&data, &bkt)
            .unwrap();
        let report = raised.generate(&GenerateRequest::new(5)).unwrap();
        assert_eq!(
            report.stats.scan_tests, report.stats.candidates,
            "a raised crossover keeps Auto on the scan"
        );
        // A zero crossover admits even stores below the default threshold.
        let small = generate_acs(900, 24);
        let eager = SynthesisEngine::builder()
            .privacy_test(
                PrivacyTestConfig::randomized(20, 4.0, 1.0).with_limits(Some(40), Some(2000)),
            )
            .omega(OmegaSpec::Fixed(9))
            .max_candidate_factor(30)
            .auto_index_min_seeds(0)
            .seed(24)
            .train(&small, &bkt)
            .unwrap();
        assert!(eager.seeds().len() < SeedIndex::AUTO_MIN_SEEDS);
        let report = eager.generate(&GenerateRequest::new(5)).unwrap();
        assert_eq!(report.stats.scan_tests, 0, "zero crossover always indexes");
    }

    #[test]
    fn multi_worker_releases_are_deterministic_and_exact() {
        // The rank-ordered selection makes parallel releases reproducible:
        // two runs with the same seed and worker count must release the same
        // records in the same order, with exact accounting.
        let data = generate_acs(4000, 41);
        let bkt = acs_bucketizer(&acs_schema());
        let session = small_engine(41).train(&data, &bkt).unwrap();
        for workers in [2usize, 4, 8] {
            let request = GenerateRequest::new(15).with_seed(7).with_workers(workers);
            let a = session.generate(&request).unwrap();
            let b = session.generate(&request).unwrap();
            assert_eq!(
                a.synthetics.records(),
                b.synthetics.records(),
                "workers = {workers} must be run-to-run deterministic"
            );
            assert_eq!(a.stats.released, a.synthetics.records().len());
            assert!(a.stats.released <= 15);
            assert!(a.stats.candidates >= a.stats.released);
        }
    }

    #[test]
    fn single_worker_and_parallel_runs_agree_at_workers_one() {
        // The rank selection at workers = 1 is plain proposal order: it must
        // match the sequential streaming path byte for byte.
        let data = generate_acs(3500, 42);
        let bkt = acs_bucketizer(&acs_schema());
        let session = small_engine(42).train(&data, &bkt).unwrap();
        let generated = session
            .generate(&GenerateRequest::new(10).with_seed(9).with_workers(1))
            .unwrap();
        let streamed: Vec<Record> = session
            .release_iter(GenerateRequest::new(10).with_seed(9))
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(generated.synthetics.records(), &streamed[..]);
    }

    #[test]
    fn metrics_do_not_perturb_releases_and_counters_flow() {
        // Instrumentation never touches the request RNG streams: released
        // records are byte-identical with metrics enabled and disabled,
        // unscoped and scoped, traced and untraced.  The halves share one
        // test because `set_enabled` is process-global.
        let data = generate_acs(3500, 43);
        let bkt = acs_bucketizer(&acs_schema());
        let session = small_engine(43).train(&data, &bkt).unwrap();
        let request = GenerateRequest::new(12).with_seed(5).with_workers(4);

        let before = sgf_metrics::global().snapshot();
        let on = session.generate(&request).unwrap();
        let delta = sgf_metrics::global().snapshot().delta(&before);
        // `>=`, not `==`: other tests in this binary generate concurrently.
        assert!(delta.counter("core.mechanism.requests") >= 1);
        assert!(delta.counter("core.mechanism.candidates") >= on.stats.candidates as u64);
        assert!(delta.counter("core.mechanism.released") >= on.stats.released as u64);
        assert!(
            delta.counter("core.mechanism.selection_locks")
                >= delta.counter("core.mechanism.released")
        );
        // Untraced requests still carry provenance, with no trace spans.
        assert_eq!(on.provenance.trace_spans, 0);
        assert_eq!(on.provenance.seeds, session.seeds().len());
        assert_eq!(on.provenance.workers, 4);
        assert_eq!(on.provenance.k, 20);

        // A scope-labeled handle with the trace ring live must release the
        // exact same records: scoped cells and span commits happen strictly
        // outside the proposal loop's RNG streams.
        let scoped_session = session
            .clone()
            .with_scope(Scope::new().label("session", "equivalence"));
        sgf_metrics::trace().set_enabled(true);
        let traced = scoped_session.generate(&request).unwrap();
        sgf_metrics::trace().set_enabled(false);
        assert_eq!(on.synthetics.records(), traced.synthetics.records());
        // Released records and counts are the deterministic contract; raw
        // candidate counts at workers > 1 depend on how quickly workers see
        // the rank threshold, so they are not compared across runs.
        assert_eq!(on.stats.released, traced.stats.released);
        // Root + proposals + one span per captured probe.
        assert_eq!(
            traced.provenance.trace_spans,
            2 + traced.stats.candidates.min(MAX_TRACE_PROBES)
        );
        let events = sgf_metrics::trace().events_with_label("session", "equivalence");
        assert!(events.iter().any(|e| e.name == "core.generate"));
        assert!(events.iter().any(|e| e.name == "core.privacy_test"));
        // The scope cell saw exactly this request's counters.
        let cell = &sgf_metrics::global().snapshot().scopes["session=equivalence"];
        assert_eq!(
            cell.counter("core.mechanism.candidates"),
            traced.stats.candidates as u64
        );
        // And the provenance JSON is well-formed canonical JSON.
        let json = traced.provenance_json().render();
        let parsed = sgf_metrics::json::parse(&json).expect("provenance JSON parses");
        assert_eq!(
            parsed.get("store").and_then(|s| s.as_str()),
            Some(traced.provenance.store)
        );

        sgf_metrics::set_enabled(false);
        let off = session.generate(&request).unwrap();
        sgf_metrics::set_enabled(true);
        assert_eq!(on.synthetics.records(), off.synthetics.records());
        assert_eq!(on.stats.released, off.stats.released);
    }

    #[test]
    fn invalid_requests_are_rejected_without_charging() {
        let data = generate_acs(3000, 15);
        let bkt = acs_bucketizer(&acs_schema());
        let session = small_engine(15).train(&data, &bkt).unwrap();
        assert!(session.generate(&GenerateRequest::new(0)).is_err());
        assert!(session
            .generate(&GenerateRequest::new(5).with_workers(0))
            .is_err());
        assert!(session
            .generate(&GenerateRequest::new(5).with_omega(OmegaSpec::Fixed(99)))
            .is_err());
        assert!(session
            .generate(&GenerateRequest::new(5).with_max_candidate_factor(0))
            .is_err());
        assert_eq!(session.ledger().requests, 0);
        assert_eq!(session.ledger().releases, 0);
    }

    /// A delta deleting `n_del` records spread through `data` and inserting
    /// the first `n_ins` records of a differently-seeded ACS draw.
    fn small_delta(data: &Dataset, n_del: usize, n_ins: usize, seed: u64) -> DatasetDelta {
        let mut delta = DatasetDelta::new(data.schema_arc());
        let stride = (data.len() / n_del.max(1)).max(1);
        for i in 0..n_del {
            delta.delete(data.records()[i * stride].clone()).unwrap();
        }
        for record in generate_acs(n_ins, seed).records() {
            delta.insert(record.clone()).unwrap();
        }
        delta
    }

    #[test]
    fn update_matches_a_fresh_train_bit_for_bit() {
        // The tentpole invariant: at the default drift threshold, an
        // incremental update is indistinguishable from retraining on the
        // post-delta dataset — same split subsets, same models, same posting
        // lists and equivalence classes, and byte-identical releases.
        let data = generate_acs(4000, 31);
        let bkt = acs_bucketizer(&acs_schema());
        let session = small_engine(31).train(&data, &bkt).unwrap();
        let delta = small_delta(&data, 25, 40, 77);
        let updated = session.update(&delta).unwrap();
        assert_eq!(updated.epoch(), 1);

        let final_data = delta.apply(&data).unwrap();
        let fresh = small_engine(31).train(&final_data, &bkt).unwrap();
        assert_eq!(fresh.epoch(), 0);

        // The hash split commutes with the delta: every subset matches.
        assert_eq!(
            updated.shared.split.structure.records(),
            fresh.shared.split.structure.records()
        );
        assert_eq!(
            updated.shared.split.parameters.records(),
            fresh.shared.split.parameters.records()
        );
        assert_eq!(
            updated.shared.split.seeds.records(),
            fresh.shared.split.seeds.records()
        );
        assert_eq!(
            updated.shared.split.test.records(),
            fresh.shared.split.test.records()
        );
        // Models and their sufficient statistics are bit-identical.
        assert_eq!(
            updated.models().structure.graph,
            fresh.models().structure.graph
        );
        assert_eq!(
            updated.models().structure.correlations,
            fresh.models().structure.correlations
        );
        assert_eq!(*updated.models().cpts, *fresh.models().cpts);
        assert_eq!(updated.models().marginal, fresh.models().marginal);
        assert_eq!(
            updated.models().structure_counts,
            fresh.models().structure_counts
        );
        assert_eq!(
            updated.models().marginal_counts,
            fresh.models().marginal_counts
        );
        // Spliced index stores equal from-scratch builds.
        assert_eq!(updated.seed_store(), fresh.seed_store());
        assert_eq!(updated.partition_store(), fresh.partition_store());
        // And identically-seeded requests release byte-identical records.
        let request = GenerateRequest::new(10).with_seed(7);
        let a = updated.generate(&request).unwrap();
        let b = fresh.generate(&request).unwrap();
        assert_eq!(a.synthetics.records(), b.synthetics.records());
        assert_eq!(a.provenance.epoch, 1);
        assert_eq!(b.provenance.epoch, 0);
    }

    #[test]
    fn update_epochs_share_the_ledger_and_stamp_provenance() {
        let data = generate_acs(3500, 33);
        let bkt = acs_bucketizer(&acs_schema());
        let session = small_engine(33).train(&data, &bkt).unwrap();
        let first = session
            .generate(&GenerateRequest::new(6).with_seed(1))
            .unwrap();
        let updated = session.update(&small_delta(&data, 5, 5, 99)).unwrap();
        assert_eq!(updated.epoch(), 1);
        // The old epoch keeps its handle; the ledger is shared across epochs,
        // so releases from the new epoch compose onto the same budget.
        let second = updated
            .generate(&GenerateRequest::new(6).with_seed(2))
            .unwrap();
        assert_eq!(second.ledger.requests, 2);
        assert_eq!(
            session.ledger().releases,
            first.stats.released + second.stats.released
        );
        assert_eq!(second.provenance.epoch, 1);
        let json = second.provenance_json().render();
        let parsed = sgf_metrics::json::parse(&json).expect("provenance JSON parses");
        assert_eq!(parsed.get("epoch").and_then(|e| e.as_u64()), Some(1));
        // Updates chain: a further (even empty) delta bumps the epoch again.
        let empty = DatasetDelta::new(data.schema_arc());
        let third = updated.update(&empty).unwrap();
        assert_eq!(third.epoch(), 2);
        assert_eq!(
            third.shared.split.seeds.records(),
            updated.shared.split.seeds.records()
        );
    }

    #[test]
    fn positive_drift_threshold_keeps_the_old_structure() {
        // Above-threshold drift re-learns (exercised by the equivalence
        // tests, where threshold 0.0 re-learns on any change); here the
        // documented relaxation: a huge threshold keeps the old graph and
        // correlation matrix verbatim even though D_T changed.
        let data = generate_acs(3500, 37);
        let bkt = acs_bucketizer(&acs_schema());
        let session = SynthesisEngine::builder()
            .privacy_test(
                PrivacyTestConfig::randomized(20, 4.0, 1.0).with_limits(Some(40), Some(2000)),
            )
            .omega(OmegaSpec::Fixed(9))
            .max_candidate_factor(30)
            .seed(37)
            .drift_threshold(1e9)
            .build()
            .unwrap()
            .train(&data, &bkt)
            .unwrap();
        let updated = session.update(&small_delta(&data, 30, 30, 41)).unwrap();
        assert_eq!(
            updated.models().structure.correlations,
            session.models().structure.correlations
        );
        assert_eq!(
            updated.models().structure.graph,
            session.models().structure.graph
        );
        // The counts still merged — a later re-learn starts from the true
        // post-delta statistics, not the stale ones.
        assert_ne!(
            updated.models().structure_counts,
            session.models().structure_counts
        );
    }

    #[test]
    fn update_rejects_deltas_that_would_break_the_session() {
        let data = generate_acs(3000, 39);
        let bkt = acs_bucketizer(&acs_schema());
        let session = small_engine(39).train(&data, &bkt).unwrap();
        // Deleting more occurrences of a record than the dataset holds fails
        // cleanly (the canonical first-occurrence matching finds no target).
        let mut missing = DatasetDelta::new(data.schema_arc());
        let ghost = data.records()[0].clone();
        let occurrences = data.records().iter().filter(|r| **r == ghost).count();
        for _ in 0..=occurrences {
            missing.delete(ghost.clone()).unwrap();
        }
        assert!(session.update(&missing).is_err());
        // A delta draining the seed subset below k fails with DatasetTooSmall.
        let mut drain = DatasetDelta::new(data.schema_arc());
        for record in session.seeds().records() {
            drain.delete(record.clone()).unwrap();
        }
        match session.update(&drain) {
            Err(CoreError::DatasetTooSmall { required, .. }) => assert_eq!(required, 20),
            other => panic!("expected DatasetTooSmall, got {other:?}"),
        }
        // Failed updates leave the session untouched.
        assert_eq!(session.epoch(), 0);
        assert!(session
            .generate(&GenerateRequest::new(4).with_seed(9))
            .is_ok());
    }
}
