//! Differential-privacy accounting for the release mechanism (Theorem 1) and
//! for the composition of model learning with the releases.
//!
//! Theorem 1: Mechanism 1 with the randomized Privacy Test 2 and parameters
//! `k ≥ 1`, `γ > 1`, `ε0 > 0` is (ε, δ)-differentially private *per released
//! record* with, for any integer `1 ≤ t < k`,
//!
//! ```text
//! ε = ε0 + ln(1 + γ/t)        δ = e^{-ε0 (k - t)}
//! ```
//!
//! `t` trades ε against δ; [`ReleaseBudget::optimize`] scans all admissible `t`
//! and keeps the tightest ε for a caller-specified δ ceiling.

use crate::error::{CoreError, Result};
use serde::{Deserialize, Serialize};
use sgf_stats::DpBudget;

/// Sequential composition of `releases` identical per-release budgets, in
/// O(1): n releases of an (ε, δ) mechanism cost (nε, nδ).  `None` means the
/// deterministic test was used, which carries no per-release guarantee — the
/// composed cost is vacuous (infinite ε) as soon as anything was released.
///
/// Every accounting surface (the one-shot [`PipelineBudget`], the cumulative
/// [`BudgetLedger`], and the per-request report) goes through this single
/// helper so they can never disagree.
pub(crate) fn compose_releases(per_release: Option<DpBudget>, releases: usize) -> DpBudget {
    match (per_release, releases) {
        (_, 0) => DpBudget::pure(0.0),
        (Some(b), n) => DpBudget::new(n as f64 * b.epsilon, n as f64 * b.delta),
        (None, _) => DpBudget::pure(f64::INFINITY),
    }
}

/// The privacy guarantee of a single released record under Theorem 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReleaseBudget {
    /// The plausible-deniability parameter k used by the test.
    pub k: usize,
    /// The indistinguishability parameter γ.
    pub gamma: f64,
    /// The threshold-randomization parameter ε0.
    pub epsilon0: f64,
    /// The trade-off parameter t (1 ≤ t < k) the bound was evaluated at.
    pub t: usize,
    /// The resulting (ε, δ) guarantee for one released record.
    pub budget: DpBudget,
}

impl ReleaseBudget {
    /// Evaluate Theorem 1 at a specific `t`.
    pub fn at(k: usize, gamma: f64, epsilon0: f64, t: usize) -> Result<Self> {
        if k < 1 {
            return Err(CoreError::InvalidParameter("k must be at least 1".into()));
        }
        if !(gamma.is_finite() && gamma > 1.0) {
            return Err(CoreError::InvalidParameter(format!(
                "gamma must be finite and > 1, got {gamma}"
            )));
        }
        if !(epsilon0.is_finite() && epsilon0 > 0.0) {
            return Err(CoreError::InvalidParameter(format!(
                "epsilon0 must be finite and positive, got {epsilon0}"
            )));
        }
        if t < 1 || t >= k {
            return Err(CoreError::InvalidParameter(format!(
                "t must satisfy 1 <= t < k (t = {t}, k = {k})"
            )));
        }
        let epsilon = epsilon0 + (1.0 + gamma / t as f64).ln();
        let delta = (-epsilon0 * (k - t) as f64).exp();
        Ok(ReleaseBudget {
            k,
            gamma,
            epsilon0,
            t,
            budget: DpBudget::new(epsilon, delta),
        })
    }

    /// Scan every admissible `t` and return the smallest-ε bound whose δ does
    /// not exceed `max_delta`, or `None` if no such `t` exists.
    pub fn optimize(k: usize, gamma: f64, epsilon0: f64, max_delta: f64) -> Result<Option<Self>> {
        if k < 2 {
            return Err(CoreError::InvalidParameter(
                "optimizing over t requires k >= 2".into(),
            ));
        }
        let mut best: Option<ReleaseBudget> = None;
        for t in 1..k {
            let candidate = ReleaseBudget::at(k, gamma, epsilon0, t)?;
            if candidate.budget.delta > max_delta {
                continue;
            }
            if best
                .as_ref()
                .is_none_or(|b| candidate.budget.epsilon < b.budget.epsilon)
            {
                best = Some(candidate);
            }
        }
        Ok(best)
    }

    /// Smallest `k` that achieves `δ ≤ max_delta` at this `t` and ε0 — the
    /// paper's guidance "if we want δ ≤ 1/n^c ... set k ≥ t + (c/ε0) ln n".
    pub fn minimum_k(t: usize, epsilon0: f64, max_delta: f64) -> Result<usize> {
        if !(epsilon0.is_finite() && epsilon0 > 0.0) {
            return Err(CoreError::InvalidParameter(format!(
                "epsilon0 must be finite and positive, got {epsilon0}"
            )));
        }
        if !(max_delta > 0.0 && max_delta < 1.0) {
            return Err(CoreError::InvalidParameter(format!(
                "max_delta must lie in (0, 1), got {max_delta}"
            )));
        }
        // e^{-ε0 (k - t)} <= δ  <=>  k >= t + ln(1/δ)/ε0.
        Ok(t + ((1.0 / max_delta).ln() / epsilon0).ceil() as usize)
    }

    /// The guarantee for releasing `count` records from the same input dataset
    /// (sequential composition, as discussed in Section 8).
    pub fn for_releases(&self, count: usize) -> DpBudget {
        compose_releases(Some(self.budget), count)
    }
}

/// End-to-end privacy accounting for the full pipeline: the generative model's
/// budget (structure + parameter learning on disjoint subsets) plus the
/// release mechanism's budget for the records actually released.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineBudget {
    /// Budget spent learning the model structure on D_T.
    pub structure: DpBudget,
    /// Budget spent learning the model parameters on D_P.
    pub parameters: DpBudget,
    /// Per-release budget of the mechanism (Theorem 1), if the randomized test was used.
    pub per_release: Option<DpBudget>,
    /// Number of records released.
    pub releases: usize,
}

impl PipelineBudget {
    /// Budget of the generative model alone: structure and parameters are
    /// learned on *disjoint* subsets, so the combined cost is the maximum.
    pub fn model_budget(&self) -> DpBudget {
        self.structure.max(self.parameters)
    }

    /// Total budget when the seeds (D_S) are also disjoint from D_T and D_P:
    /// the releases compose sequentially among themselves, and the result
    /// combines with the model budget by the disjoint-datasets maximum.
    pub fn total(&self) -> DpBudget {
        self.model_budget()
            .max(compose_releases(self.per_release, self.releases))
    }
}

/// Cumulative differential-privacy accounting across *all* the `generate`
/// requests served by one [`crate::session::SynthesisSession`].
///
/// The model budgets (structure, parameters) are paid once at training time;
/// every released record afterwards spends one per-release budget (Theorem 1),
/// and releases from the same seed store compose sequentially no matter how
/// many requests they were spread over (Section 8).  The ledger tracks the
/// running totals so a long-lived service can report — and cap — its exposure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BudgetLedger {
    /// Budget spent learning the model structure on D_T (paid once).
    pub structure: DpBudget,
    /// Budget spent learning the model parameters on D_P (paid once).
    pub parameters: DpBudget,
    /// Per-release budget of the mechanism (Theorem 1), if the randomized test
    /// was selected; `None` for the deterministic test.
    pub per_release: Option<DpBudget>,
    /// Total records released across all requests so far.
    pub releases: usize,
    /// Number of `generate` requests (or streaming iterators) served so far.
    pub requests: usize,
}

impl BudgetLedger {
    /// A fresh ledger: training budgets paid, nothing released yet.
    pub fn new(structure: DpBudget, parameters: DpBudget, per_release: Option<DpBudget>) -> Self {
        BudgetLedger {
            structure,
            parameters,
            per_release,
            releases: 0,
            requests: 0,
        }
    }

    /// Charge one completed request that released `released` records.
    pub fn record_request(&mut self, released: usize) {
        self.requests += 1;
        self.releases += released;
    }

    /// Charge one record released by a streaming iterator (the iterator's
    /// request was already counted when it was opened).
    pub fn record_streamed_release(&mut self) {
        self.releases += 1;
    }

    /// Budget of the generative model alone (disjoint subsets ⇒ maximum).
    pub fn model_budget(&self) -> DpBudget {
        self.structure.max(self.parameters)
    }

    /// Sequential composition of every release charged so far; infinite ε if
    /// the deterministic test (no per-release guarantee) was used and anything
    /// was released.
    pub fn cumulative_release(&self) -> DpBudget {
        compose_releases(self.per_release, self.releases)
    }

    /// End-to-end (ε, δ) of everything the session has done: released records
    /// compose sequentially among themselves, then combine with the model
    /// budget by the disjoint-datasets maximum.
    pub fn total(&self) -> DpBudget {
        self.model_budget().max(self.cumulative_release())
    }

    /// The equivalent one-shot [`PipelineBudget`] over the cumulative releases.
    pub fn as_pipeline_budget(&self) -> PipelineBudget {
        PipelineBudget {
            structure: self.structure,
            parameters: self.parameters,
            per_release: self.per_release,
            releases: self.releases,
        }
    }

    /// Render the ledger as a JSON object for service / bench reporting.
    pub fn to_json(&self) -> String {
        let total = self.total();
        format!(
            "{{\"requests\":{},\"releases\":{},\"model_epsilon\":{},\"model_delta\":{},\
             \"per_release_epsilon\":{},\"per_release_delta\":{},\
             \"total_epsilon\":{},\"total_delta\":{}}}",
            self.requests,
            self.releases,
            json_f64(self.model_budget().epsilon),
            json_f64(self.model_budget().delta),
            self.per_release
                .map_or("null".into(), |b| json_f64(b.epsilon)),
            self.per_release
                .map_or("null".into(), |b| json_f64(b.delta)),
            json_f64(total.epsilon),
            json_f64(total.delta),
        )
    }
}

/// Format an `f64` as a JSON value (`null` for non-finite values, which JSON
/// cannot represent).
pub(crate) fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_1_formulas() {
        let b = ReleaseBudget::at(50, 4.0, 1.0, 10).unwrap();
        assert!((b.budget.epsilon - (1.0 + (1.0 + 0.4f64).ln())).abs() < 1e-12);
        assert!((b.budget.delta - (-40.0f64).exp()).abs() < 1e-24);
    }

    #[test]
    fn epsilon_decreases_with_t_delta_increases() {
        let low_t = ReleaseBudget::at(50, 4.0, 1.0, 1).unwrap();
        let high_t = ReleaseBudget::at(50, 4.0, 1.0, 40).unwrap();
        assert!(high_t.budget.epsilon < low_t.budget.epsilon);
        assert!(high_t.budget.delta > low_t.budget.delta);
    }

    #[test]
    fn optimize_respects_delta_ceiling() {
        let best = ReleaseBudget::optimize(50, 4.0, 1.0, 1e-9)
            .unwrap()
            .unwrap();
        assert!(best.budget.delta <= 1e-9);
        // Any larger t admissible under the ceiling cannot do better.
        for t in 1..50 {
            let c = ReleaseBudget::at(50, 4.0, 1.0, t).unwrap();
            if c.budget.delta <= 1e-9 {
                assert!(best.budget.epsilon <= c.budget.epsilon + 1e-12);
            }
        }
        // An impossible ceiling yields no bound.
        assert!(ReleaseBudget::optimize(3, 4.0, 0.01, 1e-12)
            .unwrap()
            .is_none());
    }

    #[test]
    fn minimum_k_matches_paper_guidance() {
        // δ ≤ 2^-30 with ε0 = 1 and t = 10 needs k ≥ 10 + ln(2^30) ≈ 10 + 20.79.
        let k = ReleaseBudget::minimum_k(10, 1.0, 2f64.powi(-30)).unwrap();
        assert_eq!(k, 31);
        let b = ReleaseBudget::at(k, 4.0, 1.0, 10).unwrap();
        assert!(b.budget.delta <= 2f64.powi(-30));
        assert!(ReleaseBudget::minimum_k(10, 0.0, 1e-9).is_err());
        assert!(ReleaseBudget::minimum_k(10, 1.0, 2.0).is_err());
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(ReleaseBudget::at(0, 4.0, 1.0, 1).is_err());
        assert!(ReleaseBudget::at(10, 1.0, 1.0, 1).is_err());
        assert!(ReleaseBudget::at(10, 4.0, 0.0, 1).is_err());
        assert!(ReleaseBudget::at(10, 4.0, 1.0, 0).is_err());
        assert!(ReleaseBudget::at(10, 4.0, 1.0, 10).is_err());
        assert!(ReleaseBudget::optimize(1, 4.0, 1.0, 1e-9).is_err());
    }

    #[test]
    fn pipeline_budget_combines_disjoint_and_sequential_parts() {
        let per_release = ReleaseBudget::at(50, 4.0, 1.0, 20).unwrap().budget;
        let budget = PipelineBudget {
            structure: DpBudget::new(0.8, 1e-9),
            parameters: DpBudget::new(0.6, 1e-9),
            per_release: Some(per_release),
            releases: 3,
        };
        assert_eq!(budget.model_budget().epsilon, 0.8);
        let total = budget.total();
        assert!((total.epsilon - 3.0 * per_release.epsilon).abs() < 1e-12);
        // Deterministic test: releases carry no DP guarantee.
        let det = PipelineBudget {
            per_release: None,
            ..budget
        };
        assert!(det.total().epsilon.is_infinite());
    }

    #[test]
    fn ledger_composes_releases_across_requests() {
        let per_release = ReleaseBudget::at(50, 4.0, 1.0, 20).unwrap().budget;
        let mut ledger = BudgetLedger::new(
            DpBudget::new(0.8, 1e-9),
            DpBudget::new(0.6, 1e-9),
            Some(per_release),
        );
        assert_eq!(ledger.cumulative_release(), DpBudget::pure(0.0));
        ledger.record_request(3);
        ledger.record_request(2);
        ledger.record_streamed_release();
        assert_eq!(ledger.requests, 2);
        assert_eq!(ledger.releases, 6);
        let cumulative = ledger.cumulative_release();
        assert!((cumulative.epsilon - 6.0 * per_release.epsilon).abs() < 1e-12);
        // The ledger must agree with the equivalent one-shot accounting.
        assert_eq!(ledger.total(), ledger.as_pipeline_budget().total());
        // Deterministic test: any release makes the cumulative bound vacuous.
        let mut det = BudgetLedger::new(DpBudget::new(0.8, 1e-9), DpBudget::new(0.6, 1e-9), None);
        assert_eq!(det.total().epsilon, 0.8);
        det.record_request(1);
        assert!(det.total().epsilon.is_infinite());
        assert!(det.to_json().contains("\"per_release_epsilon\":null"));
    }

    #[test]
    fn for_releases_scales_linearly() {
        let b = ReleaseBudget::at(50, 4.0, 1.0, 20).unwrap();
        let ten = b.for_releases(10);
        assert!((ten.epsilon - 10.0 * b.budget.epsilon).abs() < 1e-9);
        assert!((ten.delta - 10.0 * b.budget.delta).abs() < 1e-20);
    }
}
