//! Differential-privacy accounting for the release mechanism (Theorem 1) and
//! for the composition of model learning with the releases.
//!
//! Theorem 1: Mechanism 1 with the randomized Privacy Test 2 and parameters
//! `k ≥ 1`, `γ > 1`, `ε0 > 0` is (ε, δ)-differentially private *per released
//! record* with, for any integer `1 ≤ t < k`,
//!
//! ```text
//! ε = ε0 + ln(1 + γ/t)        δ = e^{-ε0 (k - t)}
//! ```
//!
//! `t` trades ε against δ; [`ReleaseBudget::optimize`] scans all admissible `t`
//! and keeps the tightest ε for a caller-specified δ ceiling.

use crate::error::{CoreError, Result};
use serde::{Deserialize, Serialize};
use sgf_stats::{sequential_composition, DpBudget};

/// The privacy guarantee of a single released record under Theorem 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReleaseBudget {
    /// The plausible-deniability parameter k used by the test.
    pub k: usize,
    /// The indistinguishability parameter γ.
    pub gamma: f64,
    /// The threshold-randomization parameter ε0.
    pub epsilon0: f64,
    /// The trade-off parameter t (1 ≤ t < k) the bound was evaluated at.
    pub t: usize,
    /// The resulting (ε, δ) guarantee for one released record.
    pub budget: DpBudget,
}

impl ReleaseBudget {
    /// Evaluate Theorem 1 at a specific `t`.
    pub fn at(k: usize, gamma: f64, epsilon0: f64, t: usize) -> Result<Self> {
        if k < 1 {
            return Err(CoreError::InvalidParameter("k must be at least 1".into()));
        }
        if !(gamma.is_finite() && gamma > 1.0) {
            return Err(CoreError::InvalidParameter(format!(
                "gamma must be finite and > 1, got {gamma}"
            )));
        }
        if !(epsilon0.is_finite() && epsilon0 > 0.0) {
            return Err(CoreError::InvalidParameter(format!(
                "epsilon0 must be finite and positive, got {epsilon0}"
            )));
        }
        if t < 1 || t >= k {
            return Err(CoreError::InvalidParameter(format!(
                "t must satisfy 1 <= t < k (t = {t}, k = {k})"
            )));
        }
        let epsilon = epsilon0 + (1.0 + gamma / t as f64).ln();
        let delta = (-epsilon0 * (k - t) as f64).exp();
        Ok(ReleaseBudget {
            k,
            gamma,
            epsilon0,
            t,
            budget: DpBudget::new(epsilon, delta),
        })
    }

    /// Scan every admissible `t` and return the smallest-ε bound whose δ does
    /// not exceed `max_delta`, or `None` if no such `t` exists.
    pub fn optimize(k: usize, gamma: f64, epsilon0: f64, max_delta: f64) -> Result<Option<Self>> {
        if k < 2 {
            return Err(CoreError::InvalidParameter(
                "optimizing over t requires k >= 2".into(),
            ));
        }
        let mut best: Option<ReleaseBudget> = None;
        for t in 1..k {
            let candidate = ReleaseBudget::at(k, gamma, epsilon0, t)?;
            if candidate.budget.delta > max_delta {
                continue;
            }
            if best
                .as_ref()
                .is_none_or(|b| candidate.budget.epsilon < b.budget.epsilon)
            {
                best = Some(candidate);
            }
        }
        Ok(best)
    }

    /// Smallest `k` that achieves `δ ≤ max_delta` at this `t` and ε0 — the
    /// paper's guidance "if we want δ ≤ 1/n^c ... set k ≥ t + (c/ε0) ln n".
    pub fn minimum_k(t: usize, epsilon0: f64, max_delta: f64) -> Result<usize> {
        if !(epsilon0.is_finite() && epsilon0 > 0.0) {
            return Err(CoreError::InvalidParameter(format!(
                "epsilon0 must be finite and positive, got {epsilon0}"
            )));
        }
        if !(max_delta > 0.0 && max_delta < 1.0) {
            return Err(CoreError::InvalidParameter(format!(
                "max_delta must lie in (0, 1), got {max_delta}"
            )));
        }
        // e^{-ε0 (k - t)} <= δ  <=>  k >= t + ln(1/δ)/ε0.
        Ok(t + ((1.0 / max_delta).ln() / epsilon0).ceil() as usize)
    }

    /// The guarantee for releasing `count` records from the same input dataset
    /// (sequential composition, as discussed in Section 8).
    pub fn for_releases(&self, count: usize) -> DpBudget {
        sequential_composition(&vec![self.budget; count])
    }
}

/// End-to-end privacy accounting for the full pipeline: the generative model's
/// budget (structure + parameter learning on disjoint subsets) plus the
/// release mechanism's budget for the records actually released.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineBudget {
    /// Budget spent learning the model structure on D_T.
    pub structure: DpBudget,
    /// Budget spent learning the model parameters on D_P.
    pub parameters: DpBudget,
    /// Per-release budget of the mechanism (Theorem 1), if the randomized test was used.
    pub per_release: Option<DpBudget>,
    /// Number of records released.
    pub releases: usize,
}

impl PipelineBudget {
    /// Budget of the generative model alone: structure and parameters are
    /// learned on *disjoint* subsets, so the combined cost is the maximum.
    pub fn model_budget(&self) -> DpBudget {
        self.structure.max(self.parameters)
    }

    /// Total budget when the seeds (D_S) are also disjoint from D_T and D_P:
    /// the releases compose sequentially among themselves, and the result
    /// combines with the model budget by the disjoint-datasets maximum.
    pub fn total(&self) -> DpBudget {
        let releases = match self.per_release {
            Some(b) => sequential_composition(&vec![b; self.releases]),
            None => DpBudget::pure(f64::INFINITY), // deterministic test: no DP guarantee for releases
        };
        self.model_budget().max(releases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_1_formulas() {
        let b = ReleaseBudget::at(50, 4.0, 1.0, 10).unwrap();
        assert!((b.budget.epsilon - (1.0 + (1.0 + 0.4f64).ln())).abs() < 1e-12);
        assert!((b.budget.delta - (-40.0f64).exp()).abs() < 1e-24);
    }

    #[test]
    fn epsilon_decreases_with_t_delta_increases() {
        let low_t = ReleaseBudget::at(50, 4.0, 1.0, 1).unwrap();
        let high_t = ReleaseBudget::at(50, 4.0, 1.0, 40).unwrap();
        assert!(high_t.budget.epsilon < low_t.budget.epsilon);
        assert!(high_t.budget.delta > low_t.budget.delta);
    }

    #[test]
    fn optimize_respects_delta_ceiling() {
        let best = ReleaseBudget::optimize(50, 4.0, 1.0, 1e-9)
            .unwrap()
            .unwrap();
        assert!(best.budget.delta <= 1e-9);
        // Any larger t admissible under the ceiling cannot do better.
        for t in 1..50 {
            let c = ReleaseBudget::at(50, 4.0, 1.0, t).unwrap();
            if c.budget.delta <= 1e-9 {
                assert!(best.budget.epsilon <= c.budget.epsilon + 1e-12);
            }
        }
        // An impossible ceiling yields no bound.
        assert!(ReleaseBudget::optimize(3, 4.0, 0.01, 1e-12)
            .unwrap()
            .is_none());
    }

    #[test]
    fn minimum_k_matches_paper_guidance() {
        // δ ≤ 2^-30 with ε0 = 1 and t = 10 needs k ≥ 10 + ln(2^30) ≈ 10 + 20.79.
        let k = ReleaseBudget::minimum_k(10, 1.0, 2f64.powi(-30)).unwrap();
        assert_eq!(k, 31);
        let b = ReleaseBudget::at(k, 4.0, 1.0, 10).unwrap();
        assert!(b.budget.delta <= 2f64.powi(-30));
        assert!(ReleaseBudget::minimum_k(10, 0.0, 1e-9).is_err());
        assert!(ReleaseBudget::minimum_k(10, 1.0, 2.0).is_err());
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(ReleaseBudget::at(0, 4.0, 1.0, 1).is_err());
        assert!(ReleaseBudget::at(10, 1.0, 1.0, 1).is_err());
        assert!(ReleaseBudget::at(10, 4.0, 0.0, 1).is_err());
        assert!(ReleaseBudget::at(10, 4.0, 1.0, 0).is_err());
        assert!(ReleaseBudget::at(10, 4.0, 1.0, 10).is_err());
        assert!(ReleaseBudget::optimize(1, 4.0, 1.0, 1e-9).is_err());
    }

    #[test]
    fn pipeline_budget_combines_disjoint_and_sequential_parts() {
        let per_release = ReleaseBudget::at(50, 4.0, 1.0, 20).unwrap().budget;
        let budget = PipelineBudget {
            structure: DpBudget::new(0.8, 1e-9),
            parameters: DpBudget::new(0.6, 1e-9),
            per_release: Some(per_release),
            releases: 3,
        };
        assert_eq!(budget.model_budget().epsilon, 0.8);
        let total = budget.total();
        assert!((total.epsilon - 3.0 * per_release.epsilon).abs() < 1e-12);
        // Deterministic test: releases carry no DP guarantee.
        let det = PipelineBudget {
            per_release: None,
            ..budget
        };
        assert!(det.total().epsilon.is_infinite());
    }

    #[test]
    fn for_releases_scales_linearly() {
        let b = ReleaseBudget::at(50, 4.0, 1.0, 20).unwrap();
        let ten = b.for_releases(10);
        assert!((ten.epsilon - 10.0 * b.budget.epsilon).abs() < 1e-9);
        assert!((ten.delta - 10.0 * b.budget.delta).abs() < 1e-20);
    }
}
