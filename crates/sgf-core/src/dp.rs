//! Differential-privacy accounting for the release mechanism (Theorem 1) and
//! for the composition of model learning with the releases.
//!
//! Theorem 1: Mechanism 1 with the randomized Privacy Test 2 and parameters
//! `k ≥ 1`, `γ > 1`, `ε0 > 0` is (ε, δ)-differentially private *per released
//! record* with, for any integer `1 ≤ t < k`,
//!
//! ```text
//! ε = ε0 + ln(1 + γ/t)        δ = e^{-ε0 (k - t)}
//! ```
//!
//! `t` trades ε against δ; [`ReleaseBudget::optimize`] scans all admissible `t`
//! and keeps the tightest ε for a caller-specified δ ceiling.

use crate::error::{CoreError, Result};
use serde::{Deserialize, Serialize};
use sgf_stats::DpBudget;

/// Largest integer every `f64` at or below it represents exactly (2^53).
/// Counts under this bound convert to `f64` without rounding, which is what
/// keeps the accounting formulas below exact rather than merely approximate.
const MAX_EXACT_COUNT: u64 = 1 << 53;
/// The same bound as an `f64` literal (spelled out so no cast is needed).
const MAX_EXACT_COUNT_F64: f64 = 9_007_199_254_740_992.0;

/// Convert a release/parameter count to `f64` for budget arithmetic (R5,
/// accounting-cast discipline).  Exact up to 2^53; beyond that the conversion
/// would silently round, so the count saturates to `+inf` instead — a
/// *conservative* overstatement of the privacy cost, never an understatement.
pub(crate) fn count_to_f64(n: usize) -> f64 {
    if u64::try_from(n).is_ok_and(|v| v <= MAX_EXACT_COUNT) {
        n as f64
    } else {
        f64::INFINITY
    }
}

/// Ceil a non-negative finite `f64` and convert it to `usize` (R5,
/// accounting-cast discipline).  A bare `ceil() as usize` quietly saturates
/// on NaN/∞/overflow; parameter-sizing formulas must surface those cases as
/// errors instead.
pub(crate) fn ceil_to_usize(value: f64) -> Result<usize> {
    let ceiled = value.ceil();
    // NaN fails `contains` too, so non-finite values are covered.
    if !(0.0..=MAX_EXACT_COUNT_F64).contains(&ceiled) {
        return Err(CoreError::InvalidParameter(format!(
            "value {value} does not round up to a representable count"
        )));
    }
    Ok(ceiled as usize)
}

/// Sequential composition of `releases` identical per-release budgets, in
/// O(1): n releases of an (ε, δ) mechanism cost (nε, nδ).  `None` means the
/// deterministic test was used, which carries no per-release guarantee — the
/// composed cost is vacuous (infinite ε) as soon as anything was released.
///
/// Every accounting surface (the one-shot [`PipelineBudget`], the cumulative
/// [`BudgetLedger`], and the per-request report) goes through this single
/// helper so they can never disagree.
pub(crate) fn compose_releases(per_release: Option<DpBudget>, releases: usize) -> DpBudget {
    match (per_release, releases) {
        (_, 0) => DpBudget::pure(0.0),
        (Some(b), n) => {
            let n = count_to_f64(n);
            DpBudget::new(n * b.epsilon, n * b.delta)
        }
        (None, _) => DpBudget::pure(f64::INFINITY),
    }
}

/// The privacy guarantee of a single released record under Theorem 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReleaseBudget {
    /// The plausible-deniability parameter k used by the test.
    pub k: usize,
    /// The indistinguishability parameter γ.
    pub gamma: f64,
    /// The threshold-randomization parameter ε0.
    pub epsilon0: f64,
    /// The trade-off parameter t (1 ≤ t < k) the bound was evaluated at.
    pub t: usize,
    /// The resulting (ε, δ) guarantee for one released record.
    pub budget: DpBudget,
}

impl ReleaseBudget {
    /// Evaluate Theorem 1 at a specific `t`.
    pub fn at(k: usize, gamma: f64, epsilon0: f64, t: usize) -> Result<Self> {
        if k < 1 {
            return Err(CoreError::InvalidParameter("k must be at least 1".into()));
        }
        if !(gamma.is_finite() && gamma > 1.0) {
            return Err(CoreError::InvalidParameter(format!(
                "gamma must be finite and > 1, got {gamma}"
            )));
        }
        if !(epsilon0.is_finite() && epsilon0 > 0.0) {
            return Err(CoreError::InvalidParameter(format!(
                "epsilon0 must be finite and positive, got {epsilon0}"
            )));
        }
        if t < 1 || t >= k {
            return Err(CoreError::InvalidParameter(format!(
                "t must satisfy 1 <= t < k (t = {t}, k = {k})"
            )));
        }
        let epsilon = epsilon0 + (1.0 + gamma / count_to_f64(t)).ln();
        let delta = (-epsilon0 * count_to_f64(k - t)).exp();
        Ok(ReleaseBudget {
            k,
            gamma,
            epsilon0,
            t,
            budget: DpBudget::new(epsilon, delta),
        })
    }

    /// Scan every admissible `t` and return the smallest-ε bound whose δ does
    /// not exceed `max_delta`, or `None` if no such `t` exists.
    pub fn optimize(k: usize, gamma: f64, epsilon0: f64, max_delta: f64) -> Result<Option<Self>> {
        if k < 2 {
            return Err(CoreError::InvalidParameter(
                "optimizing over t requires k >= 2".into(),
            ));
        }
        let mut best: Option<ReleaseBudget> = None;
        for t in 1..k {
            let candidate = ReleaseBudget::at(k, gamma, epsilon0, t)?;
            if candidate.budget.delta > max_delta {
                continue;
            }
            if best
                .as_ref()
                .is_none_or(|b| candidate.budget.epsilon < b.budget.epsilon)
            {
                best = Some(candidate);
            }
        }
        Ok(best)
    }

    /// Smallest `k` that achieves `δ ≤ max_delta` at this `t` and ε0 — the
    /// paper's guidance "if we want δ ≤ 1/n^c ... set k ≥ t + (c/ε0) ln n".
    pub fn minimum_k(t: usize, epsilon0: f64, max_delta: f64) -> Result<usize> {
        if !(epsilon0.is_finite() && epsilon0 > 0.0) {
            return Err(CoreError::InvalidParameter(format!(
                "epsilon0 must be finite and positive, got {epsilon0}"
            )));
        }
        if !(max_delta > 0.0 && max_delta < 1.0) {
            return Err(CoreError::InvalidParameter(format!(
                "max_delta must lie in (0, 1), got {max_delta}"
            )));
        }
        // e^{-ε0 (k - t)} <= δ  <=>  k >= t + ln(1/δ)/ε0.
        Ok(t + ceil_to_usize((1.0 / max_delta).ln() / epsilon0)?)
    }

    /// The guarantee for releasing `count` records from the same input dataset
    /// (sequential composition, as discussed in Section 8).
    pub fn for_releases(&self, count: usize) -> DpBudget {
        compose_releases(Some(self.budget), count)
    }
}

/// End-to-end privacy accounting for the full pipeline: the generative model's
/// budget (structure + parameter learning on disjoint subsets) plus the
/// release mechanism's budget for the records actually released.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineBudget {
    /// Budget spent learning the model structure on D_T.
    pub structure: DpBudget,
    /// Budget spent learning the model parameters on D_P.
    pub parameters: DpBudget,
    /// Per-release budget of the mechanism (Theorem 1), if the randomized test was used.
    pub per_release: Option<DpBudget>,
    /// Number of records released.
    pub releases: usize,
}

impl PipelineBudget {
    /// Budget of the generative model alone: structure and parameters are
    /// learned on *disjoint* subsets, so the combined cost is the maximum.
    pub fn model_budget(&self) -> DpBudget {
        self.structure.max(self.parameters)
    }

    /// Total budget when the seeds (D_S) are also disjoint from D_T and D_P:
    /// the releases compose sequentially among themselves, and the result
    /// combines with the model budget by the disjoint-datasets maximum.
    pub fn total(&self) -> DpBudget {
        self.model_budget()
            .max(compose_releases(self.per_release, self.releases))
    }
}

/// Cumulative differential-privacy accounting across *all* the `generate`
/// requests served by one [`crate::session::SynthesisSession`].
///
/// The model budgets (structure, parameters) are paid once at training time;
/// every released record afterwards spends one per-release budget (Theorem 1),
/// and releases from the same seed store compose sequentially no matter how
/// many requests they were spread over (Section 8).  The ledger tracks the
/// running totals so a long-lived service can report — and cap — its exposure.
///
/// # Two-phase admission
///
/// A release service admitting concurrent requests under an (ε, δ) cap cannot
/// check the cap against `releases` alone: two requests admitted back-to-back
/// would each see the pre-admission total and jointly overshoot.  The ledger
/// therefore supports a **reserve → commit / abort** protocol:
///
/// 1. [`try_reserve`](BudgetLedger::try_reserve) atomically checks that the
///    worst case — every already-released record, every outstanding
///    reservation, and the new request all fully released — stays within the
///    cap, and records the reservation;
/// 2. [`commit`](BudgetLedger::commit) converts a reservation into actual
///    releases (freeing any unused part — a request may release fewer records
///    than it reserved); a streaming release instead converts its
///    reservation one record at a time
///    ([`convert_reserved_release`](BudgetLedger::convert_reserved_release))
///    so the worst case stays exact mid-stream;
/// 3. [`abort`](BudgetLedger::abort) frees a reservation untouched (queue
///    overflow, request failure, the unstreamed remainder).
///
/// As long as every `try_reserve` is balanced by commits/conversions and one
/// final abort of the remainder, `reserved` returns to zero and the ledger
/// equals the sum of the committed releases — property-tested in this module.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BudgetLedger {
    /// Budget spent learning the model structure on D_T (paid once).
    pub structure: DpBudget,
    /// Budget spent learning the model parameters on D_P (paid once).
    pub parameters: DpBudget,
    /// Per-release budget of the mechanism (Theorem 1), if the randomized test
    /// was selected; `None` for the deterministic test.
    pub per_release: Option<DpBudget>,
    /// Total records released across all requests so far.
    pub releases: usize,
    /// Number of `generate` requests (or streaming iterators) served so far.
    pub requests: usize,
    /// Records reserved by admitted-but-unfinished requests (see the
    /// two-phase admission protocol in the type docs).
    pub reserved: usize,
}

impl BudgetLedger {
    /// A fresh ledger: training budgets paid, nothing released yet.
    pub fn new(structure: DpBudget, parameters: DpBudget, per_release: Option<DpBudget>) -> Self {
        BudgetLedger {
            structure,
            parameters,
            per_release,
            releases: 0,
            requests: 0,
            reserved: 0,
        }
    }

    /// Atomically reserve budget for up to `records` releases under `cap`.
    ///
    /// Admission rule: the worst-case total — committed releases, outstanding
    /// reservations, and this request all fully released, combined with the
    /// model budget — must not exceed the cap in either ε or δ.  Callers hold
    /// the session's ledger lock for the duration of the call, so concurrent
    /// requests can never jointly overshoot the cap.
    ///
    /// A successful reservation must later be balanced by exactly one
    /// [`commit`](BudgetLedger::commit) or [`abort`](BudgetLedger::abort).
    pub fn try_reserve(&mut self, records: usize, cap: DpBudget) -> Result<()> {
        let requested = self.total_for_releases(self.releases + self.reserved + records);
        if requested.epsilon > cap.epsilon || requested.delta > cap.delta {
            return Err(CoreError::BudgetCapExceeded { requested, cap });
        }
        self.reserved += records;
        Ok(())
    }

    /// The end-to-end (ε, δ) this session would carry if its cumulative
    /// releases were exactly `releases` records (model budget combined with
    /// the sequential release composition).  This is the single formula both
    /// sides of admission use: [`try_reserve`](BudgetLedger::try_reserve)
    /// checks it against the cap, and cap-sizing helpers derive caps from it.
    pub fn total_for_releases(&self, releases: usize) -> DpBudget {
        self.model_budget()
            .max(compose_releases(self.per_release, releases))
    }

    /// Convert one reserved record into an actual release — the streaming
    /// counterpart of [`commit`](BudgetLedger::commit), called as each record
    /// is yielded so `releases + reserved` (and hence the worst case checked
    /// by admission) stays exact for the whole stream.
    pub fn convert_reserved_release(&mut self) {
        debug_assert!(self.reserved > 0, "converting with nothing reserved");
        self.reserved = self.reserved.saturating_sub(1);
        self.releases += 1;
    }

    /// Commit a reservation of `reserved` records of which `released` were
    /// actually released: the unused part of the reservation is freed and the
    /// request is charged like any completed `generate` call.
    pub fn commit(&mut self, reserved: usize, released: usize) {
        debug_assert!(
            reserved <= self.reserved,
            "committing more than was reserved ({reserved} > {})",
            self.reserved
        );
        debug_assert!(
            released <= reserved,
            "released past the reservation ({released} > {reserved})"
        );
        self.reserved = self.reserved.saturating_sub(reserved);
        self.record_request(released);
    }

    /// Free a reservation without charging anything (failed or rejected
    /// request).
    pub fn abort(&mut self, records: usize) {
        debug_assert!(
            records <= self.reserved,
            "aborting more than was reserved ({records} > {})",
            self.reserved
        );
        self.reserved = self.reserved.saturating_sub(records);
    }

    /// Worst-case end-to-end (ε, δ) if every outstanding reservation were
    /// fully released — the quantity [`try_reserve`](BudgetLedger::try_reserve)
    /// compares against the cap.
    pub fn reserved_total(&self) -> DpBudget {
        self.total_for_releases(self.releases + self.reserved)
    }

    /// Charge one completed request that released `released` records.
    pub fn record_request(&mut self, released: usize) {
        self.requests += 1;
        self.releases += released;
    }

    /// Charge one record released by a streaming iterator (the iterator's
    /// request was already counted when it was opened).
    pub fn record_streamed_release(&mut self) {
        self.releases += 1;
    }

    /// Budget of the generative model alone (disjoint subsets ⇒ maximum).
    pub fn model_budget(&self) -> DpBudget {
        self.structure.max(self.parameters)
    }

    /// Sequential composition of every release charged so far; infinite ε if
    /// the deterministic test (no per-release guarantee) was used and anything
    /// was released.
    pub fn cumulative_release(&self) -> DpBudget {
        compose_releases(self.per_release, self.releases)
    }

    /// End-to-end (ε, δ) of everything the session has done: released records
    /// compose sequentially among themselves, then combine with the model
    /// budget by the disjoint-datasets maximum.
    pub fn total(&self) -> DpBudget {
        self.model_budget().max(self.cumulative_release())
    }

    /// The equivalent one-shot [`PipelineBudget`] over the cumulative releases.
    pub fn as_pipeline_budget(&self) -> PipelineBudget {
        PipelineBudget {
            structure: self.structure,
            parameters: self.parameters,
            per_release: self.per_release,
            releases: self.releases,
        }
    }

    /// Render the ledger as a JSON object for service / bench reporting.
    pub fn to_json(&self) -> String {
        let total = self.total();
        let reserved_total = self.reserved_total();
        format!(
            "{{\"requests\":{},\"releases\":{},\"reserved\":{},\
             \"model_epsilon\":{},\"model_delta\":{},\
             \"per_release_epsilon\":{},\"per_release_delta\":{},\
             \"total_epsilon\":{},\"total_delta\":{},\
             \"reserved_epsilon\":{},\"reserved_delta\":{}}}",
            self.requests,
            self.releases,
            self.reserved,
            json_f64(self.model_budget().epsilon),
            json_f64(self.model_budget().delta),
            self.per_release
                .map_or("null".into(), |b| json_f64(b.epsilon)),
            self.per_release
                .map_or("null".into(), |b| json_f64(b.delta)),
            json_f64(total.epsilon),
            json_f64(total.delta),
            json_f64(reserved_total.epsilon),
            json_f64(reserved_total.delta),
        )
    }
}

/// Format an `f64` as a JSON value (`null` for non-finite values, which JSON
/// cannot represent).
pub(crate) fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_1_formulas() {
        let b = ReleaseBudget::at(50, 4.0, 1.0, 10).unwrap();
        assert!((b.budget.epsilon - (1.0 + (1.0 + 0.4f64).ln())).abs() < 1e-12);
        assert!((b.budget.delta - (-40.0f64).exp()).abs() < 1e-24);
    }

    #[test]
    fn epsilon_decreases_with_t_delta_increases() {
        let low_t = ReleaseBudget::at(50, 4.0, 1.0, 1).unwrap();
        let high_t = ReleaseBudget::at(50, 4.0, 1.0, 40).unwrap();
        assert!(high_t.budget.epsilon < low_t.budget.epsilon);
        assert!(high_t.budget.delta > low_t.budget.delta);
    }

    #[test]
    fn optimize_respects_delta_ceiling() {
        let best = ReleaseBudget::optimize(50, 4.0, 1.0, 1e-9)
            .unwrap()
            .unwrap();
        assert!(best.budget.delta <= 1e-9);
        // Any larger t admissible under the ceiling cannot do better.
        for t in 1..50 {
            let c = ReleaseBudget::at(50, 4.0, 1.0, t).unwrap();
            if c.budget.delta <= 1e-9 {
                assert!(best.budget.epsilon <= c.budget.epsilon + 1e-12);
            }
        }
        // An impossible ceiling yields no bound.
        assert!(ReleaseBudget::optimize(3, 4.0, 0.01, 1e-12)
            .unwrap()
            .is_none());
    }

    #[test]
    fn minimum_k_matches_paper_guidance() {
        // δ ≤ 2^-30 with ε0 = 1 and t = 10 needs k ≥ 10 + ln(2^30) ≈ 10 + 20.79.
        let k = ReleaseBudget::minimum_k(10, 1.0, 2f64.powi(-30)).unwrap();
        assert_eq!(k, 31);
        let b = ReleaseBudget::at(k, 4.0, 1.0, 10).unwrap();
        assert!(b.budget.delta <= 2f64.powi(-30));
        assert!(ReleaseBudget::minimum_k(10, 0.0, 1e-9).is_err());
        assert!(ReleaseBudget::minimum_k(10, 1.0, 2.0).is_err());
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(ReleaseBudget::at(0, 4.0, 1.0, 1).is_err());
        assert!(ReleaseBudget::at(10, 1.0, 1.0, 1).is_err());
        assert!(ReleaseBudget::at(10, 4.0, 0.0, 1).is_err());
        assert!(ReleaseBudget::at(10, 4.0, 1.0, 0).is_err());
        assert!(ReleaseBudget::at(10, 4.0, 1.0, 10).is_err());
        assert!(ReleaseBudget::optimize(1, 4.0, 1.0, 1e-9).is_err());
    }

    #[test]
    fn pipeline_budget_combines_disjoint_and_sequential_parts() {
        let per_release = ReleaseBudget::at(50, 4.0, 1.0, 20).unwrap().budget;
        let budget = PipelineBudget {
            structure: DpBudget::new(0.8, 1e-9),
            parameters: DpBudget::new(0.6, 1e-9),
            per_release: Some(per_release),
            releases: 3,
        };
        assert_eq!(budget.model_budget().epsilon, 0.8);
        let total = budget.total();
        assert!((total.epsilon - 3.0 * per_release.epsilon).abs() < 1e-12);
        // Deterministic test: releases carry no DP guarantee.
        let det = PipelineBudget {
            per_release: None,
            ..budget
        };
        assert!(det.total().epsilon.is_infinite());
    }

    #[test]
    fn ledger_composes_releases_across_requests() {
        let per_release = ReleaseBudget::at(50, 4.0, 1.0, 20).unwrap().budget;
        let mut ledger = BudgetLedger::new(
            DpBudget::new(0.8, 1e-9),
            DpBudget::new(0.6, 1e-9),
            Some(per_release),
        );
        assert_eq!(ledger.cumulative_release(), DpBudget::pure(0.0));
        ledger.record_request(3);
        ledger.record_request(2);
        ledger.record_streamed_release();
        assert_eq!(ledger.requests, 2);
        assert_eq!(ledger.releases, 6);
        let cumulative = ledger.cumulative_release();
        assert!((cumulative.epsilon - 6.0 * per_release.epsilon).abs() < 1e-12);
        // The ledger must agree with the equivalent one-shot accounting.
        assert_eq!(ledger.total(), ledger.as_pipeline_budget().total());
        // Deterministic test: any release makes the cumulative bound vacuous.
        let mut det = BudgetLedger::new(DpBudget::new(0.8, 1e-9), DpBudget::new(0.6, 1e-9), None);
        assert_eq!(det.total().epsilon, 0.8);
        det.record_request(1);
        assert!(det.total().epsilon.is_infinite());
        assert!(det.to_json().contains("\"per_release_epsilon\":null"));
    }

    fn capped_ledger(per_release: DpBudget) -> BudgetLedger {
        BudgetLedger::new(
            DpBudget::new(0.8, 1e-9),
            DpBudget::new(0.6, 1e-9),
            Some(per_release),
        )
    }

    /// Smallest cap admitting exactly `releases` records from `ledger` (a hair
    /// of multiplicative slack over the same formula admission checks).
    fn cap_for(ledger: &BudgetLedger, releases: usize) -> DpBudget {
        let total = ledger.total_for_releases(releases);
        DpBudget::new(total.epsilon * (1.0 + 1e-9), total.delta * (1.0 + 1e-9))
    }

    #[test]
    fn reserve_commit_abort_round_trip() {
        let per_release = ReleaseBudget::at(50, 4.0, 1.0, 20).unwrap().budget;
        let mut ledger = capped_ledger(per_release);
        let cap = cap_for(&ledger, 10);

        // Reserve 6 + 4 = the full cap; a third reservation must be refused.
        ledger.try_reserve(6, cap).unwrap();
        ledger.try_reserve(4, cap).unwrap();
        assert_eq!(ledger.reserved, 10);
        let err = ledger.try_reserve(1, cap).unwrap_err();
        assert!(matches!(err, CoreError::BudgetCapExceeded { .. }));
        if let CoreError::BudgetCapExceeded { requested, cap: c } = err {
            assert!(requested.epsilon > c.epsilon || requested.delta > c.delta);
        }

        // Commit the first (releasing fewer than reserved frees the rest),
        // abort the second: the freed budget is admissible again.
        ledger.commit(6, 5);
        assert_eq!(ledger.reserved, 4);
        assert_eq!(ledger.releases, 5);
        assert_eq!(ledger.requests, 1);
        ledger.abort(4);
        assert_eq!(ledger.reserved, 0);
        ledger.try_reserve(5, cap).unwrap();
        ledger.commit(5, 5);
        assert_eq!(ledger.releases, 10);
        // The cap is now exactly consumed by committed releases.
        assert!(ledger.try_reserve(1, cap).is_err());
        assert_eq!(ledger.reserved_total(), ledger.total());
        let json = ledger.to_json();
        assert!(json.contains("\"reserved\":0"));
        assert!(json.contains("\"reserved_epsilon\":"));
    }

    #[test]
    fn reservations_count_against_the_cap_before_commit() {
        let per_release = ReleaseBudget::at(50, 4.0, 1.0, 20).unwrap().budget;
        let mut ledger = capped_ledger(per_release);
        let cap = cap_for(&ledger, 4);
        ledger.try_reserve(4, cap).unwrap();
        // Nothing committed yet, but the worst case is already at the cap.
        assert_eq!(ledger.releases, 0);
        assert!(ledger.try_reserve(1, cap).is_err());
        assert!(ledger.reserved_total().epsilon > ledger.total().epsilon);
    }

    #[test]
    fn deterministic_test_admits_nothing_under_a_finite_cap() {
        let mut ledger =
            BudgetLedger::new(DpBudget::new(0.8, 1e-9), DpBudget::new(0.6, 1e-9), None);
        // No per-release guarantee: one release makes ε infinite, so any
        // finite cap refuses the very first reservation.
        assert!(ledger.try_reserve(1, DpBudget::new(1e9, 1.0)).is_err());
        // An infinite cap (no capping) still admits.
        ledger
            .try_reserve(1, DpBudget::new(f64::INFINITY, 1.0))
            .unwrap();
        ledger.commit(1, 1);
        assert!(ledger.total().epsilon.is_infinite());
    }

    #[test]
    fn concurrent_reservations_admit_exactly_the_cap() {
        use std::sync::{Arc, Mutex};
        let per_release = ReleaseBudget::at(50, 4.0, 1.0, 20).unwrap().budget;
        let ledger = capped_ledger(per_release);
        let cap = cap_for(&ledger, 3 * 5);
        let shared = Arc::new(Mutex::new(ledger));
        // 16 threads race to reserve 5 records each under a cap of 15:
        // exactly 3 may win, no matter the interleaving.
        let admitted: usize = std::thread::scope(|scope| {
            (0..16)
                .map(|_| {
                    let shared = Arc::clone(&shared);
                    scope.spawn(move || {
                        let ok = shared.lock().unwrap().try_reserve(5, cap).is_ok();
                        if ok {
                            shared.lock().unwrap().commit(5, 5);
                        }
                        usize::from(ok)
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(admitted, 3);
        let final_ledger = *shared.lock().unwrap();
        assert_eq!(final_ledger.releases, 15);
        assert_eq!(final_ledger.reserved, 0);
        assert!(final_ledger.total().epsilon <= cap.epsilon);
    }

    mod reservation_properties {
        use super::*;
        use proptest::prelude::*;

        /// One step of an arbitrary reserve/commit/abort interleaving:
        /// `action` picks the operation, `a`/`b` parameterize it.  Returns
        /// how many records the step released (committed or converted).
        fn apply(
            ledger: &mut BudgetLedger,
            outstanding: &mut Vec<usize>,
            cap: DpBudget,
            action: u8,
            a: usize,
            b: usize,
        ) -> usize {
            if action == 0 {
                // Reserve `a` records (may be refused by the cap).
                if ledger.try_reserve(a, cap).is_ok() {
                    outstanding.push(a);
                }
                0
            } else if outstanding.is_empty() {
                0
            } else if action == 3 {
                // Stream one record out of an outstanding reservation.
                let i = a % outstanding.len();
                if outstanding[i] == 0 {
                    return 0;
                }
                outstanding[i] -= 1;
                ledger.convert_reserved_release();
                1
            } else {
                let r = outstanding.remove(a % outstanding.len());
                if action == 1 {
                    // Commit it, releasing `b mod (r+1)` of its records.
                    let released = b % (r + 1);
                    ledger.commit(r, released);
                    released
                } else {
                    // Abort it.
                    ledger.abort(r);
                    0
                }
            }
        }

        proptest! {
            /// Any interleaving of reserve→commit, reserve→abort, and
            /// streaming conversions leaves the ledger equal to the sum of
            /// the released records: no leaked reservations, no lost
            /// releases, and the worst case never exceeds the cap at any
            /// step.
            #[test]
            fn interleavings_never_leak_reservations(
                ops in proptest::collection::vec((0u8..4, 0usize..9, 0usize..9), 1..60),
                cap_releases in 1usize..40,
            ) {
                let per_release = ReleaseBudget::at(50, 4.0, 1.0, 20).unwrap().budget;
                let mut ledger = capped_ledger(per_release);
                let cap = cap_for(&ledger, cap_releases);
                let mut outstanding: Vec<usize> = Vec::new();
                let mut released = 0usize;
                for (action, a, b) in ops {
                    released += apply(&mut ledger, &mut outstanding, cap, action, a, b);
                    // Invariants hold after every step, not just at the end.
                    prop_assert_eq!(ledger.reserved, outstanding.iter().sum::<usize>());
                    prop_assert_eq!(ledger.releases, released);
                    prop_assert!(ledger.reserved_total().epsilon <= cap.epsilon);
                    prop_assert!(ledger.reserved_total().delta <= cap.delta);
                }
                // Settle everything still outstanding: the ledger must return
                // to exactly the released sum with zero reservations.
                for r in outstanding.drain(..) {
                    ledger.abort(r);
                }
                prop_assert_eq!(ledger.reserved, 0);
                prop_assert_eq!(ledger.releases, released);
                let expected = compose_releases(ledger.per_release, released);
                prop_assert!((ledger.cumulative_release().epsilon - expected.epsilon).abs() < 1e-9);
                prop_assert_eq!(ledger.total(), ledger.reserved_total());
            }
        }
    }

    #[test]
    fn accounting_casts_are_checked() {
        // count_to_f64: exact in the representable range, conservative
        // (infinite cost, never an undercount) past it.
        assert_eq!(count_to_f64(0), 0.0);
        assert_eq!(count_to_f64(12345), 12345.0);
        assert_eq!(count_to_f64(MAX_EXACT_COUNT as usize), 9007199254740992.0);
        assert!(count_to_f64(MAX_EXACT_COUNT as usize + 1).is_infinite());
        // ceil_to_usize: well-defined on finite non-negative input, an error
        // (not a silent saturation) otherwise.
        assert_eq!(ceil_to_usize(2.1).unwrap(), 3);
        assert_eq!(ceil_to_usize(0.0).unwrap(), 0);
        assert_eq!(ceil_to_usize(-0.3).unwrap(), 0);
        assert!(ceil_to_usize(f64::NAN).is_err());
        assert!(ceil_to_usize(f64::INFINITY).is_err());
        assert!(ceil_to_usize(-1.5).is_err());
        assert!(ceil_to_usize(1e300).is_err());
    }

    #[test]
    fn for_releases_scales_linearly() {
        let b = ReleaseBudget::at(50, 4.0, 1.0, 20).unwrap();
        let ten = b.for_releases(10);
        assert!((ten.epsilon - 10.0 * b.budget.epsilon).abs() < 1e-9);
        assert!((ten.delta - 10.0 * b.budget.delta).abs() < 1e-20);
    }
}
