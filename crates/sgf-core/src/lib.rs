//! # sgf-core
//!
//! The plausible-deniability framework of *Plausible Deniability for
//! Privacy-Preserving Data Synthesis* (VLDB 2017):
//!
//! * [`deniability`] — the (k, γ) criterion of Definition 1 and the seed
//!   partitions `I_d(y)` / `C_i(D, y)` underpinning the analysis;
//! * [`privacy_test`] — the deterministic Privacy Test 1 and the randomized
//!   Privacy Test 2 (Laplace-noised threshold), including the tool's
//!   early-termination knobs;
//! * [`mechanism`] — Mechanism 1 (`F`): seed sampling, candidate generation,
//!   test, release;
//! * [`dp`] — the (ε, δ) guarantees of Theorem 1 and end-to-end accounting;
//! * [`pipeline`] — the parallel end-to-end pipeline (split, learn, generate),
//!   the Rust counterpart of the paper's C++ tool.
//!
//! ```
//! use sgf_core::{PipelineConfig, SynthesisPipeline};
//! use sgf_data::acs::{acs_bucketizer, acs_schema, generate_acs};
//!
//! let data = generate_acs(3_000, 42);
//! let bucketizer = acs_bucketizer(&acs_schema());
//! let mut config = PipelineConfig::paper_defaults(25);
//! config.privacy_test.k = 20; // small demo dataset
//! let result = SynthesisPipeline::new(config).run(&data, &bucketizer).unwrap();
//! assert!(result.synthetics.len() <= 25);
//! ```

#![warn(missing_docs)]

pub mod deniability;
pub mod dp;
pub mod error;
pub mod mechanism;
pub mod pipeline;
pub mod privacy_test;

pub use deniability::{partition_index, partition_size, satisfies_plausible_deniability};
pub use dp::{PipelineBudget, ReleaseBudget};
pub use error::{CoreError, Result};
pub use mechanism::{CandidateReport, Mechanism, MechanismStats};
pub use pipeline::{
    PipelineConfig, PipelineResult, PipelineTimings, SynthesisPipeline, TrainedModels,
};
pub use privacy_test::{run_privacy_test, PrivacyTestConfig, TestOutcome};
