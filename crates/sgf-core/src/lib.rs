//! # sgf-core
//!
//! The plausible-deniability framework of *Plausible Deniability for
//! Privacy-Preserving Data Synthesis* (VLDB 2017):
//!
//! * [`deniability`] — the (k, γ) criterion of Definition 1 and the seed
//!   partitions `I_d(y)` / `C_i(D, y)` underpinning the analysis;
//! * [`privacy_test`] — the deterministic Privacy Test 1 and the randomized
//!   Privacy Test 2 (Laplace-noised threshold), including the tool's
//!   early-termination knobs;
//! * [`mechanism`] — Mechanism 1 (`F`): seed sampling, candidate generation,
//!   test, release — against the full scan or an indexed seed store from
//!   [`sgf_index`] (the [`SeedIndex`] policy picks per session/request);
//! * [`dp`] — the (ε, δ) guarantees of Theorem 1, end-to-end accounting, and
//!   the cumulative [`BudgetLedger`] of a long-lived session;
//! * [`session`] — the staged **train once, serve many** API: a
//!   [`SynthesisEngine`] trains an immutable [`SynthesisSession`] that serves
//!   repeated [`GenerateRequest`]s over any [`sgf_model::GenerativeModel`];
//! * [`pipeline`] — the one-shot pipeline (split, learn, generate), the Rust
//!   counterpart of the paper's C++ tool, now a thin wrapper over [`session`].
//!
//! ```
//! use sgf_core::{GenerateRequest, PrivacyTestConfig, SynthesisEngine};
//! use sgf_data::acs::{acs_bucketizer, acs_schema, generate_acs};
//!
//! let data = generate_acs(3_000, 42);
//! let bucketizer = acs_bucketizer(&acs_schema());
//! // Train once (k = 20 for this small demo dataset)...
//! let session = SynthesisEngine::builder()
//!     .privacy_test(PrivacyTestConfig::randomized(20, 4.0, 1.0))
//!     .seed(42)
//!     .train(&data, &bucketizer)
//!     .unwrap();
//! // ...then serve any number of generate requests from the same models.
//! let report = session.generate(&GenerateRequest::new(25)).unwrap();
//! assert!(report.synthetics.len() <= 25);
//! assert_eq!(session.ledger().releases, report.stats.released);
//! ```

pub mod deniability;
pub mod dp;
pub mod error;
pub mod mechanism;
pub mod pipeline;
pub mod privacy_test;
pub mod session;

pub use deniability::{partition_index, partition_size, satisfies_plausible_deniability};
pub use dp::{BudgetLedger, PipelineBudget, ReleaseBudget};
pub use error::{CoreError, Result};
pub use mechanism::{
    propose_candidate, propose_candidate_with_store, CandidateReport, Mechanism, MechanismStats,
};
pub use pipeline::{
    PipelineConfig, PipelineResult, PipelineTimings, SynthesisPipeline, TrainedModels,
};
pub use privacy_test::{run_privacy_test, run_with_store, PrivacyTestConfig, TestOutcome};
pub use session::{
    EngineBuilder, GenerateRequest, ReleaseIter, ReleaseReport, SynthesisEngine, SynthesisSession,
};
pub use sgf_index::{
    InvertedIndexStore, LinearScanStore, PartitionIndexStore, SeedIndex, SeedStore,
};
