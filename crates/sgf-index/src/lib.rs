//! # sgf-index
//!
//! Indexed seed stores that make the plausible-deniability test **sublinear**
//! in the seed-dataset size.
//!
//! The privacy tests of Section 2 are the hot path of the whole generator:
//! for every candidate synthetic record they count how many seed records fall
//! into the same γ-likelihood partition, so a full scan makes the work per
//! released record grow linearly — and the total quadratically — with the
//! dataset.  This crate pre-builds an index over the seed data so each
//! per-candidate test touches only the records that can possibly be plausible
//! seeds:
//!
//! * [`SeedStore`] — the query abstraction: a *sound superset* of the records
//!   that can plausibly have generated a candidate (no false negatives, so
//!   filtering never changes a test decision);
//! * [`LinearScanStore`] — the baseline: every record, every time;
//! * [`InvertedIndexStore`] — bucketized per-value posting lists, intersected
//!   over the candidate's highest-weight matching attributes;
//! * [`PartitionIndexStore`] — seeds collapsed into likelihood-equivalence
//!   classes (identical generation probability for every candidate), so the
//!   γ-partition check runs once per class and counts with multiplicity;
//! * [`ClassMatchCache`] — an optional per-store cache of seed-independent
//!   class-match rows, shared across every request of a session, so repeated
//!   candidates with the same likelihood projection skip the per-class model
//!   evaluations entirely (decisions stay bit-identical to the uncached
//!   path);
//! * [`IndexPermutation`] / [`RandomSubset`] — O(1)-random-access seeded
//!   permutations, so the `max_check_plausible` early-termination knob can
//!   examine a random subset without the per-candidate O(n) shuffle, and so
//!   scan and index derive the **same** subset from the same RNG draw;
//! * [`SeedIndex`] — the `Scan | Inverted | Auto` selection policy carried by
//!   pipeline configurations and generate requests.

pub mod inverted;
pub mod partition;
pub mod permute;
pub mod policy;
pub mod store;

pub use inverted::{InvertedIndexStore, PostingIntersection, MAX_INTERSECT_LISTS};
pub use partition::{
    ClassMatchCache, ClassMatchLookup, LikelihoodClass, LikelihoodClasses, PartitionIndexStore,
    DEFAULT_CLASS_CACHE_CAP,
};
pub use permute::{IndexPermutation, RandomSubset};
pub use policy::SeedIndex;
pub use store::{CandidateIter, LinearScanStore, SeedStore};
