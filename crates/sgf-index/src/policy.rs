//! The seed-store selection policy carried by pipeline configurations and
//! per-request overrides.

use serde::{Deserialize, Serialize};

/// Which seed store the plausible-deniability test should query.
///
/// Scan and index are **decision-equivalent**: for the same RNG seed they
/// accept and reject exactly the same candidates (the index only skips records
/// whose generation probability is provably zero), so the policy is purely a
/// performance choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SeedIndex {
    /// Always scan the full seed dataset (the baseline behaviour).
    Scan,
    /// Always query the bucketized inverted index (train-time build required).
    Inverted,
    /// Always query the partition-aware store of likelihood-equivalence
    /// classes (train-time build required).  Tests for models whose
    /// likelihood guarantee the store's keying does not cover degrade to the
    /// store's per-record class walk.
    Partition,
    /// Build the indexes at train time and use them whenever the seed dataset
    /// is large enough (`PipelineConfig::auto_index_min_seeds`, default
    /// [`SeedIndex::AUTO_MIN_SEEDS`]) for the index machinery to beat a
    /// cache-friendly linear sweep — preferring the partition store when its
    /// keying covers the request's model, the inverted index otherwise.
    #[default]
    Auto,
}

impl SeedIndex {
    /// Default seed-dataset size above which [`SeedIndex::Auto`] prefers an
    /// index over the scan (the `PipelineConfig::auto_index_min_seeds`
    /// default).  Below this, the linear scan's sequential sweep is typically
    /// faster than posting-list intersection per candidate.
    pub const AUTO_MIN_SEEDS: usize = 512;
}

impl std::fmt::Display for SeedIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SeedIndex::Scan => write!(f, "scan"),
            SeedIndex::Inverted => write!(f, "inverted"),
            SeedIndex::Partition => write!(f, "partition"),
            SeedIndex::Auto => write!(f, "auto"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_auto_and_display_is_lowercase() {
        assert_eq!(SeedIndex::default(), SeedIndex::Auto);
        assert_eq!(SeedIndex::Scan.to_string(), "scan");
        assert_eq!(SeedIndex::Inverted.to_string(), "inverted");
        assert_eq!(SeedIndex::Partition.to_string(), "partition");
        assert_eq!(SeedIndex::Auto.to_string(), "auto");
    }
}
