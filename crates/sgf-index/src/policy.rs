//! The seed-store selection policy carried by pipeline configurations and
//! per-request overrides.

use serde::{Deserialize, Serialize};

/// Which seed store the plausible-deniability test should query.
///
/// Scan and index are **decision-equivalent**: for the same RNG seed they
/// accept and reject exactly the same candidates (the index only skips records
/// whose generation probability is provably zero), so the policy is purely a
/// performance choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SeedIndex {
    /// Always scan the full seed dataset (the baseline behaviour).
    Scan,
    /// Always query the bucketized inverted index (train-time build required).
    Inverted,
    /// Build the index at train time and use it whenever the seed dataset is
    /// large enough ([`SeedIndex::AUTO_MIN_SEEDS`]) for the posting-list
    /// machinery to beat a cache-friendly linear sweep.
    #[default]
    Auto,
}

impl SeedIndex {
    /// Seed-dataset size above which [`SeedIndex::Auto`] prefers the inverted
    /// index.  Below this, the linear scan's sequential sweep is typically
    /// faster than posting-list intersection per candidate.
    pub const AUTO_MIN_SEEDS: usize = 512;
}

impl std::fmt::Display for SeedIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SeedIndex::Scan => write!(f, "scan"),
            SeedIndex::Inverted => write!(f, "inverted"),
            SeedIndex::Auto => write!(f, "auto"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_auto_and_display_is_lowercase() {
        assert_eq!(SeedIndex::default(), SeedIndex::Auto);
        assert_eq!(SeedIndex::Scan.to_string(), "scan");
        assert_eq!(SeedIndex::Inverted.to_string(), "inverted");
        assert_eq!(SeedIndex::Auto.to_string(), "auto");
    }
}
