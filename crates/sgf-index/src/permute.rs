//! Seedable pseudorandom permutations with O(1) random access.
//!
//! The early-termination knob `max_check_plausible` of the privacy test
//! (Section 5) examines a *random subset* of the seed dataset so the cap does
//! not bias which records get counted.  The naive implementation shuffles an
//! index vector per candidate — an O(n) allocation on the hottest path of the
//! generator.  This module replaces it with a [Feistel-network] permutation
//! over `[0, n)`: both the *position* of an index inside the permutation and
//! the index *at* a given position are computable in O(1), so
//!
//! * a linear scan can enumerate the first `cap` positions lazily, and
//! * an indexed store can test membership of a posting-list survivor in the
//!   examined subset without ever materialising the permutation —
//!
//! and, crucially, both visit **the same subset** for the same seed, which is
//! what keeps scan and index byte-identical in their accept/reject decisions.
//!
//! [Feistel-network]: https://en.wikipedia.org/wiki/Feistel_cipher

/// Number of Feistel rounds.  Four rounds of a keyed mixing function are
/// enough for statistical (non-cryptographic) de-biasing of the visit order.
const ROUNDS: usize = 4;

/// A keyed pseudorandom permutation of `[0, n)` built from a balanced Feistel
/// network over the smallest even-bit-width domain covering `n`, narrowed to
/// `[0, n)` by cycle-walking.
///
/// Both directions are O(1) amortized: the Feistel domain is at most `4n`, so
/// cycle-walking takes fewer than 4 extra steps in expectation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexPermutation {
    n: u64,
    half_bits: u32,
    half_mask: u64,
    keys: [u64; ROUNDS],
}

/// SplitMix64 step — the standard stateless seed expander.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl IndexPermutation {
    /// A permutation of `[0, n)` keyed by `seed`.  Different seeds give
    /// (statistically) unrelated permutations; the same seed always gives the
    /// same permutation.
    pub fn new(n: usize, seed: u64) -> Self {
        let n = n as u64;
        // Smallest *even* bit width whose domain covers n, so the Feistel
        // halves are balanced.  Domain size is at most 4n.
        let bits = 64 - n.saturating_sub(1).leading_zeros();
        let half_bits = bits.div_ceil(2).max(1);
        let mut state = seed;
        let mut keys = [0u64; ROUNDS];
        for key in &mut keys {
            *key = splitmix64(&mut state);
        }
        IndexPermutation {
            n,
            half_bits,
            half_mask: (1u64 << half_bits) - 1,
            keys,
        }
    }

    /// Number of elements the permutation acts on.
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// Whether the permutation is over the empty domain.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Keyed round function, masked to one Feistel half.
    fn round(&self, r: u64, key: u64) -> u64 {
        let mut z = r ^ key;
        z = (z ^ (z >> 16)).wrapping_mul(0x45d9_f3b5_3c4b_a1a9);
        z ^= z >> 15;
        z & self.half_mask
    }

    /// One pass of the Feistel network over the full `2 * half_bits` domain.
    fn encrypt_once(&self, x: u64) -> u64 {
        let mut l = (x >> self.half_bits) & self.half_mask;
        let mut r = x & self.half_mask;
        for &key in &self.keys {
            let next = l ^ self.round(r, key);
            l = r;
            r = next;
        }
        (l << self.half_bits) | r
    }

    /// Inverse of [`encrypt_once`](Self::encrypt_once).
    fn decrypt_once(&self, x: u64) -> u64 {
        let mut l = (x >> self.half_bits) & self.half_mask;
        let mut r = x & self.half_mask;
        for &key in self.keys.iter().rev() {
            let prev = r ^ self.round(l, key);
            r = l;
            l = prev;
        }
        (l << self.half_bits) | r
    }

    /// Position of `index` inside the permutation (`σ(index)`), in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `index >= n`.
    pub fn position(&self, index: usize) -> usize {
        let index = index as u64;
        assert!(index < self.n, "index {index} out of range 0..{}", self.n);
        // Cycle-walking: the Feistel network permutes the power-of-two domain;
        // repeatedly re-encrypting values that land outside [0, n) restricts
        // it to a permutation of [0, n).  The walk terminates because the
        // orbit through `index` re-enters [0, n) (it contains `index` itself).
        let mut x = self.encrypt_once(index);
        while x >= self.n {
            x = self.encrypt_once(x);
        }
        x as usize
    }

    /// The index at position `rank` of the permutation (`σ⁻¹(rank)`).
    ///
    /// # Panics
    /// Panics if `rank >= n`.
    pub fn at_rank(&self, rank: usize) -> usize {
        let rank = rank as u64;
        assert!(rank < self.n, "rank {rank} out of range 0..{}", self.n);
        let mut x = self.decrypt_once(rank);
        while x >= self.n {
            x = self.decrypt_once(x);
        }
        x as usize
    }
}

/// A pseudorandom `cap`-element subset of `[0, n)`: the first `cap` positions
/// of an [`IndexPermutation`].
///
/// Supports O(1) membership tests ([`contains`](Self::contains)) and lazy
/// enumeration ([`iter`](Self::iter)) — the two access patterns of the
/// linear-scan and inverted-index seed stores.
#[derive(Debug, Clone, Copy)]
pub struct RandomSubset {
    perm: IndexPermutation,
    cap: usize,
}

impl RandomSubset {
    /// The subset holding the `cap` indices ranked first by the permutation of
    /// `[0, n)` keyed with `seed` (`cap` is clamped to `n`).
    pub fn new(n: usize, cap: usize, seed: u64) -> Self {
        RandomSubset {
            perm: IndexPermutation::new(n, seed),
            cap: cap.min(n),
        }
    }

    /// Number of indices in the subset.
    pub fn len(&self) -> usize {
        self.cap
    }

    /// Whether the subset is empty.
    pub fn is_empty(&self) -> bool {
        self.cap == 0
    }

    /// Whether `index` belongs to the subset.
    pub fn contains(&self, index: usize) -> bool {
        index < self.perm.len() && self.perm.position(index) < self.cap
    }

    /// Enumerate the subset in permutation-rank order (the "visit order" of
    /// the linear scan).
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.cap).map(move |rank| self.perm.at_rank(rank))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_a_bijection() {
        for &n in &[1usize, 2, 3, 7, 64, 100, 257, 1000] {
            for seed in 0..4u64 {
                let perm = IndexPermutation::new(n, seed);
                let mut seen = vec![false; n];
                for i in 0..n {
                    let p = perm.position(i);
                    assert!(p < n, "position out of range");
                    assert!(!seen[p], "position {p} hit twice (n={n} seed={seed})");
                    seen[p] = true;
                    assert_eq!(perm.at_rank(p), i, "at_rank must invert position");
                }
            }
        }
    }

    #[test]
    fn different_seeds_give_different_orders() {
        let n = 128;
        let a: Vec<usize> = (0..n)
            .map(|r| IndexPermutation::new(n, 1).at_rank(r))
            .collect();
        let b: Vec<usize> = (0..n)
            .map(|r| IndexPermutation::new(n, 2).at_rank(r))
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn permutation_is_not_identity_like() {
        // The visit order must genuinely mix: no more than a small fraction of
        // fixed points on a moderately large domain.
        let n = 512;
        let perm = IndexPermutation::new(n, 99);
        let fixed = (0..n).filter(|&i| perm.position(i) == i).count();
        assert!(fixed < n / 16, "{fixed} fixed points out of {n}");
    }

    #[test]
    fn subset_membership_matches_enumeration() {
        for &(n, cap) in &[(10usize, 3usize), (100, 40), (57, 57), (64, 0), (5, 9)] {
            let sub = RandomSubset::new(n, cap, 7);
            assert_eq!(sub.len(), cap.min(n));
            let listed: Vec<usize> = sub.iter().collect();
            assert_eq!(listed.len(), sub.len());
            let mut sorted = listed.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), listed.len(), "subset must not repeat");
            for i in 0..n {
                assert_eq!(
                    sub.contains(i),
                    listed.contains(&i),
                    "n={n} cap={cap} i={i}"
                );
            }
        }
    }

    #[test]
    fn subset_is_roughly_uniform() {
        // Each index should appear in a cap/n-sized subset with frequency
        // close to cap/n across seeds.
        let n = 50;
        let cap = 10;
        let trials = 400;
        let mut hits = vec![0usize; n];
        for seed in 0..trials {
            let sub = RandomSubset::new(n, cap, seed as u64);
            for i in sub.iter() {
                hits[i] += 1;
            }
        }
        let expected = trials * cap / n;
        for (i, &h) in hits.iter().enumerate() {
            assert!(
                h > expected / 3 && h < expected * 3,
                "index {i} appeared {h} times, expected about {expected}"
            );
        }
    }
}
