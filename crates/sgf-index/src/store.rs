//! The [`SeedStore`] abstraction: given a candidate synthetic record, produce
//! a *sound superset* of the seed records that can plausibly have generated
//! it, so the γ-likelihood partition test only runs on the survivors.

use sgf_data::{Dataset, Record};
use std::ops::Range;

use crate::inverted::PostingIntersection;
use crate::partition::{ClassCandidates, ClassMatchLookup, LikelihoodClasses};

/// A queryable store over the seed dataset `D_S`.
///
/// The privacy tests of Section 2 count, for a candidate `y`, the seed records
/// in the same likelihood partition as the sampled seed.  A store narrows that
/// count to the records that can possibly qualify: `plausible_candidates`
/// must return a **superset** of every record `d` with `Pr{y = M(d)} > 0`,
/// given that the model guarantees `p > 0` only when `d` agrees with `y` on
/// `match_attributes` (see `GenerativeModel::exact_match_attributes` in
/// `sgf-model`).  Records it omits are guaranteed non-plausible, so filtering
/// them out never changes a test decision — the exact partition-index check
/// still runs on every returned index.
///
/// Implementations must be cheap to query per candidate: the store is hit once
/// for every proposed synthetic record.
pub trait SeedStore: Send + Sync + std::fmt::Debug {
    /// Number of seed records the store indexes.  Must equal the length of the
    /// seed dataset the privacy test scans.
    fn len(&self) -> usize;

    /// A short stable identifier of the store implementation (`"scan"`,
    /// `"inverted"`, `"partition"`), used in provenance blocks and trace
    /// labels.  Purely observational — never branch mechanism decisions on
    /// it (the stores are decision-equivalent by contract).
    fn kind(&self) -> &'static str;

    /// Whether the store indexes zero records.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Indices of every seed record that can plausibly have generated
    /// `candidate`, possibly with false positives, never with false negatives.
    ///
    /// `match_attributes` lists attribute indices on which a record must agree
    /// with the candidate to have non-zero generation probability; `None`
    /// means no such guarantee exists and the store must return all records.
    fn plausible_candidates<'s>(
        &'s self,
        candidate: &Record,
        match_attributes: Option<&[usize]>,
    ) -> CandidateIter<'s>;

    /// Likelihood-equivalence classes for `candidate`, if the store groups
    /// seeds such that every member of a class has the **same** generation
    /// probability for every candidate (see
    /// [`PartitionIndexStore`](crate::PartitionIndexStore)).
    ///
    /// `likelihood_attributes` is the model's guarantee
    /// (`GenerativeModel::likelihood_attributes`): seeds agreeing on those
    /// attributes have identical probabilities.  A store must return `None`
    /// unless its class keying is covered by that guarantee; callers then
    /// fall back to the per-record [`plausible_candidates`] walk.
    /// `match_attributes` is the exact-match guarantee used to prune classes
    /// that provably cannot contain plausible seeds.
    ///
    /// The default (and the behaviour of the scan and inverted stores) is
    /// `None`: no class structure.
    ///
    /// [`plausible_candidates`]: SeedStore::plausible_candidates
    fn likelihood_classes<'s>(
        &'s self,
        _candidate: &Record,
        _likelihood_attributes: Option<&[usize]>,
        _match_attributes: Option<&[usize]>,
    ) -> Option<LikelihoodClasses<'s>> {
        None
    }

    /// A shared row of per-class γ-partition match booleans for `candidate`,
    /// when the store holds a [`ClassMatchCache`](crate::ClassMatchCache)
    /// and can prove the row is
    /// request-independent (the model's likelihood set is contained in its
    /// exact-match set — see
    /// [`ClassMatchCache`](crate::ClassMatchCache)).  On a cache miss the
    /// store populates the row by calling `evaluate` once per class
    /// representative; `evaluate` must be a pure function of the
    /// representative index (no RNG, no shared state).  Decisions derived
    /// from the row are bit-identical to evaluating per request.
    ///
    /// The default (scan, inverted, and cache-less partition stores) is
    /// `None`: no cacheable class structure — callers evaluate inline.
    fn class_match_row(
        &self,
        _candidate: &Record,
        _likelihood_attributes: Option<&[usize]>,
        _match_attributes: Option<&[usize]>,
        _evaluate: &mut dyn FnMut(usize) -> bool,
    ) -> Option<ClassMatchLookup> {
        None
    }
}

/// Validate the delete-index list of an incremental store update: strictly
/// ascending (sorted, duplicate-free) and every index inside `0..len`.
/// Shared by every `apply_delta` implementation so they reject malformed
/// deltas identically.
pub(crate) fn validate_delete_indices(
    deletes: &[usize],
    len: usize,
) -> Result<(), sgf_data::DataError> {
    if let Some(&bad) = deletes.iter().find(|&&d| d >= len) {
        return Err(sgf_data::DataError::InvalidParameter(format!(
            "delta deletes record {bad} but the store indexes {len} records"
        )));
    }
    if deletes.windows(2).any(|w| w[0] >= w[1]) {
        return Err(sgf_data::DataError::InvalidParameter(
            "delta delete indices must be strictly ascending".into(),
        ));
    }
    Ok(())
}

/// Iterator over candidate seed indices returned by a [`SeedStore`].
///
/// A concrete enum (rather than `Box<dyn Iterator>`) keeps the per-candidate
/// hot path allocation-free and lets callers special-case the unfiltered scan.
#[derive(Debug)]
pub enum CandidateIter<'a> {
    /// Every record index, in ascending order (no filtering happened).
    All(Range<usize>),
    /// The intersection of bucketized posting lists, in ascending order.
    Filtered(PostingIntersection<'a>),
    /// Members of the equivalence classes surviving exact-match pruning,
    /// ascending within each class (the partition store's per-record
    /// fallback).
    Classes(ClassCandidates<'a>),
}

impl CandidateIter<'_> {
    /// Whether the store actually narrowed the candidate set (false for the
    /// full scan, true when posting lists were intersected or equivalence
    /// classes pruned).
    pub fn is_filtered(&self) -> bool {
        !matches!(self, CandidateIter::All(_))
    }
}

impl Iterator for CandidateIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            CandidateIter::All(range) => range.next(),
            CandidateIter::Filtered(inter) => inter.next(),
            CandidateIter::Classes(classes) => classes.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            CandidateIter::All(range) => range.size_hint(),
            CandidateIter::Filtered(inter) => inter.size_hint(),
            CandidateIter::Classes(_) => (0, None),
        }
    }
}

/// The baseline store: no index, every record is a candidate for every
/// query — exactly the behaviour of the original full-scan privacy test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinearScanStore {
    len: usize,
}

impl LinearScanStore {
    /// A scan store over the given seed dataset.
    pub fn new(seeds: &Dataset) -> Self {
        LinearScanStore { len: seeds.len() }
    }

    /// A scan store over `len` records (when no dataset handle is at hand).
    pub fn with_len(len: usize) -> Self {
        LinearScanStore { len }
    }
}

impl SeedStore for LinearScanStore {
    fn len(&self) -> usize {
        self.len
    }

    fn kind(&self) -> &'static str {
        "scan"
    }

    fn plausible_candidates<'s>(
        &'s self,
        _candidate: &Record,
        _match_attributes: Option<&[usize]>,
    ) -> CandidateIter<'s> {
        CandidateIter::All(0..self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgf_data::{Attribute, Schema};
    use std::sync::Arc;

    #[test]
    fn linear_scan_returns_every_index() {
        let schema = Arc::new(Schema::new(vec![Attribute::categorical_anon("A", 3)]).unwrap());
        let records = (0..5u16).map(|v| Record::new(vec![v % 3])).collect();
        let data = Dataset::from_records_unchecked(schema, records);
        let store = LinearScanStore::new(&data);
        assert_eq!(store.len(), 5);
        let all: Vec<usize> = store
            .plausible_candidates(&Record::new(vec![0]), Some(&[0]))
            .collect();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
        assert!(!store
            .plausible_candidates(&Record::new(vec![0]), None)
            .is_filtered());
    }
}
