//! The bucketized inverted-index seed store.
//!
//! Build time (once per trained session): bucketize every attribute of every
//! seed record with the same `bkt()` the structure learner uses
//! ([`sgf_data::Bucketizer`]) and record, per `(attribute, bucket)` pair, the
//! ascending posting list of record indices.
//!
//! Query time (once per proposed candidate): for a model that only generates
//! `y` from seeds agreeing with it on a known attribute set (the kept
//! attributes of the seed-based synthesizer), pick the highest-weight such
//! attributes — ordered by the dependency-graph weights learned in
//! `sgf-model` — and intersect their posting lists.  Every truly plausible
//! seed agrees with `y` on each kept attribute, hence on each kept *bucket*,
//! hence appears in every chosen posting list; the intersection is therefore a
//! sound superset and the exact γ-partition check still runs on the survivors.

use crate::store::{CandidateIter, SeedStore};
use sgf_data::{AttributeBuckets, Bucketizer, DataError, Dataset, Record};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Upper bound on posting lists intersected per query (diminishing returns and
/// rising constant costs beyond a handful of lists).
pub const MAX_INTERSECT_LISTS: usize = 4;

/// Process-wide count of [`InvertedIndexStore::build`] calls — a regression
/// guard: sessions (and their clones) must share one index per train, so the
/// counter lets tests assert that no path silently rebuilds it.
static BUILD_COUNT: AtomicUsize = AtomicUsize::new(0);

/// Per-attribute slice of the index: the bucket map plus one ascending posting
/// list per bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
struct AttributeIndex {
    buckets: AttributeBuckets,
    postings: Vec<Vec<u32>>,
}

/// A bucketized inverted index over a seed dataset (see the module docs).
/// Equality compares the indexed structure — length, per-attribute posting
/// lists, priority order, and list cap — so a delta-applied store can be
/// checked against a from-scratch build.
#[derive(Debug, Clone, PartialEq)]
pub struct InvertedIndexStore {
    len: usize,
    attributes: Vec<AttributeIndex>,
    /// Attribute indices in descending weight order (ties broken by index).
    priority: Vec<usize>,
    /// How many posting lists to intersect per query.
    max_lists: usize,
}

impl InvertedIndexStore {
    /// Build the index over `seeds`.
    ///
    /// * `bucketizer` — the per-attribute discretization (`bkt()`), shared
    ///   with structure learning; coarse buckets trade memory for selectivity.
    /// * `weights` — one weight per attribute (e.g. the dependency-graph
    ///   weights of the learned structure); higher-weight attributes are
    ///   preferred when picking which posting lists to intersect.
    /// * `max_lists` — cap on posting lists intersected per query, clamped to
    ///   [`MAX_INTERSECT_LISTS`]; 0 is rejected.
    pub fn build(
        seeds: &Dataset,
        bucketizer: &Bucketizer,
        weights: &[f64],
        max_lists: usize,
    ) -> Result<Self, DataError> {
        let start = std::time::Instant::now();
        let schema = seeds.schema();
        let m = schema.len();
        if weights.len() != m {
            return Err(DataError::InvalidParameter(format!(
                "got {} attribute weights for a schema with {} attributes",
                weights.len(),
                m
            )));
        }
        if bucketizer.per_attribute().len() != m {
            return Err(DataError::InvalidParameter(format!(
                "bucketizer covers {} attributes but the schema has {}",
                bucketizer.per_attribute().len(),
                m
            )));
        }
        if let Some((attr, &weight)) = weights.iter().enumerate().find(|(_, w)| !w.is_finite()) {
            return Err(DataError::InvalidParameter(format!(
                "attribute weight {attr} is {weight}; weights must be finite"
            )));
        }
        if max_lists == 0 {
            return Err(DataError::InvalidParameter(
                "max_lists must be at least 1".into(),
            ));
        }
        if seeds.len() > u32::MAX as usize {
            return Err(DataError::InvalidParameter(
                "inverted index supports at most u32::MAX seed records".into(),
            ));
        }
        let mut attributes = Vec::with_capacity(m);
        for (attr, buckets) in bucketizer.per_attribute().iter().enumerate() {
            if buckets.domain_size() != schema.cardinality(attr) {
                return Err(DataError::InvalidParameter(format!(
                    "bucketization for attribute `{}` covers {} values but its cardinality is {}",
                    schema.attribute(attr).name(),
                    buckets.domain_size(),
                    schema.cardinality(attr)
                )));
            }
            attributes.push(AttributeIndex {
                buckets: buckets.clone(),
                postings: vec![Vec::new(); buckets.bucket_count()],
            });
        }
        for (idx, record) in seeds.records().iter().enumerate() {
            for (attr, index) in attributes.iter_mut().enumerate() {
                let bucket = index.buckets.bucket_of(record.get(attr));
                index.postings[bucket as usize].push(idx as u32);
            }
        }
        // Descending weight, ties broken by ascending attribute index so the
        // selection is deterministic.  `total_cmp` keeps the comparator a
        // total order even for the -0.0/+0.0 corner (NaN is rejected above):
        // a `partial_cmp(..).unwrap_or(Equal)` comparator is non-transitive
        // in the presence of NaN, which `sort_by` is allowed to punish with
        // arbitrary (even non-terminating) behaviour.
        let mut priority: Vec<usize> = (0..m).collect();
        priority.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]).then(a.cmp(&b)));
        BUILD_COUNT.fetch_add(1, Ordering::Relaxed);
        let store = InvertedIndexStore {
            len: seeds.len(),
            attributes,
            priority,
            max_lists: max_lists.min(MAX_INTERSECT_LISTS),
        };
        sgf_metrics::counter("index.inverted.builds").incr();
        sgf_metrics::timer("index.inverted.build").observe(start.elapsed());
        sgf_metrics::summary("index.inverted.posting_bytes").observe(store.posting_bytes() as u64);
        sgf_metrics::trace().record(
            "index.inverted.build",
            &[("store", "inverted")],
            &[
                ("records", store.len as u64),
                ("posting_bytes", store.posting_bytes() as u64),
            ],
            start.elapsed(),
        );
        Ok(store)
    }

    /// Apply a seed-data delta: `deletes` are strictly-ascending indices into
    /// the *current* seed dataset, `inserts` are records appended after the
    /// survivors (the canonical final-dataset order of
    /// `sgf_data::DatasetDelta::apply`), and `weights` are the attribute
    /// weights of the *updated* model (the priority order is recomputed from
    /// them).  Returns a new store equal to a from-scratch
    /// [`build`](InvertedIndexStore::build) on that final dataset with those
    /// weights — without counting as a build (see
    /// [`build_count`](InvertedIndexStore::build_count)) and in
    /// O(index + |Δ|) instead of a full dataset pass per bucket.
    pub fn apply_delta(
        &self,
        deletes: &[usize],
        inserts: &[Record],
        weights: &[f64],
    ) -> Result<Self, DataError> {
        let start = std::time::Instant::now();
        crate::store::validate_delete_indices(deletes, self.len)?;
        let m = self.attributes.len();
        if weights.len() != m {
            return Err(DataError::InvalidParameter(format!(
                "got {} attribute weights for an index over {} attributes",
                weights.len(),
                m
            )));
        }
        if let Some((attr, &weight)) = weights.iter().enumerate().find(|(_, w)| !w.is_finite()) {
            return Err(DataError::InvalidParameter(format!(
                "attribute weight {attr} is {weight}; weights must be finite"
            )));
        }
        let survivors = self.len - deletes.len();
        if survivors + inserts.len() > u32::MAX as usize {
            return Err(DataError::InvalidParameter(
                "inverted index supports at most u32::MAX seed records".into(),
            ));
        }
        for record in inserts {
            if record.len() != m {
                return Err(DataError::InvalidParameter(format!(
                    "inserted record has {} attributes but the index covers {m}",
                    record.len()
                )));
            }
            for (attr, index) in self.attributes.iter().enumerate() {
                if (record.get(attr) as usize) >= index.buckets.domain_size() {
                    return Err(DataError::InvalidParameter(format!(
                        "inserted record value {} is outside the domain of attribute {attr}",
                        record.get(attr)
                    )));
                }
            }
        }
        let mut attributes = self.attributes.clone();
        for index in attributes.iter_mut() {
            for posting in index.postings.iter_mut() {
                // Drop deleted indices and shift each survivor down by the
                // number of deleted indices below it; both lookups are binary
                // searches on the ascending delete list, so the pass costs
                // O(|posting| log |Δ|) and posting order is preserved.
                posting.retain_mut(|idx| {
                    if deletes.binary_search(&(*idx as usize)).is_ok() {
                        return false;
                    }
                    let below = deletes.partition_point(|&d| d < *idx as usize);
                    *idx -= below as u32;
                    true
                });
            }
        }
        for (t, record) in inserts.iter().enumerate() {
            let idx = (survivors + t) as u32;
            for (attr, index) in attributes.iter_mut().enumerate() {
                let bucket = index.buckets.bucket_of(record.get(attr));
                index.postings[bucket as usize].push(idx);
            }
        }
        // Same deterministic comparator as `build` (see the comment there).
        let mut priority: Vec<usize> = (0..m).collect();
        priority.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]).then(a.cmp(&b)));
        let store = InvertedIndexStore {
            len: survivors + inserts.len(),
            attributes,
            priority,
            max_lists: self.max_lists,
        };
        sgf_metrics::counter("index.inverted.delta_applies").incr();
        sgf_metrics::timer("index.inverted.apply_delta").observe(start.elapsed());
        Ok(store)
    }

    /// Total number of successful [`build`](InvertedIndexStore::build) calls
    /// in this process (across all threads — tests measuring a delta should
    /// run isolated from other index-building tests).
    pub fn build_count() -> usize {
        BUILD_COUNT.load(Ordering::Relaxed)
    }

    /// Approximate heap footprint of the posting lists, in bytes.
    pub fn posting_bytes(&self) -> usize {
        self.attributes
            .iter()
            .flat_map(|a| a.postings.iter())
            .map(|p| p.len() * std::mem::size_of::<u32>())
            .sum()
    }

    /// The posting list of `(attribute, bucket-of(value))`, or `None` when the
    /// value lies outside the attribute's domain.
    fn posting(&self, attr: usize, value: u16) -> Option<&[u32]> {
        let index = &self.attributes[attr];
        if (value as usize) >= index.buckets.domain_size() {
            return None;
        }
        Some(&index.postings[index.buckets.bucket_of(value) as usize])
    }
}

impl SeedStore for InvertedIndexStore {
    fn len(&self) -> usize {
        self.len
    }

    fn kind(&self) -> &'static str {
        "inverted"
    }

    fn plausible_candidates<'s>(
        &'s self,
        candidate: &Record,
        match_attributes: Option<&[usize]>,
    ) -> CandidateIter<'s> {
        let Some(matched) = match_attributes else {
            // The model gives no agreement guarantee: every record may be a
            // plausible seed (e.g. the marginal baseline).
            return CandidateIter::All(0..self.len);
        };
        // Walk attributes in descending dependency weight, keeping the ones
        // the model requires agreement on, up to max_lists posting lists.
        let mut lists: [&[u32]; MAX_INTERSECT_LISTS] = [&[]; MAX_INTERSECT_LISTS];
        let mut chosen = 0usize;
        for &attr in &self.priority {
            if chosen >= self.max_lists {
                break;
            }
            if !matched.contains(&attr) {
                continue;
            }
            match self.posting(attr, candidate.get(attr)) {
                // A candidate value outside the attribute domain, or an empty
                // bucket, matches no seed record: the empty result is sound.
                None | Some([]) => return CandidateIter::Filtered(PostingIntersection::empty()),
                Some(list) => {
                    lists[chosen] = list;
                    chosen += 1;
                }
            }
        }
        if chosen == 0 {
            // No usable agreement attribute (e.g. the model matches on an
            // empty set): fall back to the unfiltered scan.
            return CandidateIter::All(0..self.len);
        }
        CandidateIter::Filtered(PostingIntersection::new(lists, chosen))
    }
}

/// Streaming intersection of up to [`MAX_INTERSECT_LISTS`] ascending posting
/// lists: iterate the shortest list and gallop the cursors of the others.
/// Yields record indices in ascending order without allocating.
#[derive(Debug)]
pub struct PostingIntersection<'a> {
    /// The shortest chosen list — the iteration driver.
    lead: &'a [u32],
    /// Position of the next lead element to consider.
    lead_pos: usize,
    /// The other lists, each with a monotone cursor.
    others: [(&'a [u32], usize); MAX_INTERSECT_LISTS],
    other_count: usize,
}

impl<'a> PostingIntersection<'a> {
    /// Intersection of the first `count` lists of `lists`.
    fn new(mut lists: [&'a [u32]; MAX_INTERSECT_LISTS], count: usize) -> Self {
        debug_assert!((1..=MAX_INTERSECT_LISTS).contains(&count));
        // Drive iteration from the shortest list.
        let shortest = (0..count)
            .min_by_key(|&i| lists[i].len())
            .expect("count >= 1");
        lists.swap(0, shortest);
        let mut others = [(&[] as &[u32], 0usize); MAX_INTERSECT_LISTS];
        for i in 1..count {
            others[i - 1] = (lists[i], 0);
        }
        PostingIntersection {
            lead: lists[0],
            lead_pos: 0,
            others,
            other_count: count - 1,
        }
    }

    /// The empty intersection.
    fn empty() -> Self {
        PostingIntersection {
            lead: &[],
            lead_pos: 0,
            others: [(&[], 0); MAX_INTERSECT_LISTS],
            other_count: 0,
        }
    }
}

/// Advance `cursor` to the first position in `list` with `list[cursor] >=
/// target` by galloping then binary search; returns whether the value at the
/// cursor equals `target`.
fn gallop_to(list: &[u32], cursor: &mut usize, target: u32) -> bool {
    let mut step = 1usize;
    let mut hi = *cursor;
    // Exponential probe from the cursor.
    while hi < list.len() && list[hi] < target {
        *cursor = hi + 1;
        hi += step;
        step <<= 1;
    }
    let hi = hi.min(list.len());
    // Binary search inside the bracketed window [cursor, hi).
    let offset = list[*cursor..hi].partition_point(|&v| v < target);
    *cursor += offset;
    *cursor < list.len() && list[*cursor] == target
}

impl Iterator for PostingIntersection<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        'lead: while self.lead_pos < self.lead.len() {
            let value = self.lead[self.lead_pos];
            self.lead_pos += 1;
            for (list, cursor) in self.others[..self.other_count].iter_mut() {
                if !gallop_to(list, cursor, value) {
                    if *cursor >= list.len() {
                        // One list is exhausted: nothing can intersect anymore.
                        self.lead_pos = self.lead.len();
                        return None;
                    }
                    continue 'lead;
                }
            }
            return Some(value as usize);
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (
            0,
            Some(self.lead.len() - self.lead_pos.min(self.lead.len())),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgf_data::{Attribute, AttributeBuckets, Schema};
    use std::sync::Arc;

    fn dataset() -> Dataset {
        let schema = Arc::new(
            Schema::new(vec![
                Attribute::categorical_anon("A", 4),
                Attribute::categorical_anon("B", 6),
                Attribute::categorical_anon("C", 2),
            ])
            .unwrap(),
        );
        let rows: Vec<Record> = vec![
            Record::new(vec![0, 0, 0]),
            Record::new(vec![0, 1, 1]),
            Record::new(vec![1, 2, 0]),
            Record::new(vec![1, 3, 1]),
            Record::new(vec![2, 4, 0]),
            Record::new(vec![2, 5, 1]),
            Record::new(vec![0, 0, 1]),
            Record::new(vec![3, 2, 0]),
        ];
        Dataset::from_records_unchecked(schema, rows)
    }

    fn store(weights: &[f64]) -> InvertedIndexStore {
        let data = dataset();
        let bkt = Bucketizer::identity(data.schema());
        InvertedIndexStore::build(&data, &bkt, weights, MAX_INTERSECT_LISTS).unwrap()
    }

    /// Brute-force reference: indices agreeing with `y` on all `matched` attrs.
    fn reference(y: &Record, matched: &[usize]) -> Vec<usize> {
        dataset()
            .records()
            .iter()
            .enumerate()
            .filter(|(_, r)| matched.iter().all(|&a| r.get(a) == y.get(a)))
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn intersection_matches_brute_force() {
        let store = store(&[1.0, 2.0, 0.5]);
        for y in dataset().records() {
            for matched in [
                vec![0usize],
                vec![1],
                vec![2],
                vec![0, 1],
                vec![0, 2],
                vec![0, 1, 2],
            ] {
                let got: Vec<usize> = store.plausible_candidates(y, Some(&matched)).collect();
                assert_eq!(got, reference(y, &matched), "y={y:?} matched={matched:?}");
            }
        }
    }

    #[test]
    fn no_guarantee_returns_everything() {
        let store = store(&[1.0, 1.0, 1.0]);
        let y = Record::new(vec![0, 0, 0]);
        let all: Vec<usize> = store.plausible_candidates(&y, None).collect();
        assert_eq!(all.len(), 8);
        let empty_matched: Vec<usize> = store.plausible_candidates(&y, Some(&[])).collect();
        assert_eq!(empty_matched.len(), 8);
    }

    #[test]
    fn out_of_domain_value_yields_empty() {
        let store = store(&[1.0, 1.0, 1.0]);
        let y = Record::new(vec![9, 0, 0]);
        let got: Vec<usize> = store.plausible_candidates(&y, Some(&[0])).collect();
        assert!(got.is_empty());
    }

    #[test]
    fn bucketized_attributes_return_supersets() {
        // Bucket B into pairs {0,1}, {2,3}, {4,5}: the posting list for a
        // bucketized attribute covers every record in the same bucket, a
        // superset of the exact matches.
        let data = dataset();
        let bkt = Bucketizer::identity(data.schema())
            .with_attribute(1, AttributeBuckets::fixed_width(6, 2).unwrap())
            .unwrap();
        let store = InvertedIndexStore::build(&data, &bkt, &[0.0, 5.0, 0.0], 4).unwrap();
        let y = Record::new(vec![0, 0, 0]);
        let got: Vec<usize> = store.plausible_candidates(&y, Some(&[1])).collect();
        // Records with B in {0, 1}: indices 0, 1, 6.
        assert_eq!(got, vec![0, 1, 6]);
        for idx in reference(&y, &[1]) {
            assert!(got.contains(&idx), "exact match {idx} must survive");
        }
    }

    #[test]
    fn priority_order_limits_the_lists_used() {
        // With max_lists = 1 and B weighted highest, only B's list is used.
        let data = dataset();
        let bkt = Bucketizer::identity(data.schema());
        let store = InvertedIndexStore::build(&data, &bkt, &[0.0, 5.0, 1.0], 1).unwrap();
        let y = Record::new(vec![0, 2, 0]);
        let got: Vec<usize> = store.plausible_candidates(&y, Some(&[0, 1, 2])).collect();
        // B == 2: records 2 and 7 (C and A are ignored at max_lists = 1).
        assert_eq!(got, vec![2, 7]);
    }

    #[test]
    fn build_validates_inputs() {
        let data = dataset();
        let bkt = Bucketizer::identity(data.schema());
        assert!(InvertedIndexStore::build(&data, &bkt, &[1.0, 1.0], 4).is_err());
        assert!(InvertedIndexStore::build(&data, &bkt, &[1.0, 1.0, 1.0], 0).is_err());
        // Non-finite weights would make the priority comparator a non-total
        // order (nondeterministic list selection at best): reject at build.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(
                InvertedIndexStore::build(&data, &bkt, &[1.0, bad, 1.0], 4).is_err(),
                "weight {bad} must be rejected"
            );
        }
        let other_schema =
            Arc::new(Schema::new(vec![Attribute::categorical_anon("X", 2)]).unwrap());
        let other_bkt = Bucketizer::identity(&other_schema);
        assert!(InvertedIndexStore::build(&data, &other_bkt, &[1.0, 1.0, 1.0], 4).is_err());
    }

    /// The canonical final dataset of a delta: survivors in order, then
    /// inserts (mirrors `sgf_data::DatasetDelta::apply`).
    fn final_dataset(base: &Dataset, deletes: &[usize], inserts: &[Record]) -> Dataset {
        let mut rows: Vec<Record> = base
            .records()
            .iter()
            .enumerate()
            .filter(|(i, _)| !deletes.contains(i))
            .map(|(_, r)| r.clone())
            .collect();
        rows.extend(inserts.iter().cloned());
        Dataset::from_records_unchecked(base.schema_arc(), rows)
    }

    #[test]
    fn apply_delta_matches_a_fresh_build() {
        let data = dataset();
        let bkt = Bucketizer::identity(data.schema())
            .with_attribute(1, AttributeBuckets::fixed_width(6, 2).unwrap())
            .unwrap();
        let store = InvertedIndexStore::build(&data, &bkt, &[1.0, 2.0, 0.5], 2).unwrap();
        let cases: Vec<(Vec<usize>, Vec<Record>, Vec<f64>)> = vec![
            // Mixed delete + insert with a weight change that flips priority.
            (
                vec![0, 3, 7],
                vec![Record::new(vec![3, 5, 1]), Record::new(vec![0, 0, 0])],
                vec![4.0, 1.0, 0.5],
            ),
            // Pure deletes, same weights.
            (vec![1, 2], vec![], vec![1.0, 2.0, 0.5]),
            // Pure inserts.
            (
                vec![],
                vec![Record::new(vec![2, 3, 0])],
                vec![1.0, 2.0, 0.5],
            ),
            // Empty delta.
            (vec![], vec![], vec![1.0, 2.0, 0.5]),
            // Full replacement.
            (
                (0..8).collect(),
                vec![Record::new(vec![1, 1, 1]), Record::new(vec![2, 2, 0])],
                vec![0.0, 0.0, 9.0],
            ),
        ];
        for (deletes, inserts, weights) in cases {
            let builds_before = InvertedIndexStore::build_count();
            let updated = store.apply_delta(&deletes, &inserts, &weights).unwrap();
            assert_eq!(
                InvertedIndexStore::build_count(),
                builds_before,
                "apply_delta must not count as a build"
            );
            let fresh = InvertedIndexStore::build(
                &final_dataset(&data, &deletes, &inserts),
                &bkt,
                &weights,
                2,
            )
            .unwrap();
            assert_eq!(
                updated,
                fresh,
                "delta {deletes:?}/+{} must equal a fresh build",
                inserts.len()
            );
        }
    }

    #[test]
    fn apply_delta_rejects_malformed_input() {
        let store = store(&[1.0, 1.0, 1.0]);
        let w = [1.0, 1.0, 1.0];
        // Out-of-range and unsorted delete indices.
        assert!(store.apply_delta(&[8], &[], &w).is_err());
        assert!(store.apply_delta(&[2, 1], &[], &w).is_err());
        assert!(store.apply_delta(&[1, 1], &[], &w).is_err());
        // Wrong weight arity and non-finite weights.
        assert!(store.apply_delta(&[], &[], &[1.0]).is_err());
        assert!(store.apply_delta(&[], &[], &[1.0, f64::NAN, 1.0]).is_err());
        // Inserted records must fit the schema and domains.
        assert!(store
            .apply_delta(&[], &[Record::new(vec![0, 0])], &w)
            .is_err());
        assert!(store
            .apply_delta(&[], &[Record::new(vec![9, 0, 0])], &w)
            .is_err());
    }

    #[test]
    fn posting_bytes_reflects_the_dataset() {
        let store = store(&[1.0, 1.0, 1.0]);
        // 8 records x 3 attributes x 4 bytes.
        assert_eq!(store.posting_bytes(), 8 * 3 * 4);
    }
}
