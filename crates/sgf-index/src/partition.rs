//! The partition-aware seed store: likelihood-equivalence classes.
//!
//! The inverted index prunes the plausible-deniability test to records that
//! *agree* with the candidate on kept attributes, but it still pays one model
//! evaluation per surviving record.  This store goes one step further using a
//! stronger model guarantee (`GenerativeModel::likelihood_attributes` in
//! `sgf-model`): when the generation probability `p_d(y)` depends on the seed
//! `d` only through its projection onto an attribute set `A`, two seeds with
//! identical projections have identical `p_d(y)` for **every** candidate `y`.
//! Grouping the seed dataset by that projection at build time therefore
//! yields *likelihood-equivalence classes*: the exact γ-partition check runs
//! once per class on a representative, and the class counts toward the
//! plausible-seed tally with its full multiplicity.  Per-candidate test cost
//! scales with the number of **distinct classes**, not with `|D_S|`.
//!
//! Soundness of a class query requires the model's likelihood set `L` to be
//! covered by the build-time key set `A` (`L ⊆ A`): seeds agreeing on `A`
//! then agree on `L`, hence share their generation probability.  When the
//! model offers no such guarantee the store degrades to a per-record
//! [`SeedStore`] query that prunes classes on the exact-match attributes —
//! still a sound superset, just without the multiplicity shortcut.

use crate::store::{CandidateIter, SeedStore};
use sgf_data::{DataError, Dataset, Record};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex, MutexGuard};

/// Cache key: the model's (normalized) likelihood attribute set and the
/// candidate's projection onto it.
type ClassMatchKey = (Vec<usize>, Vec<u16>);

/// Default row cap of a [`ClassMatchCache`]: enough for every distinct
/// likelihood projection of typical sessions, small enough that a
/// high-cardinality candidate stream cannot grow the cache without bound.
pub const DEFAULT_CLASS_CACHE_CAP: usize = 4096;

/// A shared, per-session cache of **seed-independent** class-match rows.
///
/// For a model whose likelihood set `L` is contained in its exact-match set
/// `EM` (both declared), the per-class γ-partition comparison of the privacy
/// test's class fast path is a pure function of the candidate — independent
/// of the sampled seed, of γ, and of all request randomness.  Inside the
/// class loop the seed's own probability is known positive, so the seed
/// agrees with the candidate on `EM ⊇ L`; a class representative whose
/// `L`-projection equals the candidate's therefore shares the seed's exact
/// generation probability (same partition, any γ), while one that differs
/// disagrees with the candidate on an exact-match attribute (probability
/// zero, no partition).  The row of per-class booleans is thus keyed by
/// `(L, candidate's L-projection)` alone and can be computed once and reused
/// by every request of the session.
///
/// Only that deterministic row is ever cached.  Stochastic test outcomes,
/// thresholds, plausible counts, and RNG draws never enter the cache, so the
/// per-request decision/count/RNG streams are bit-identical to the uncached
/// path.  Rows are populated under the map lock, so each distinct key is
/// computed exactly once while resident regardless of thread scheduling.
///
/// The cache is **bounded**: at most `cap` rows are resident.  Admitting a
/// row beyond the cap evicts the oldest-*inserted* resident row (FIFO on
/// insertion order, not recency), so the resident set after any key sequence
/// is a deterministic function of that sequence — an LRU would make residency
/// depend on hit timing across threads.  Evicted keys are recomputed on their
/// next lookup; correctness never depends on residency, only miss counts do.
#[derive(Debug)]
pub struct ClassMatchCache {
    inner: Mutex<CacheInner>,
    cap: usize,
}

#[derive(Debug, Default)]
struct CacheInner {
    rows: BTreeMap<ClassMatchKey, Arc<Vec<bool>>>,
    /// Resident keys, oldest insertion first — the FIFO eviction order.
    order: VecDeque<ClassMatchKey>,
    evictions: u64,
}

impl Default for ClassMatchCache {
    fn default() -> Self {
        ClassMatchCache::new()
    }
}

impl ClassMatchCache {
    /// An empty cache with the [default row cap](DEFAULT_CLASS_CACHE_CAP).
    pub fn new() -> Self {
        ClassMatchCache::with_capacity(DEFAULT_CLASS_CACHE_CAP)
    }

    /// An empty cache holding at most `cap` rows (clamped to at least 1).
    pub fn with_capacity(cap: usize) -> Self {
        ClassMatchCache {
            inner: Mutex::new(CacheInner::default()),
            cap: cap.max(1),
        }
    }

    /// Number of distinct `(likelihood set, projection)` rows currently held.
    pub fn rows(&self) -> usize {
        self.locked().rows.len()
    }

    /// The row cap this cache was created with.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total rows evicted to stay under the cap since the cache was created.
    pub fn evictions(&self) -> u64 {
        self.locked().evictions
    }

    fn locked(&self) -> MutexGuard<'_, CacheInner> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Fetch the row for `key`, computing it with `compute` (under the lock)
    /// on a miss and evicting the oldest-inserted rows past the cap.
    fn fetch(
        &self,
        key: ClassMatchKey,
        compute: impl FnOnce() -> Arc<Vec<bool>>,
    ) -> ClassMatchLookup {
        let mut inner = self.locked();
        if let Some(row) = inner.rows.get(&key) {
            return ClassMatchLookup {
                row: Arc::clone(row),
                hit: true,
            };
        }
        let row = compute();
        inner.rows.insert(key.clone(), Arc::clone(&row));
        inner.order.push_back(key);
        while inner.rows.len() > self.cap {
            let oldest = inner.order.pop_front().expect("order tracks rows");
            inner.rows.remove(&oldest);
            inner.evictions += 1;
            sgf_metrics::counter("index.partition.class_cache_evictions").incr();
        }
        ClassMatchLookup { row, hit: false }
    }
}

/// Result of a class-match cache lookup: a shared row of per-class booleans
/// (`row[class.index]` — is the class representative in the seed's
/// γ-partition?) plus whether the row was served from the cache (`hit`) or
/// computed by this call (`!hit`).
#[derive(Debug, Clone)]
pub struct ClassMatchLookup {
    /// One boolean per store class, indexed by [`LikelihoodClass::index`].
    pub row: Arc<Vec<bool>>,
    /// `true` when the row was already cached; `false` when this lookup
    /// computed (and stored) it.
    pub hit: bool,
}

/// One likelihood-equivalence class: the seed records whose projections onto
/// the store's key attributes are identical.
#[derive(Debug, Clone, PartialEq, Eq)]
struct EquivalenceClass {
    /// The shared projection, in key-attribute (ascending) order.
    projection: Vec<u16>,
    /// Ascending member indices; `members[0]` is the representative.
    members: Vec<u32>,
}

/// A seed store grouping records into likelihood-equivalence classes (see the
/// module docs).
#[derive(Debug, Clone)]
pub struct PartitionIndexStore {
    len: usize,
    /// The key attribute set `A`, ascending and deduplicated.
    attributes: Vec<usize>,
    /// One entry per distinct projection, in first-seen (ascending record
    /// index) order.
    classes: Vec<EquivalenceClass>,
    /// Projection (values in `attributes` order) → index into `classes`.
    /// A BTreeMap (R2, ordered-iteration discipline): the map is only ever
    /// probed by key today, but this store sits on the decision path of the
    /// privacy test, and a BTreeMap keeps every future traversal of it
    /// deterministic by construction.
    by_projection: BTreeMap<Vec<u16>, u32>,
    /// The shared class-match cache, if one was attached with
    /// [`with_class_cache`](PartitionIndexStore::with_class_cache).  Clones
    /// share the same cache (it travels by `Arc`), so every handle of a
    /// session warms — and benefits from — one pool of rows.
    cache: Option<Arc<ClassMatchCache>>,
}

impl PartitionIndexStore {
    /// Group `seeds` into equivalence classes keyed on their projections onto
    /// `attributes` (typically the session's largest likelihood-relevant
    /// attribute set — the kept attributes at the smallest admissible ω).
    ///
    /// The attribute list may arrive in any order and with duplicates; it is
    /// normalized internally.  Every attribute must exist in the seed schema.
    pub fn build(seeds: &Dataset, attributes: &[usize]) -> Result<Self, DataError> {
        let start = std::time::Instant::now();
        let m = seeds.schema().len();
        let mut key: Vec<usize> = attributes.to_vec();
        key.sort_unstable();
        key.dedup();
        if let Some(&bad) = key.iter().find(|&&a| a >= m) {
            return Err(DataError::InvalidParameter(format!(
                "likelihood attribute {bad} is out of range for a schema with {m} attributes"
            )));
        }
        if seeds.len() > u32::MAX as usize {
            return Err(DataError::InvalidParameter(
                "partition index supports at most u32::MAX seed records".into(),
            ));
        }
        let mut classes: Vec<EquivalenceClass> = Vec::new();
        let mut by_projection: BTreeMap<Vec<u16>, u32> = BTreeMap::new();
        for (idx, record) in seeds.records().iter().enumerate() {
            let projection: Vec<u16> = key.iter().map(|&a| record.get(a)).collect();
            match by_projection.get(&projection) {
                Some(&class) => classes[class as usize].members.push(idx as u32),
                None => {
                    by_projection.insert(projection.clone(), classes.len() as u32);
                    classes.push(EquivalenceClass {
                        projection,
                        members: vec![idx as u32],
                    });
                }
            }
        }
        let store = PartitionIndexStore {
            len: seeds.len(),
            attributes: key,
            classes,
            by_projection,
            cache: None,
        };
        sgf_metrics::counter("index.partition.builds").incr();
        sgf_metrics::timer("index.partition.build").observe(start.elapsed());
        sgf_metrics::summary("index.partition.classes").observe(store.class_count() as u64);
        sgf_metrics::summary("index.partition.largest_class").observe(store.largest_class() as u64);
        sgf_metrics::trace().record(
            "index.partition.build",
            &[("store", "partition")],
            &[
                ("records", store.len as u64),
                ("classes", store.class_count() as u64),
                ("largest_class", store.largest_class() as u64),
            ],
            start.elapsed(),
        );
        Ok(store)
    }

    /// Attach a fresh [`ClassMatchCache`] to this store (builder style).
    /// Clones of the store share the cache via `Arc`, so one per-session
    /// store warms a single pool of rows across every request it serves.
    pub fn with_class_cache(mut self) -> Self {
        self.cache = Some(Arc::new(ClassMatchCache::new()));
        self
    }

    /// Like [`with_class_cache`](PartitionIndexStore::with_class_cache) but
    /// with an explicit row cap instead of [`DEFAULT_CLASS_CACHE_CAP`].
    pub fn with_class_cache_capacity(mut self, cap: usize) -> Self {
        self.cache = Some(Arc::new(ClassMatchCache::with_capacity(cap)));
        self
    }

    /// Apply a seed-data delta: `deletes` are strictly-ascending indices into
    /// the *current* seed dataset, `inserts` are records appended after the
    /// survivors (the canonical final-dataset order of
    /// `sgf_data::DatasetDelta::apply`).  Returns a new store equal — classes,
    /// member lists, projection map — to a from-scratch
    /// [`build`](PartitionIndexStore::build) on that final dataset, in
    /// O(|classes| + |Δ|) instead of O(n).
    ///
    /// If a [`ClassMatchCache`] is attached, the new store carries a cache
    /// with every resident row re-derived for the new class list: a row's
    /// boolean for a class is exactly "the class projection agrees with the
    /// key projection on the likelihood attributes" (see the cache docs), a
    /// pure function of the class structure, so warm rows stay warm and stay
    /// correct without touching the model.
    pub fn apply_delta(&self, deletes: &[usize], inserts: &[Record]) -> Result<Self, DataError> {
        let start = std::time::Instant::now();
        crate::store::validate_delete_indices(deletes, self.len)?;
        let survivors = self.len - deletes.len();
        if survivors + inserts.len() > u32::MAX as usize {
            return Err(DataError::InvalidParameter(
                "partition index supports at most u32::MAX seed records".into(),
            ));
        }
        if let Some(&max_attr) = self.attributes.last() {
            if let Some(short) = inserts.iter().find(|r| r.len() <= max_attr) {
                return Err(DataError::InvalidParameter(format!(
                    "inserted record has {} attributes but the key set needs {}",
                    short.len(),
                    max_attr + 1
                )));
            }
        }
        // Remap surviving members (old index minus the number of deleted
        // indices below it) and drop deleted ones; empty classes disappear.
        let mut classes: Vec<EquivalenceClass> = Vec::with_capacity(self.classes.len());
        for class in &self.classes {
            let members: Vec<u32> = class
                .members
                .iter()
                .filter(|&&idx| deletes.binary_search(&(idx as usize)).is_err())
                .map(|&idx| {
                    let below = deletes.partition_point(|&d| d < idx as usize);
                    idx - below as u32
                })
                .collect();
            if !members.is_empty() {
                classes.push(EquivalenceClass {
                    projection: class.projection.clone(),
                    members,
                });
            }
        }
        let mut by_projection: BTreeMap<Vec<u16>, u32> = classes
            .iter()
            .enumerate()
            .map(|(i, c)| (c.projection.clone(), i as u32))
            .collect();
        // Inserts land after the survivors, in delta order.
        for (t, record) in inserts.iter().enumerate() {
            let idx = (survivors + t) as u32;
            let projection: Vec<u16> = self.attributes.iter().map(|&a| record.get(a)).collect();
            match by_projection.get(&projection) {
                Some(&class) => classes[class as usize].members.push(idx),
                None => {
                    by_projection.insert(projection.clone(), classes.len() as u32);
                    classes.push(EquivalenceClass {
                        projection,
                        members: vec![idx],
                    });
                }
            }
        }
        // Canonicalize to the from-scratch class order: a build over the
        // final dataset lists classes by first occurrence, i.e. ascending
        // smallest member index.  Member lists are already ascending (the
        // remap preserves order; inserted indices only grow), so sorting on
        // `members[0]` reproduces that order exactly.
        classes.sort_by_key(|c| c.members[0]);
        for (i, class) in classes.iter().enumerate() {
            *by_projection
                .get_mut(&class.projection)
                .expect("every class is mapped") = i as u32;
        }
        let cache = self.cache.as_ref().map(|old| {
            let old_inner = old.locked();
            let mut inner = CacheInner {
                rows: BTreeMap::new(),
                order: old_inner.order.clone(),
                evictions: old_inner.evictions,
            };
            for (key, _) in old_inner.rows.iter() {
                let (likelihood, key_projection) = key;
                // Admission proved `likelihood ⊆ attributes`, so every
                // position resolves.
                let positions: Vec<usize> = likelihood
                    .iter()
                    .map(|a| self.attributes.binary_search(a).expect("covered key"))
                    .collect();
                let row: Vec<bool> = classes
                    .iter()
                    .map(|class| {
                        positions
                            .iter()
                            .zip(key_projection.iter())
                            .all(|(&pos, &value)| class.projection[pos] == value)
                    })
                    .collect();
                inner.rows.insert(key.clone(), Arc::new(row));
            }
            drop(old_inner);
            Arc::new(ClassMatchCache {
                inner: Mutex::new(inner),
                cap: old.cap,
            })
        });
        let store = PartitionIndexStore {
            len: survivors + inserts.len(),
            attributes: self.attributes.clone(),
            classes,
            by_projection,
            cache,
        };
        sgf_metrics::counter("index.partition.delta_applies").incr();
        sgf_metrics::timer("index.partition.apply_delta").observe(start.elapsed());
        Ok(store)
    }

    /// The attached class-match cache, if any.
    pub fn class_cache(&self) -> Option<&Arc<ClassMatchCache>> {
        self.cache.as_ref()
    }

    /// The key attribute set `A` (ascending, deduplicated).
    pub fn attributes(&self) -> &[usize] {
        &self.attributes
    }

    /// Number of distinct likelihood-equivalence classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Size of the largest equivalence class (0 for an empty store).
    pub fn largest_class(&self) -> usize {
        self.classes
            .iter()
            .map(|c| c.members.len())
            .max()
            .unwrap_or(0)
    }

    /// Approximate heap footprint of the class member lists and projection
    /// keys, in bytes.
    pub fn member_bytes(&self) -> usize {
        self.classes
            .iter()
            .map(|c| {
                c.members.len() * std::mem::size_of::<u32>()
                    + c.projection.len() * std::mem::size_of::<u16>()
            })
            .sum()
    }

    /// Whether the store's classes are sound for a model whose generation
    /// probability is determined by the projection onto `likelihood`:
    /// requires `likelihood ⊆ A` (then agreement on `A` implies agreement on
    /// `likelihood`, hence identical probabilities within a class).
    pub fn covers(&self, likelihood: Option<&[usize]>) -> bool {
        likelihood.is_some_and(|l| l.iter().all(|a| self.attributes.binary_search(a).is_ok()))
    }

    /// The classes that can possibly contain plausible seeds for `candidate`,
    /// pruned on the exact-match attributes that fall inside the key set.
    fn pruned_classes<'s>(
        &'s self,
        candidate: &Record,
        match_attributes: Option<&[usize]>,
    ) -> ClassesState<'s> {
        let matched = match_attributes.unwrap_or(&[]);
        if self.attributes.iter().all(|a| matched.contains(a)) {
            // Every key attribute must agree exactly: at most the class with
            // the candidate's own projection can hold plausible seeds.
            let projection: Vec<u16> = self.attributes.iter().map(|&a| candidate.get(a)).collect();
            let class = self
                .by_projection
                .get(&projection)
                .map(|&c| (c as usize, &self.classes[c as usize]));
            return ClassesState::Single(class);
        }
        // Walk every class, skipping those that provably disagree with the
        // candidate on an exact-match attribute inside the key set.
        let prune: Vec<(usize, u16)> = self
            .attributes
            .iter()
            .enumerate()
            .filter(|(_, a)| matched.contains(a))
            .map(|(pos, &a)| (pos, candidate.get(a)))
            .collect();
        ClassesState::Walk {
            classes: self.classes.iter().enumerate(),
            prune,
        }
    }
}

/// Equality on the *indexed structure* — length, key attributes, classes
/// (projections, member lists, order), and the projection map.  The attached
/// [`ClassMatchCache`] is deliberately ignored: it is a performance artifact
/// whose residency depends on query history, never on what the store indexes.
impl PartialEq for PartitionIndexStore {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len
            && self.attributes == other.attributes
            && self.classes == other.classes
            && self.by_projection == other.by_projection
    }
}

impl SeedStore for PartitionIndexStore {
    fn len(&self) -> usize {
        self.len
    }

    fn kind(&self) -> &'static str {
        "partition"
    }

    fn plausible_candidates<'s>(
        &'s self,
        candidate: &Record,
        match_attributes: Option<&[usize]>,
    ) -> CandidateIter<'s> {
        let Some(matched) = match_attributes else {
            return CandidateIter::All(0..self.len);
        };
        if !self.attributes.iter().any(|a| matched.contains(a)) && !self.attributes.is_empty() {
            // No exact-match attribute intersects the key set: the class
            // structure cannot prune anything, fall back to the full range.
            return CandidateIter::All(0..self.len);
        }
        CandidateIter::Classes(ClassCandidates {
            classes: self.pruned_classes(candidate, Some(matched)),
            current: [].iter(),
        })
    }

    fn likelihood_classes<'s>(
        &'s self,
        candidate: &Record,
        likelihood_attributes: Option<&[usize]>,
        match_attributes: Option<&[usize]>,
    ) -> Option<LikelihoodClasses<'s>> {
        if !self.covers(likelihood_attributes) {
            return None;
        }
        Some(LikelihoodClasses {
            state: self.pruned_classes(candidate, match_attributes),
        })
    }

    fn class_match_row(
        &self,
        candidate: &Record,
        likelihood_attributes: Option<&[usize]>,
        match_attributes: Option<&[usize]>,
        evaluate: &mut dyn FnMut(usize) -> bool,
    ) -> Option<ClassMatchLookup> {
        let cache = self.cache.as_ref()?;
        if !self.covers(likelihood_attributes) {
            // Without coverage there is no class fast path to serve.
            return None;
        }
        let likelihood = likelihood_attributes?;
        let matched = match_attributes?;
        // Soundness gate: the row is request-independent only when every
        // likelihood attribute is also exact-match guaranteed (`L ⊆ EM`, see
        // the [`ClassMatchCache`] docs).  Models without that property fall
        // back to per-request evaluation.
        if !likelihood.iter().all(|a| matched.contains(a)) {
            return None;
        }
        let mut key: Vec<usize> = likelihood.to_vec();
        key.sort_unstable();
        key.dedup();
        let projection: Vec<u16> = key.iter().map(|&a| candidate.get(a)).collect();
        Some(cache.fetch((key, projection), || {
            // Populate eagerly — one evaluation per class representative —
            // under the cache lock, so each distinct key is computed exactly
            // once while resident no matter how requests interleave.  The
            // closure is pure (no RNG, no shared state), so the extra
            // evaluations relative to the lazy walk change nothing
            // observable but time.
            Arc::new(
                self.classes
                    .iter()
                    .map(|class| evaluate(class.members[0] as usize))
                    .collect(),
            )
        }))
    }
}

/// The two ways a class query walks the store.  Items carry the class's
/// position in the store's class list, so cached match rows can be indexed.
#[derive(Debug)]
enum ClassesState<'a> {
    /// Every key attribute is exact-match constrained: the single class with
    /// the candidate's projection (or none).
    Single(Option<(usize, &'a EquivalenceClass)>),
    /// Walk every class, pruning on `(projection position, candidate value)`
    /// pairs.
    Walk {
        classes: std::iter::Enumerate<std::slice::Iter<'a, EquivalenceClass>>,
        prune: Vec<(usize, u16)>,
    },
}

impl<'a> ClassesState<'a> {
    fn next_class(&mut self) -> Option<(usize, &'a EquivalenceClass)> {
        match self {
            ClassesState::Single(class) => class.take(),
            ClassesState::Walk { classes, prune } => classes.find(|(_, class)| {
                prune
                    .iter()
                    .all(|&(pos, value)| class.projection[pos] == value)
            }),
        }
    }
}

/// Iterator over the likelihood-equivalence classes that may contain
/// plausible seeds for a candidate (see
/// [`SeedStore::likelihood_classes`]).  Each item carries a representative
/// record index (evaluate the model once on it) and the full ascending
/// member list (count with multiplicity).
#[derive(Debug)]
pub struct LikelihoodClasses<'a> {
    state: ClassesState<'a>,
}

/// One likelihood-equivalence class yielded by [`LikelihoodClasses`].
#[derive(Debug, Clone, Copy)]
pub struct LikelihoodClass<'a> {
    /// Position of this class in the store's class list; indexes the rows of
    /// the store's [`ClassMatchCache`] (see [`ClassMatchLookup`]).
    pub index: usize,
    /// Index of the class representative in the seed dataset; every member
    /// has the same generation probability as the representative for every
    /// candidate.
    pub representative: usize,
    /// Ascending seed-record indices of all class members (the multiplicity).
    pub members: &'a [u32],
}

impl<'a> Iterator for LikelihoodClasses<'a> {
    type Item = LikelihoodClass<'a>;

    fn next(&mut self) -> Option<LikelihoodClass<'a>> {
        self.state
            .next_class()
            .map(|(index, class)| LikelihoodClass {
                index,
                representative: class.members[0] as usize,
                members: &class.members,
            })
    }
}

/// Member-expanding iterator behind the [`SeedStore::plausible_candidates`]
/// fallback of the partition store: yields the record indices of every class
/// surviving exact-match pruning, ascending within each class.
#[derive(Debug)]
pub struct ClassCandidates<'a> {
    classes: ClassesState<'a>,
    current: std::slice::Iter<'a, u32>,
}

impl Iterator for ClassCandidates<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if let Some(&idx) = self.current.next() {
                return Some(idx as usize);
            }
            self.current = self.classes.next_class()?.1.members.iter();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgf_data::{Attribute, Schema};
    use std::sync::Arc;

    fn dataset() -> Dataset {
        let schema = Arc::new(
            Schema::new(vec![
                Attribute::categorical_anon("A", 4),
                Attribute::categorical_anon("B", 6),
                Attribute::categorical_anon("C", 2),
            ])
            .unwrap(),
        );
        let rows: Vec<Record> = vec![
            Record::new(vec![0, 0, 0]),
            Record::new(vec![0, 1, 1]),
            Record::new(vec![1, 2, 0]),
            Record::new(vec![0, 0, 1]), // same (A, B) as record 0
            Record::new(vec![1, 2, 1]), // same (A, B) as record 2
            Record::new(vec![0, 0, 0]), // identical to record 0
        ];
        Dataset::from_records_unchecked(schema, rows)
    }

    #[test]
    fn build_groups_records_by_projection() {
        let data = dataset();
        let store = PartitionIndexStore::build(&data, &[1, 0]).unwrap();
        assert_eq!(store.len(), 6);
        assert_eq!(store.attributes(), &[0, 1]);
        // Projections (A, B): (0,0) x3, (0,1), (1,2) x2 -> 3 classes.
        assert_eq!(store.class_count(), 3);
        assert_eq!(store.largest_class(), 3);
        assert!(store.member_bytes() > 0);
    }

    #[test]
    fn build_rejects_out_of_range_attributes() {
        assert!(PartitionIndexStore::build(&dataset(), &[0, 7]).is_err());
    }

    #[test]
    fn covers_requires_subset_of_key_attributes() {
        let store = PartitionIndexStore::build(&dataset(), &[0, 1]).unwrap();
        assert!(store.covers(Some(&[0])));
        assert!(store.covers(Some(&[1, 0])));
        assert!(store.covers(Some(&[])));
        assert!(!store.covers(Some(&[2])));
        assert!(!store.covers(None));
    }

    #[test]
    fn single_class_lookup_when_key_is_exact_matched() {
        let store = PartitionIndexStore::build(&dataset(), &[0, 1]).unwrap();
        let y = Record::new(vec![0, 0, 1]);
        let classes: Vec<_> = store
            .likelihood_classes(&y, Some(&[0, 1]), Some(&[0, 1]))
            .unwrap()
            .collect();
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].index, 0);
        assert_eq!(classes[0].representative, 0);
        assert_eq!(classes[0].members, &[0, 3, 5]);
        // A projection no seed has: no class at all.
        let missing = Record::new(vec![3, 5, 0]);
        assert_eq!(
            store
                .likelihood_classes(&missing, Some(&[0, 1]), Some(&[0, 1]))
                .unwrap()
                .count(),
            0
        );
    }

    #[test]
    fn walk_prunes_on_exact_match_attributes_only() {
        let store = PartitionIndexStore::build(&dataset(), &[0, 1]).unwrap();
        let y = Record::new(vec![0, 9, 9]);
        // Likelihood covered, but only attribute 0 is exact-matched: every
        // class with A == 0 survives, in first-seen order.
        let classes: Vec<_> = store
            .likelihood_classes(&y, Some(&[0]), Some(&[0]))
            .unwrap()
            .collect();
        let reps: Vec<usize> = classes.iter().map(|c| c.representative).collect();
        assert_eq!(reps, vec![0, 1]);
        let indices: Vec<usize> = classes.iter().map(|c| c.index).collect();
        assert_eq!(indices, vec![0, 1]);
        // No exact-match guarantee at all: every class is yielded.
        let all = store.likelihood_classes(&y, Some(&[0]), None).unwrap();
        assert_eq!(all.count(), 3);
    }

    #[test]
    fn uncovered_likelihood_returns_none() {
        let store = PartitionIndexStore::build(&dataset(), &[0, 1]).unwrap();
        let y = Record::new(vec![0, 0, 0]);
        assert!(store.likelihood_classes(&y, Some(&[0, 2]), None).is_none());
        assert!(store.likelihood_classes(&y, None, Some(&[0])).is_none());
    }

    #[test]
    fn empty_key_set_collapses_everything_into_one_class() {
        let store = PartitionIndexStore::build(&dataset(), &[]).unwrap();
        assert_eq!(store.class_count(), 1);
        let y = Record::new(vec![3, 5, 1]);
        let classes: Vec<_> = store
            .likelihood_classes(&y, Some(&[]), None)
            .unwrap()
            .collect();
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].members.len(), 6);
    }

    #[test]
    fn plausible_candidates_expands_surviving_classes() {
        let store = PartitionIndexStore::build(&dataset(), &[0, 1]).unwrap();
        let y = Record::new(vec![0, 0, 0]);
        // Full key exact-matched: exactly the (0, 0) class members.
        let got: Vec<usize> = store.plausible_candidates(&y, Some(&[0, 1])).collect();
        assert_eq!(got, vec![0, 3, 5]);
        // Partial overlap: every record agreeing on A == 0.
        let partial: Vec<usize> = store.plausible_candidates(&y, Some(&[0, 2])).collect();
        assert_eq!(partial, vec![0, 3, 5, 1]);
        // Disjoint from the key set, or no guarantee: everything.
        assert!(!store.plausible_candidates(&y, Some(&[2])).is_filtered());
        assert!(!store.plausible_candidates(&y, None).is_filtered());
        assert_eq!(store.plausible_candidates(&y, Some(&[2])).count(), 6);
    }

    #[test]
    fn two_builds_enumerate_classes_identically() {
        // Determinism regression (R2): every traversal of the store — class
        // enumeration, representative choice, member expansion — must be
        // identical across two builds from the same dataset.  The class list
        // is first-seen ordered and the projection map is a BTreeMap, so
        // nothing here may depend on hash iteration order.
        let data = dataset();
        let a = PartitionIndexStore::build(&data, &[0, 1]).unwrap();
        let b = PartitionIndexStore::build(&data, &[0, 1]).unwrap();
        let y = Record::new(vec![0, 9, 9]);
        let enumerate = |s: &PartitionIndexStore| -> Vec<(usize, Vec<u32>)> {
            s.likelihood_classes(&y, Some(&[0]), None)
                .unwrap()
                .map(|c| (c.representative, c.members.to_vec()))
                .collect()
        };
        assert_eq!(enumerate(&a), enumerate(&b));
        let expand = |s: &PartitionIndexStore| -> Vec<usize> {
            s.plausible_candidates(&y, Some(&[0])).collect()
        };
        assert_eq!(expand(&a), expand(&b));
    }

    #[test]
    fn class_match_rows_are_shared_and_projection_keyed() {
        let store = PartitionIndexStore::build(&dataset(), &[0, 1])
            .unwrap()
            .with_class_cache();
        let cache = Arc::clone(store.class_cache().unwrap());
        let y = Record::new(vec![0, 0, 1]);
        let mut evals = 0usize;
        let lookup = store
            .class_match_row(&y, Some(&[0, 1]), Some(&[0, 1]), &mut |rep| {
                evals += 1;
                rep == 0
            })
            .unwrap();
        assert!(!lookup.hit, "first projection must miss");
        assert_eq!(evals, store.class_count(), "miss populates the full row");
        assert_eq!(lookup.row.as_slice(), &[true, false, false]);
        assert_eq!(cache.rows(), 1);
        // Same projection again: served from the cache, zero evaluations.
        let mut again = 0usize;
        let cached = store
            .class_match_row(&y, Some(&[0, 1]), Some(&[0, 1]), &mut |_| {
                again += 1;
                false
            })
            .unwrap();
        assert!(cached.hit);
        assert_eq!(again, 0, "hits never re-evaluate");
        assert_eq!(cached.row.as_slice(), lookup.row.as_slice());
        // A different projection is a different row.
        let other = Record::new(vec![1, 2, 0]);
        let miss = store
            .class_match_row(&other, Some(&[0, 1]), Some(&[0, 1]), &mut |rep| rep == 2)
            .unwrap();
        assert!(!miss.hit);
        assert_eq!(cache.rows(), 2);
        // Clones share the cache: a clone's lookup hits the warmed row.
        let clone = store.clone();
        assert!(
            clone
                .class_match_row(&y, Some(&[0, 1]), Some(&[0, 1]), &mut |_| false)
                .unwrap()
                .hit
        );
    }

    #[test]
    fn class_match_row_gates_on_cache_and_guarantees() {
        let data = dataset();
        let plain = PartitionIndexStore::build(&data, &[0, 1]).unwrap();
        let y = Record::new(vec![0, 0, 0]);
        let mut noop = |_: usize| true;
        // No cache attached.
        assert!(plain
            .class_match_row(&y, Some(&[0]), Some(&[0]), &mut noop)
            .is_none());
        let cached = plain.clone().with_class_cache();
        // Likelihood not covered by the key set: no class fast path at all.
        assert!(cached
            .class_match_row(&y, Some(&[2]), Some(&[2]), &mut noop)
            .is_none());
        // Likelihood not contained in the exact-match set: row would be
        // seed-dependent, must not be cached.
        assert!(cached
            .class_match_row(&y, Some(&[0, 1]), Some(&[0]), &mut noop)
            .is_none());
        assert!(cached
            .class_match_row(&y, Some(&[0]), None, &mut noop)
            .is_none());
        assert!(cached
            .class_match_row(&y, None, Some(&[0]), &mut noop)
            .is_none());
        // Duplicate/unsorted likelihood sets normalize to one canonical key.
        assert!(
            !cached
                .class_match_row(&y, Some(&[1, 0, 1]), Some(&[0, 1]), &mut noop)
                .unwrap()
                .hit
        );
        assert_eq!(cached.class_cache().unwrap().rows(), 1);
        assert!(
            cached
                .class_match_row(&y, Some(&[0, 1]), Some(&[1, 0]), &mut noop)
                .unwrap()
                .hit
        );
    }

    /// The canonical final dataset of a delta: survivors in order, then
    /// inserts (mirrors `sgf_data::DatasetDelta::apply`).
    fn final_dataset(base: &Dataset, deletes: &[usize], inserts: &[Record]) -> Dataset {
        let mut rows: Vec<Record> = base
            .records()
            .iter()
            .enumerate()
            .filter(|(i, _)| !deletes.contains(i))
            .map(|(_, r)| r.clone())
            .collect();
        rows.extend(inserts.iter().cloned());
        Dataset::from_records_unchecked(base.schema_arc(), rows)
    }

    /// Structural fingerprint: key attributes plus every class in order.
    #[allow(clippy::type_complexity)]
    fn shape(store: &PartitionIndexStore) -> (Vec<usize>, Vec<(Vec<u16>, Vec<u32>)>) {
        (
            store.attributes().to_vec(),
            store
                .classes
                .iter()
                .map(|c| (c.projection.clone(), c.members.clone()))
                .collect(),
        )
    }

    #[test]
    fn apply_delta_matches_a_fresh_build() {
        let data = dataset();
        let store = PartitionIndexStore::build(&data, &[0, 1]).unwrap();
        let cases: Vec<(Vec<usize>, Vec<Record>)> = vec![
            // Delete a whole class (record 1 is the only (0,1) member) plus a
            // representative (record 0), insert one old and one new projection.
            (
                vec![0, 1],
                vec![Record::new(vec![1, 2, 0]), Record::new(vec![3, 3, 1])],
            ),
            // Pure deletes, including a full-class removal.
            (vec![2, 4], vec![]),
            // Pure inserts.
            (vec![], vec![Record::new(vec![0, 0, 1])]),
            // Empty delta.
            (vec![], vec![]),
            // Full replacement.
            (
                (0..6).collect(),
                vec![Record::new(vec![2, 5, 0]), Record::new(vec![2, 5, 1])],
            ),
        ];
        for (deletes, inserts) in cases {
            let updated = store.apply_delta(&deletes, &inserts).unwrap();
            let fresh =
                PartitionIndexStore::build(&final_dataset(&data, &deletes, &inserts), &[0, 1])
                    .unwrap();
            assert_eq!(
                updated,
                fresh,
                "delta {deletes:?}/+{} must equal a fresh build",
                inserts.len()
            );
            assert_eq!(shape(&updated), shape(&fresh));
            assert_eq!(updated.by_projection, fresh.by_projection);
        }
    }

    #[test]
    fn apply_delta_rebuilds_cached_rows_for_the_new_classes() {
        let data = dataset();
        let store = PartitionIndexStore::build(&data, &[0, 1])
            .unwrap()
            .with_class_cache();
        // Warm two rows with the real evaluator shape (projection match).
        for y in [Record::new(vec![0, 0, 1]), Record::new(vec![1, 2, 0])] {
            store
                .class_match_row(&y, Some(&[0, 1]), Some(&[0, 1]), &mut |rep| {
                    data.records()[rep].get(0) == y.get(0) && data.records()[rep].get(1) == y.get(1)
                })
                .unwrap();
        }
        // Delete the whole (0,1) class and one (0,0) member; add a (1,2) and
        // a brand-new (3,3) record.
        let deletes = vec![0, 1];
        let inserts = vec![Record::new(vec![1, 2, 1]), Record::new(vec![3, 3, 0])];
        let updated = store.apply_delta(&deletes, &inserts).unwrap();
        let cache = Arc::clone(updated.class_cache().unwrap());
        assert_eq!(cache.rows(), 2, "resident rows survive the delta");
        let fresh = PartitionIndexStore::build(&final_dataset(&data, &deletes, &inserts), &[0, 1])
            .unwrap()
            .with_class_cache();
        // Every carried row must be bit-identical to what a fresh store
        // computes for the same key — and must be served as a hit.
        for y in [Record::new(vec![0, 0, 1]), Record::new(vec![1, 2, 0])] {
            let evaluate = |store: &PartitionIndexStore, rep: usize| {
                let record = &final_dataset(&data, &deletes, &inserts).records()[rep].clone();
                let _ = store;
                record.get(0) == y.get(0) && record.get(1) == y.get(1)
            };
            let carried = updated
                .class_match_row(&y, Some(&[0, 1]), Some(&[0, 1]), &mut |rep| {
                    evaluate(&updated, rep)
                })
                .unwrap();
            assert!(carried.hit, "warm row must survive as a hit");
            let rebuilt = fresh
                .class_match_row(&y, Some(&[0, 1]), Some(&[0, 1]), &mut |rep| {
                    evaluate(&fresh, rep)
                })
                .unwrap();
            assert_eq!(carried.row.as_slice(), rebuilt.row.as_slice());
        }
    }

    #[test]
    fn apply_delta_rejects_malformed_input() {
        let store = PartitionIndexStore::build(&dataset(), &[0, 1]).unwrap();
        assert!(store.apply_delta(&[6], &[]).is_err());
        assert!(store.apply_delta(&[3, 1], &[]).is_err());
        assert!(store.apply_delta(&[2, 2], &[]).is_err());
        // Inserted record too short for the key set.
        assert!(store.apply_delta(&[], &[Record::new(vec![0])]).is_err());
    }

    #[test]
    fn class_cache_evicts_oldest_rows_at_the_cap() {
        let store = PartitionIndexStore::build(&dataset(), &[0, 1])
            .unwrap()
            .with_class_cache_capacity(2);
        let cache = Arc::clone(store.class_cache().unwrap());
        assert_eq!(cache.capacity(), 2);
        let lookup = |y: &Record| {
            store
                .class_match_row(y, Some(&[0, 1]), Some(&[0, 1]), &mut |rep| rep == 0)
                .unwrap()
                .hit
        };
        let first = Record::new(vec![0, 0, 0]);
        let second = Record::new(vec![0, 1, 0]);
        let third = Record::new(vec![1, 2, 0]);
        assert!(!lookup(&first));
        assert!(!lookup(&second));
        assert_eq!(cache.rows(), 2);
        assert_eq!(cache.evictions(), 0);
        // A third projection evicts the oldest-inserted row (`first`).
        assert!(!lookup(&third));
        assert_eq!(cache.rows(), 2);
        assert_eq!(cache.evictions(), 1);
        // `second` and `third` are resident; `first` was evicted and must be
        // recomputed — which in turn evicts `second`, the now-oldest row.
        assert!(lookup(&second));
        assert!(lookup(&third));
        assert!(!lookup(&first));
        assert_eq!(cache.rows(), 2);
        assert_eq!(cache.evictions(), 2);
        // Hits never advance the FIFO: after re-admitting `first`, the
        // resident set is {third, first} regardless of the hits above.
        assert!(lookup(&third));
        assert!(lookup(&first));
        assert!(!lookup(&second));
        assert_eq!(cache.evictions(), 3);
    }

    #[test]
    fn duplicate_and_unsorted_attributes_are_normalized() {
        let data = dataset();
        let a = PartitionIndexStore::build(&data, &[1, 0, 1]).unwrap();
        let b = PartitionIndexStore::build(&data, &[0, 1]).unwrap();
        assert_eq!(a.attributes(), b.attributes());
        assert_eq!(a.class_count(), b.class_count());
    }
}
