//! Label scoping: fan metrics into per-scope cells under a global rollup.
//!
//! A [`Scope`] is an *ordered* list of `key=value` labels (`session=acs`,
//! `shard=0`, `request=42`).  [`Registry::scoped`](crate::Registry::scoped)
//! resolves a scope to a [`ScopedView`] whose counter/timer/summary handles
//! write **both** the global metric and the per-scope cell, so:
//!
//! * the global rollup stays exactly what it was before scoping existed
//!   (every update lands there), and
//! * per-scope cells partition the rollup — for a metric only ever updated
//!   through scoped handles, the scope cells sum to the global value.
//!
//! Scope cells are full [`Registry`] instances keyed by the scope's canonical
//! rendering, so snapshots, deltas, and canonical JSON all nest unchanged.
//! Cardinality is the caller's contract: scope on bounded dimensions
//! (session, shard), never on unbounded ones (request ids belong in trace
//! labels, not metric scopes).

use crate::registry::{Counter, Registry, Summary, SummaryStats, Timer, TimerStats};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An ordered set of `key=value` labels identifying one metric scope.
///
/// Labels keep insertion order (the order is part of the scope identity:
/// `session=a,shard=0` and `shard=0,session=a` are distinct cells).  Keys and
/// values are sanitized so the canonical rendering stays unambiguous: `=`,
/// `,`, and control characters become `_`.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Scope {
    labels: Vec<(String, String)>,
}

/// Replace rendering-ambiguous characters so `render()` round-trips.
fn sanitize(part: &str) -> String {
    part.chars()
        .map(|c| {
            if c == '=' || c == ',' || c.is_control() {
                '_'
            } else {
                c
            }
        })
        .collect()
}

impl Scope {
    /// An empty scope (no labels).  Resolving it still yields a distinct
    /// cell, keyed by the empty string.
    pub fn new() -> Self {
        Scope::default()
    }

    /// Append one `key=value` label (builder style).
    pub fn label(mut self, key: &str, value: &str) -> Self {
        self.labels.push((sanitize(key), sanitize(value)));
        self
    }

    /// The labels, in insertion order.
    pub fn labels(&self) -> &[(String, String)] {
        &self.labels
    }

    /// The value of the first label named `key`, if any.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Canonical rendering: `key=value` pairs joined by `,` in label order.
    /// This string keys the scope's cell in [`Registry`] snapshots.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, (key, value)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(key);
            out.push('=');
            out.push_str(value);
        }
        out
    }
}

/// A [`Registry`] view through a [`Scope`]: handles it hands out update both
/// the registry's global metrics and the scope's cell.
///
/// Resolve once per request (two registry-map lookups), then update through
/// the handles on the hot path — updates themselves stay lock-free atomics.
pub struct ScopedView<'r> {
    root: &'r Registry,
    cells: Arc<Registry>,
}

impl<'r> ScopedView<'r> {
    pub(crate) fn new(root: &'r Registry, cells: Arc<Registry>) -> Self {
        ScopedView { root, cells }
    }

    /// The scope's cell registry (per-scope values only, no rollup).
    pub fn cells(&self) -> &Arc<Registry> {
        &self.cells
    }

    /// Get or register `name` as a counter in both the rollup and the cell.
    pub fn counter(&self, name: &str) -> ScopedCounter {
        ScopedCounter {
            rollup: self.root.counter(name),
            cell: self.cells.counter(name),
        }
    }

    /// Get or register `name` as a timer in both the rollup and the cell.
    pub fn timer(&self, name: &str) -> ScopedTimer {
        ScopedTimer {
            rollup: self.root.timer(name),
            cell: self.cells.timer(name),
        }
    }

    /// Get or register `name` as a summary in both the rollup and the cell.
    pub fn summary(&self, name: &str) -> ScopedSummary {
        ScopedSummary {
            rollup: self.root.summary(name),
            cell: self.cells.summary(name),
        }
    }
}

/// A counter handle that adds to the global rollup and one scope cell.
#[derive(Debug, Clone)]
pub struct ScopedCounter {
    rollup: Arc<Counter>,
    cell: Arc<Counter>,
}

impl ScopedCounter {
    /// Add `n` to both the rollup and the cell.
    pub fn add(&self, n: u64) {
        self.rollup.add(n);
        self.cell.add(n);
    }

    /// Add one to both.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value of the scope cell (not the rollup).
    pub fn cell_value(&self) -> u64 {
        self.cell.get()
    }
}

/// A timer handle that observes into the global rollup and one scope cell.
#[derive(Debug, Clone)]
pub struct ScopedTimer {
    rollup: Arc<Timer>,
    cell: Arc<Timer>,
}

impl ScopedTimer {
    /// Record one observed duration in both the rollup and the cell.
    pub fn observe(&self, elapsed: Duration) {
        self.rollup.observe(elapsed);
        self.cell.observe(elapsed);
    }

    /// Time a closure and record its wall clock in both.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let result = f();
        self.observe(start.elapsed());
        result
    }

    /// Statistics of the scope cell (not the rollup).
    pub fn cell_stats(&self) -> TimerStats {
        self.cell.stats()
    }
}

/// A summary handle that observes into the global rollup and one scope cell.
#[derive(Debug, Clone)]
pub struct ScopedSummary {
    rollup: Arc<Summary>,
    cell: Arc<Summary>,
}

impl ScopedSummary {
    /// Record one observation in both the rollup and the cell.
    pub fn observe(&self, value: u64) {
        self.rollup.observe(value);
        self.cell.observe(value);
    }

    /// Statistics of the scope cell (not the rollup).
    pub fn cell_stats(&self) -> SummaryStats {
        self.cell.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_renders_labels_in_insertion_order() {
        let scope = Scope::new().label("session", "acs").label("shard", "0");
        assert_eq!(scope.render(), "session=acs,shard=0");
        assert_eq!(scope.get("session"), Some("acs"));
        assert_eq!(scope.get("missing"), None);
        // Order is identity: swapping labels is a different scope.
        let swapped = Scope::new().label("shard", "0").label("session", "acs");
        assert_ne!(scope, swapped);
        assert_eq!(Scope::new().render(), "");
    }

    #[test]
    fn scope_sanitizes_ambiguous_characters() {
        let scope = Scope::new().label("k=ey", "a,b\nc");
        assert_eq!(scope.render(), "k_ey=a_b_c");
    }

    #[test]
    fn scoped_handles_update_rollup_and_cell() {
        let registry = Registry::new();
        let scope = Scope::new().label("session", "t");
        let view = registry.scoped(&scope);
        view.counter("c").add(3);
        view.counter("c").incr();
        view.timer("t").observe(Duration::from_millis(2));
        view.summary("s").observe(7);
        // Rollup sees everything.
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("c"), 4);
        assert_eq!(snapshot.timers["t"].count, 1);
        assert_eq!(snapshot.summaries["s"].count, 1);
        // The cell sees the same values, nested under the rendered scope.
        let cell = &snapshot.scopes["session=t"];
        assert_eq!(cell.counter("c"), 4);
        assert_eq!(cell.timers["t"].count, 1);
        assert_eq!(cell.summaries["s"].sum, 7);
        // An unscoped update moves the rollup but no cell.
        registry.counter("c").add(10);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("c"), 14);
        assert_eq!(snapshot.scopes["session=t"].counter("c"), 4);
    }
}
