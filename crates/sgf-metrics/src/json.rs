//! A minimal JSON value type with a hand-rolled parser and serializer.
//!
//! The metrics snapshots, the `BENCH_*.json` benchmark documents, and the
//! perf-trajectory file all need machine-readable round-trippable encoding
//! without the (vendored, attribute-less) serde stubs.  This module supports
//! exactly the JSON subset those documents use: objects with string keys,
//! arrays, strings, booleans, null, and numbers split into an exact integer
//! variant (`Int`, counters and nanosecond totals) and a float variant
//! (`Float`, wall clocks and ratios).
//!
//! Object keys are kept in a `BTreeMap`, so serialization order is
//! deterministic — two equal documents always render byte-identically.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value (see the module docs for the supported subset).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number written without fraction or exponent, within `i128` range
    /// (wide enough to carry every `u64` counter exactly).
    Int(i128),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys are sorted, so rendering is deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64` (both number variants), if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Member lookup on an object (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|map| map.get(key))
    }

    /// Render the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
            }
            Json::Float(x) => out.push_str(&render_f64(*x)),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Self {
        Json::Int(i128::from(n))
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Self {
        Json::Float(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

/// Render an `f64` so that parsing it back yields the same value: finite
/// numbers use Rust's shortest round-trip formatting (with a forced `.0` for
/// integral values so they stay in the float domain), and non-finite numbers
/// — which JSON cannot represent — render as `null`.
fn render_f64(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    let s = format!("{x}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let bytes = text.as_bytes();
    let mut parser = Parser { bytes, pos: 0 };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != bytes.len() {
        return Err(parser.error("trailing characters after the document"));
    }
    Ok(value)
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{literal}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(&format!("unexpected byte `{}`", other as char))),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs are not needed by our documents;
                            // map lone surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|b| (*b & 0xc0) == 0x80)
                    {
                        self.pos += 1;
                    }
                    if let Ok(chunk) = std::str::from_utf8(&self.bytes[start..self.pos]) {
                        out.push_str(chunk);
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a') as u32 + 10,
                Some(b @ b'A'..=b'F') => (b - b'A') as u32 + 10,
                _ => return Err(self.error("invalid \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("non-UTF-8 number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i128>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.error("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let value = parse(text).unwrap();
            assert_eq!(value.render(), text);
        }
    }

    #[test]
    fn integers_stay_exact() {
        let value = parse("9007199254740993").unwrap();
        assert_eq!(value, Json::Int(9_007_199_254_740_993));
        assert_eq!(value.render(), "9007199254740993");
        assert_eq!(value.as_u64(), Some(9_007_199_254_740_993));
    }

    #[test]
    fn floats_round_trip_shortest() {
        let value = parse("0.1").unwrap();
        assert_eq!(value, Json::Float(0.1));
        assert_eq!(value.render(), "0.1");
        // Integral floats keep their `.0` marker through a round trip.
        assert_eq!(Json::Float(2.0).render(), "2.0");
        assert_eq!(parse("2.0").unwrap(), Json::Float(2.0));
    }

    #[test]
    fn nested_documents_round_trip_deterministically() {
        let text = "{\"a\":[1,2.5,\"x\"],\"b\":{\"nested\":true,\"z\":null}}";
        let value = parse(text).unwrap();
        assert_eq!(value.render(), text);
        // Key order in the input does not matter: BTreeMap sorts.
        let shuffled = parse("{\"b\":{\"z\":null,\"nested\":true},\"a\":[1,2.5,\"x\"]}").unwrap();
        assert_eq!(shuffled.render(), text);
    }

    #[test]
    fn string_escapes_round_trip() {
        let value = Json::Str("line\nbreak \"quoted\" \\ tab\t\u{1}".to_string());
        let rendered = value.render();
        assert_eq!(parse(&rendered).unwrap(), value);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            parse("\"\\u0041\\u00e9\"").unwrap(),
            Json::Str("Aé".to_string())
        );
    }

    #[test]
    fn accessors_navigate_documents() {
        let doc = parse("{\"n\":3,\"x\":1.5,\"s\":\"v\",\"flag\":true,\"xs\":[1]}").unwrap();
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("x").and_then(Json::as_f64), Some(1.5));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("v"));
        assert_eq!(doc.get("flag").and_then(Json::as_bool), Some(true));
        assert_eq!(
            doc.get("xs").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn malformed_documents_error_with_offsets() {
        for text in ["{", "[1,", "\"open", "{\"a\" 1}", "tru", "1 2", "{1:2}"] {
            assert!(parse(text).is_err(), "`{text}` must not parse");
        }
        let err = parse("[1, @]").unwrap_err();
        assert_eq!(err.offset, 4);
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn u64_conversion_is_exact_across_the_full_range() {
        assert_eq!(Json::from(7u64), Json::Int(7));
        let max = Json::from(u64::MAX);
        assert_eq!(max, Json::Int(i128::from(u64::MAX)));
        assert_eq!(parse(&max.render()).unwrap().as_u64(), Some(u64::MAX));
    }
}
