//! Std-only observability for the sgf workspace.
//!
//! The crate provides a deterministic metrics [`Registry`] — monotonic
//! [`Counter`]s, wall-clock [`Timer`]s, and log2-bucket [`Summary`] histograms
//! — that the perf-critical layers (sgf-core's mechanism loop, sgf-index's
//! seed stores, sgf-serve's queue and worker pool) report into, plus the
//! minimal [`json`] value type used to persist snapshots and benchmark
//! documents without external dependencies.
//!
//! Two observability layers sit on top of the registry:
//!
//! * **Label scoping** ([`Scope`] / [`ScopedView`]): an ordered label set
//!   (`session=acs`, `shard=0`) fans every metric into a per-scope cell
//!   while preserving the global rollup — snapshots nest the cells under
//!   `scopes`, and a scope-free snapshot renders exactly as before.
//! * **Span traces** ([`Trace`] / [`TraceBatch`]): a bounded ring buffer of
//!   `{span, parent, labels, counter deltas, noisy wall clock}` events with
//!   batch-atomic commits and a kill-switch, off by default.
//!
//! Two invariants shape everything here:
//!
//! 1. **Instrumentation must not perturb the measured system.**  Metric
//!    updates are lock-free atomics, never draw randomness, and can be
//!    disabled process-wide ([`set_enabled`]); the workspace's equivalence
//!    suites assert byte-identical releases with metrics on vs off.
//! 2. **Deterministic output** (sgf-lint R2): snapshots iterate in sorted
//!    name order and render to canonical JSON, so two runs of the same build
//!    produce diffable metric documents.
//!
//! ```
//! use std::time::Duration;
//!
//! let registry = sgf_metrics::Registry::new();
//! let released = registry.counter("core.released");
//! released.add(100);
//! registry.timer("core.generate").observe(Duration::from_millis(3));
//!
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counter("core.released"), 100);
//! let reparsed = sgf_metrics::Snapshot::from_json(&snapshot.to_json()).unwrap();
//! assert_eq!(reparsed, snapshot);
//! ```
//!
//! Most call sites use the process-wide registry via the free functions
//! [`counter`], [`timer`], and [`summary`]; `sgf-bench-track` snapshots it
//! around each benchmark run and emits the delta into `BENCH_<name>.json`.

pub mod json;
mod registry;
mod scope;
mod trace;

pub use json::{Json, ParseError};
pub use registry::{
    counter, enabled, global, scoped, scoped_existing, set_enabled, summary, summary_bucket, timer,
    Counter, Registry, Snapshot, Summary, SummaryStats, Timer, TimerGuard, TimerStats,
    SUMMARY_BUCKETS,
};
pub use scope::{Scope, ScopedCounter, ScopedSummary, ScopedTimer, ScopedView};
pub use trace::{trace, SpanId, Trace, TraceBatch, TraceEvent, TRACE_CAPACITY};

/// Pads and aligns a value to (at least) a cache-line boundary so two hot
/// atomics owned by different workers never share a line (false sharing).
///
/// 128 bytes covers the common 64-byte line as well as the 128-byte
/// destructive-interference distance of recent x86 prefetchers and Apple
/// silicon.
#[derive(Debug, Default, Clone, Copy)]
#[repr(align(128))]
pub struct CachePadded<T> {
    /// The padded value.
    pub value: T,
}

impl<T> CachePadded<T> {
    /// Wrap `value` in its own cache line.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_padded_is_at_least_128_byte_aligned() {
        assert!(std::mem::align_of::<CachePadded<u64>>() >= 128);
        assert!(std::mem::size_of::<CachePadded<u64>>() >= 128);
        let padded = CachePadded::new(std::sync::atomic::AtomicU64::new(7));
        padded
            .value
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        assert_eq!(padded.load(std::sync::atomic::Ordering::Relaxed), 8);
    }
}
