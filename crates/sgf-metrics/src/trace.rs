//! Deterministic span traces: a bounded ring buffer of structured events.
//!
//! A [`TraceEvent`] is one span of work — `{span, parent, name, labels,
//! counter deltas, noisy wall clock}`.  Callers build a [`TraceBatch`]
//! locally (span ids are batch-local while building), then [`Trace::commit`]
//! assigns globally consecutive ids under one lock and appends the whole
//! batch atomically, so a sequential request stream produces byte-identical
//! traces run over run.  The wall clock is the only noisy field and the
//! canonical JSON omits it unless explicitly asked for (`noisy = true`).
//!
//! The same two invariants as the metrics registry apply:
//!
//! 1. **Zero perturbation**: tracing never draws randomness, and building a
//!    batch is caller-side work gated on [`Trace::enabled`] — when the trace
//!    (or the process-wide metrics switch) is off, the hot path does one
//!    relaxed atomic load and nothing else.
//! 2. **Deterministic output** (sgf-lint R2): events keep commit order, span
//!    ids are assigned in commit order, and JSON renders canonically.

use crate::json::Json;
use crate::scope::Scope;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Ring-buffer capacity of the [`global trace`](trace), in events.
pub const TRACE_CAPACITY: usize = 4096;

/// Identifies a span within a [`TraceBatch`] (before commit) or globally
/// (after commit).  `SpanId::NONE` (0) marks a root span's missing parent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct SpanId(u64);

impl SpanId {
    /// The absent parent of a root span.
    pub const NONE: SpanId = SpanId(0);

    /// The raw id (0 = none).
    pub fn get(self) -> u64 {
        self.0
    }
}

/// One span of work in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Globally unique span id after commit (batch-local while building).
    pub span: u64,
    /// Parent span id (0 for roots).
    pub parent: u64,
    /// Span name, e.g. `core.generate` or `core.privacy_test`.
    pub name: String,
    /// `key=value` labels, in attachment order.
    pub labels: Vec<(String, String)>,
    /// Deterministic counter deltas attributed to this span.
    pub counters: Vec<(String, u64)>,
    /// Noisy wall clock (nanoseconds); excluded from canonical JSON unless
    /// explicitly requested.
    pub wall_nanos: u64,
}

impl TraceEvent {
    /// The value of the first label named `key`, if any.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// The value of the first counter named `key`, if any.
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
    }

    /// Canonical JSON object.  Labels render as the same `k=v,k2=v2` string a
    /// [`Scope`] renders to; counters render as a sorted object.  With
    /// `noisy`, the wall clock is included.
    pub fn as_json(&self, noisy: bool) -> Json {
        let mut labels = String::new();
        for (i, (key, value)) in self.labels.iter().enumerate() {
            if i > 0 {
                labels.push(',');
            }
            labels.push_str(key);
            labels.push('=');
            labels.push_str(value);
        }
        let mut counters = BTreeMap::new();
        for (name, value) in &self.counters {
            counters.insert(name.clone(), Json::from(*value));
        }
        let mut obj = BTreeMap::new();
        obj.insert("span".to_string(), Json::from(self.span));
        obj.insert("parent".to_string(), Json::from(self.parent));
        obj.insert("name".to_string(), Json::Str(self.name.clone()));
        obj.insert("labels".to_string(), Json::Str(labels));
        obj.insert("counters".to_string(), Json::Obj(counters));
        if noisy {
            obj.insert("wall_nanos".to_string(), Json::from(self.wall_nanos));
        }
        Json::Obj(obj)
    }
}

/// A locally-built group of spans, committed to a [`Trace`] atomically.
///
/// Span ids handed out by [`span`](TraceBatch::span) are 1-based and local to
/// the batch; [`Trace::commit`] rebases them onto the global sequence.  Build
/// batches only when [`Trace::enabled`] — construction allocates.
#[derive(Debug, Default)]
pub struct TraceBatch {
    events: Vec<TraceEvent>,
}

impl TraceBatch {
    /// An empty batch.
    pub fn new() -> Self {
        TraceBatch::default()
    }

    /// Number of spans in the batch.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the batch holds no spans.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Open a new span under `parent` (use [`SpanId::NONE`] for a root).
    pub fn span(&mut self, name: &str, parent: SpanId) -> SpanId {
        let id = self.events.len().saturating_add(1) as u64;
        self.events.push(TraceEvent {
            span: id,
            parent: parent.0,
            name: name.to_string(),
            labels: Vec::new(),
            counters: Vec::new(),
            wall_nanos: 0,
        });
        SpanId(id)
    }

    fn event_mut(&mut self, span: SpanId) -> Option<&mut TraceEvent> {
        let index = usize::try_from(span.0).ok()?.checked_sub(1)?;
        self.events.get_mut(index)
    }

    /// Attach one `key=value` label to `span`.
    pub fn label(&mut self, span: SpanId, key: &str, value: &str) {
        if let Some(event) = self.event_mut(span) {
            event.labels.push((key.to_string(), value.to_string()));
        }
    }

    /// Attach every label of `scope` to `span`.
    pub fn scope_labels(&mut self, span: SpanId, scope: &Scope) {
        if let Some(event) = self.event_mut(span) {
            for (key, value) in scope.labels() {
                event.labels.push((key.clone(), value.clone()));
            }
        }
    }

    /// Attach a deterministic counter delta to `span`.
    pub fn counter(&mut self, span: SpanId, name: &str, value: u64) {
        if let Some(event) = self.event_mut(span) {
            event.counters.push((name.to_string(), value));
        }
    }

    /// Record the (noisy) wall clock of `span`.
    pub fn wall(&mut self, span: SpanId, elapsed: Duration) {
        if let Some(event) = self.event_mut(span) {
            event.wall_nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        }
    }
}

struct TraceState {
    next_span: u64,
    events: VecDeque<TraceEvent>,
}

/// A bounded ring buffer of [`TraceEvent`]s with batch-atomic appends.
///
/// Disabled by default: enabling is an explicit opt-in by the host (sgf-serve
/// turns it on; benchmark binaries leave it off so the tracked perf profiles
/// are tracing-free).  The process-wide metrics kill-switch
/// ([`crate::set_enabled`]) also gates tracing, so `set_enabled(false)`
/// zeroes observability overhead in one place.
pub struct Trace {
    enabled: AtomicBool,
    capacity: usize,
    state: Mutex<TraceState>,
}

impl Trace {
    /// A disabled trace holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Trace {
            enabled: AtomicBool::new(false),
            capacity: capacity.max(1),
            state: Mutex::new(TraceState {
                next_span: 1,
                events: VecDeque::new(),
            }),
        }
    }

    /// Lock the ring, tolerating poison: every mutation leaves the buffer
    /// consistent (whole-batch pushes), and observability must never escalate
    /// a panic into the host.
    fn locked(&self) -> MutexGuard<'_, TraceState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Turn event collection on or off.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether events are being collected (requires the process-wide metrics
    /// switch too).
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed) && crate::enabled()
    }

    /// Append every span of `batch` atomically, rebasing its local span ids
    /// onto the global sequence.  Returns the number of events committed
    /// (0 when disabled — the batch is dropped).
    pub fn commit(&self, batch: TraceBatch) -> usize {
        if !self.enabled() || batch.is_empty() {
            return 0;
        }
        let committed = batch.events.len();
        let mut state = self.locked();
        let base = state.next_span;
        state.next_span = base.saturating_add(committed as u64);
        for mut event in batch.events {
            event.span = base.saturating_add(event.span).saturating_sub(1);
            if event.parent != 0 {
                event.parent = base.saturating_add(event.parent).saturating_sub(1);
            }
            state.events.push_back(event);
        }
        // Evict oldest events beyond capacity (may split an old tree — the
        // ring keeps the *recent* spans complete, which is what `trace`
        // consumers inspect).
        while state.events.len() > self.capacity {
            state.events.pop_front();
        }
        committed
    }

    /// Record a single root span in one call.
    pub fn record(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        counters: &[(&str, u64)],
        wall: Duration,
    ) {
        if !self.enabled() {
            return;
        }
        let mut batch = TraceBatch::new();
        let span = batch.span(name, SpanId::NONE);
        for (key, value) in labels {
            batch.label(span, key, value);
        }
        for (key, value) in counters {
            batch.counter(span, key, *value);
        }
        batch.wall(span, wall);
        self.commit(batch);
    }

    /// Drop every buffered event and restart span ids from 1.
    pub fn clear(&self) {
        let mut state = self.locked();
        state.events.clear();
        state.next_span = 1;
    }

    /// Every buffered event, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.locked().events.iter().cloned().collect()
    }

    /// The buffered events whose span tree is rooted at (or below) a span
    /// carrying label `key=value`: an event matches if it carries the label
    /// itself or descends from one that does.
    pub fn events_with_label(&self, key: &str, value: &str) -> Vec<TraceEvent> {
        let mut matched: BTreeSet<u64> = BTreeSet::new();
        let mut out = Vec::new();
        for event in self.locked().events.iter() {
            let hit = event.label(key) == Some(value)
                || (event.parent != 0 && matched.contains(&event.parent));
            if hit {
                matched.insert(event.span);
                out.push(event.clone());
            }
        }
        out
    }

    /// Canonical JSON for `events` (see [`TraceEvent::as_json`]).
    pub fn events_json(events: &[TraceEvent], noisy: bool) -> Json {
        let mut root = BTreeMap::new();
        root.insert("schema_version".to_string(), Json::Int(1));
        root.insert(
            "events".to_string(),
            Json::Arr(events.iter().map(|e| e.as_json(noisy)).collect()),
        );
        Json::Obj(root)
    }

    /// Canonical JSON of the whole buffer.
    pub fn to_json(&self, noisy: bool) -> String {
        Self::events_json(&self.events(), noisy).render()
    }
}

/// The process-wide trace the sgf crates report into.  Disabled until a host
/// (sgf-serve, a test) calls `trace().set_enabled(true)`.
pub fn trace() -> &'static Trace {
    static GLOBAL: OnceLock<Trace> = OnceLock::new();
    GLOBAL.get_or_init(|| Trace::new(TRACE_CAPACITY))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_drops_batches() {
        let trace = Trace::new(16);
        assert!(!trace.enabled());
        let mut batch = TraceBatch::new();
        batch.span("root", SpanId::NONE);
        assert_eq!(trace.commit(batch), 0);
        assert!(trace.events().is_empty());
        trace.record("r", &[], &[], Duration::ZERO);
        assert!(trace.events().is_empty());
    }

    #[test]
    fn commit_rebases_local_span_ids_onto_the_global_sequence() {
        let trace = Trace::new(16);
        trace.set_enabled(true);
        let mut first = TraceBatch::new();
        let root = first.span("generate", SpanId::NONE);
        let child = first.span("privacy_test", root);
        first.label(root, "session", "a");
        first.counter(child, "records_examined", 7);
        assert_eq!(trace.commit(first), 2);
        let mut second = TraceBatch::new();
        let root2 = second.span("generate", SpanId::NONE);
        second.span("privacy_test", root2);
        assert_eq!(trace.commit(second), 2);
        let events = trace.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].span, 1);
        assert_eq!(events[0].parent, 0);
        assert_eq!(events[1].span, 2);
        assert_eq!(events[1].parent, 1);
        assert_eq!(events[1].counter("records_examined"), Some(7));
        assert_eq!(events[2].span, 3);
        assert_eq!(events[3].parent, 3);
    }

    #[test]
    fn ring_buffer_evicts_oldest_events() {
        let trace = Trace::new(3);
        trace.set_enabled(true);
        for i in 0..5 {
            trace.record(&format!("span{i}"), &[], &[], Duration::ZERO);
        }
        let events = trace.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].name, "span2");
        assert_eq!(events[2].name, "span4");
        // Ids keep advancing monotonically across evictions.
        assert_eq!(events[2].span, 5);
        trace.clear();
        assert!(trace.events().is_empty());
        trace.record("fresh", &[], &[], Duration::ZERO);
        assert_eq!(trace.events()[0].span, 1);
    }

    #[test]
    fn label_filter_follows_the_span_tree() {
        let trace = Trace::new(16);
        trace.set_enabled(true);
        let mut batch = TraceBatch::new();
        let a = batch.span("generate", SpanId::NONE);
        batch.label(a, "session", "a");
        let a_child = batch.span("proposal", a);
        let a_grandchild = batch.span("privacy_test", a_child);
        batch.counter(a_grandchild, "records_examined", 3);
        let b = batch.span("generate", SpanId::NONE);
        batch.label(b, "session", "b");
        batch.span("proposal", b);
        trace.commit(batch);
        let session_a = trace.events_with_label("session", "a");
        assert_eq!(session_a.len(), 3);
        assert!(session_a
            .iter()
            .all(|e| e.name != "generate" || e.label("session") == Some("a")));
        let session_b = trace.events_with_label("session", "b");
        assert_eq!(session_b.len(), 2);
        assert!(trace.events_with_label("session", "c").is_empty());
    }

    #[test]
    fn canonical_json_omits_wall_clock_unless_noisy() {
        let trace = Trace::new(16);
        trace.set_enabled(true);
        let mut batch = TraceBatch::new();
        let span = batch.span("core.generate", SpanId::NONE);
        batch.scope_labels(span, &Scope::new().label("session", "acs"));
        batch.counter(span, "released", 10);
        batch.wall(span, Duration::from_nanos(1234));
        trace.commit(batch);
        let quiet = trace.to_json(false);
        assert_eq!(
            quiet,
            "{\"events\":[{\"counters\":{\"released\":10},\"labels\":\"session=acs\",\
             \"name\":\"core.generate\",\"parent\":0,\"span\":1}],\"schema_version\":1}"
        );
        let noisy = trace.to_json(true);
        assert!(noisy.contains("\"wall_nanos\":1234"));
    }

    #[test]
    fn global_metrics_switch_gates_tracing() {
        let trace = Trace::new(16);
        trace.set_enabled(true);
        crate::set_enabled(false);
        assert!(!trace.enabled());
        trace.record("r", &[], &[], Duration::ZERO);
        crate::set_enabled(true);
        assert!(trace.enabled());
        assert!(trace.events().is_empty());
    }
}
