//! The metrics registry: named monotonic counters, wall-clock timers, and
//! log2-bucket summaries, with deterministic snapshot/serialization order.
//!
//! ## Design constraints
//!
//! * **Never perturb the measured system.**  Metric updates touch only their
//!   own atomics — no RNG, no allocation, no locking on the hot path (the
//!   registry mutex is taken only to register a metric or take a snapshot).
//!   The release-equivalence suites assert that instrumented runs release
//!   byte-identical records to uninstrumented ones.
//! * **Deterministic iteration** (sgf-lint R2): metrics live in a `BTreeMap`,
//!   so snapshots and their JSON render in one canonical order.
//! * **Never panic the host** (the spirit of R3): the registry mutex is
//!   poison-tolerant, and disabled metrics degrade to no-ops.

use crate::json::Json;
use crate::scope::{Scope, ScopedView};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Global switch: when disabled, every update on every metric is a no-op.
///
/// Metrics are on by default.  The switch exists so the equivalence suite can
/// prove that instrumentation never feeds back into the measured computation:
/// released records must be byte-identical either way.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Enable or disable all metric updates process-wide.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether metric updates are currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Number of log2 magnitude buckets a [`Summary`] tracks (`u64` has 64 bit
/// positions; bucket `i` holds values whose highest set bit is `i - 1`, with
/// bucket 0 holding zero).
pub const SUMMARY_BUCKETS: usize = 65;

/// A monotonic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A wall-clock timer: observation count, total, and maximum duration.
#[derive(Debug, Default)]
pub struct Timer {
    count: AtomicU64,
    total_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl Timer {
    /// Record one observed duration.
    pub fn observe(&self, elapsed: Duration) {
        if !enabled() {
            return;
        }
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Time a closure and record its wall clock.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let result = f();
        self.observe(start.elapsed());
        result
    }

    /// Start a guard that records the elapsed wall clock when dropped.
    pub fn start(&self) -> TimerGuard<'_> {
        TimerGuard {
            timer: self,
            start: Instant::now(),
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> TimerStats {
        TimerStats {
            count: self.count.load(Ordering::Relaxed),
            total_nanos: self.total_nanos.load(Ordering::Relaxed),
            max_nanos: self.max_nanos.load(Ordering::Relaxed),
        }
    }
}

/// Records the elapsed time into its [`Timer`] on drop.
#[derive(Debug)]
pub struct TimerGuard<'t> {
    timer: &'t Timer,
    start: Instant,
}

impl Drop for TimerGuard<'_> {
    fn drop(&mut self) {
        self.timer.observe(self.start.elapsed());
    }
}

/// A point-in-time view of a [`Timer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimerStats {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed durations, in nanoseconds.
    pub total_nanos: u64,
    /// Largest observed duration, in nanoseconds.
    pub max_nanos: u64,
}

impl TimerStats {
    /// Mean observed duration in seconds (0 when nothing was observed).
    pub fn mean_seconds(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_nanos as f64 / self.count as f64 / 1e9
        }
    }
}

/// A histogram-ish summary of a `u64`-valued observation stream: count, sum,
/// min, max, and power-of-two magnitude buckets (enough for order-of-magnitude
/// latency/size profiles without storing samples).
#[derive(Debug)]
pub struct Summary {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; SUMMARY_BUCKETS],
}

impl Default for Summary {
    fn default() -> Self {
        Summary {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The magnitude bucket a value falls into: 0 for 0, else `64 - leading_zeros`
/// (so bucket `i >= 1` holds values in `[2^(i-1), 2^i)`).
pub fn summary_bucket(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

impl Summary {
    /// Record one observation.
    pub fn observe(&self, value: u64) {
        if !enabled() {
            return;
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        if let Some(bucket) = self.buckets.get(summary_bucket(value)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> SummaryStats {
        let count = self.count.load(Ordering::Relaxed);
        SummaryStats {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| {
                self.buckets.get(i).map_or(0, |b| b.load(Ordering::Relaxed))
            }),
        }
    }
}

/// A point-in-time view of a [`Summary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SummaryStats {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when nothing was observed).
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
    /// Count per log2 magnitude bucket (see [`summary_bucket`]).
    pub buckets: [u64; SUMMARY_BUCKETS],
}

impl Default for SummaryStats {
    fn default() -> Self {
        SummaryStats {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; SUMMARY_BUCKETS],
        }
    }
}

impl SummaryStats {
    /// Mean observed value (0 when nothing was observed).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper bound on the `q`-quantile (`0 < q <= 1`) reconstructed from
    /// the log2 buckets: the smallest bucket upper edge at which the
    /// cumulative count reaches `ceil(q * count)`, capped at the observed
    /// max.  Within a factor of 2 of the true quantile — enough for
    /// admission-control signals like a p95 `retry_after_ms`.  Returns 0
    /// when nothing was observed.
    ///
    /// `q` outside `[0, 1]` — including NaN, whose `as u64` cast would
    /// silently select the *first* bucket — answers the conservative upper
    /// bound (the observed max) instead of an arbitrary bucket.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if !(0.0..=1.0).contains(&q) {
            return self.max;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative = cumulative.saturating_add(*bucket);
            if cumulative >= target {
                // Bucket i >= 1 holds [2^(i-1), 2^i); bucket 0 holds zero.
                let edge = match i {
                    0 => 0,
                    _ if i >= 64 => u64::MAX,
                    _ => (1u64 << i) - 1,
                };
                return edge.min(self.max);
            }
        }
        self.max
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Timer(Arc<Timer>),
    Summary(Arc<Summary>),
}

/// A collection of named metrics with deterministic iteration order.
///
/// `counter` / `timer` / `summary` register on first use and return shared
/// handles; callers should look a handle up once and reuse it rather than
/// paying the registry lock per update.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
    /// Per-scope cell registries, keyed by the scope's canonical rendering.
    /// Cells never nest further (a cell's own `scopes` map stays empty).
    scopes: Mutex<BTreeMap<String, Arc<Registry>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Lock the metric map, tolerating poison: all mutations are single map
    /// inserts, so the state is consistent even if a holder panicked, and
    /// observability must never escalate a panic into the host.
    fn locked(&self) -> MutexGuard<'_, BTreeMap<String, Metric>> {
        self.metrics.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Get or register the counter `name`.
    ///
    /// A name already registered as a different metric kind yields a fresh,
    /// unregistered handle (updates still work; the snapshot keeps the first
    /// registration) — observability never panics the host over a name clash.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = self.locked();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(counter) => Arc::clone(counter),
            _ => Arc::new(Counter::default()),
        }
    }

    /// Get or register the timer `name` (same clash policy as `counter`).
    pub fn timer(&self, name: &str) -> Arc<Timer> {
        let mut metrics = self.locked();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Timer(Arc::new(Timer::default())))
        {
            Metric::Timer(timer) => Arc::clone(timer),
            _ => Arc::new(Timer::default()),
        }
    }

    /// Get or register the summary `name` (same clash policy as `counter`).
    pub fn summary(&self, name: &str) -> Arc<Summary> {
        let mut metrics = self.locked();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Summary(Arc::new(Summary::default())))
        {
            Metric::Summary(summary) => Arc::clone(summary),
            _ => Arc::new(Summary::default()),
        }
    }

    /// The cell registry for `scope`, created on first use.  Cells hold the
    /// per-scope values only; the rollup lives in `self`.
    pub fn scope_registry(&self, scope: &Scope) -> Arc<Registry> {
        let key = scope.render();
        let mut scopes = self.scopes.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            scopes
                .entry(key)
                .or_insert_with(|| Arc::new(Registry::new())),
        )
    }

    /// A view of this registry through `scope`: handles it hands out update
    /// both the global metric and the scope's cell (see [`ScopedView`]).
    pub fn scoped(&self, scope: &Scope) -> ScopedView<'_> {
        ScopedView::new(self, self.scope_registry(scope))
    }

    /// A view through `scope` only if its cell already exists — a read that
    /// **never allocates** a new cell.
    ///
    /// Paths answering *unvalidated* client input must use this instead of
    /// [`Registry::scoped`]: the allocating lookup would let a flood of
    /// bogus scope keys (e.g. made-up session names) grow the process-global
    /// registry without bound.
    pub fn scoped_existing(&self, scope: &Scope) -> Option<ScopedView<'_>> {
        let key = scope.render();
        let scopes = self.scopes.lock().unwrap_or_else(|e| e.into_inner());
        let cell = scopes.get(&key).map(Arc::clone)?;
        Some(ScopedView::new(self, cell))
    }

    /// A consistent point-in-time view of every registered metric, in sorted
    /// name order, including every scope cell under `scopes`.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.locked();
        let mut snapshot = Snapshot::default();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    snapshot.counters.insert(name.clone(), c.get());
                }
                Metric::Timer(t) => {
                    snapshot.timers.insert(name.clone(), t.stats());
                }
                Metric::Summary(s) => {
                    snapshot.summaries.insert(name.clone(), s.stats());
                }
            }
        }
        drop(metrics);
        let scopes = self.scopes.lock().unwrap_or_else(|e| e.into_inner());
        for (key, cell) in scopes.iter() {
            snapshot.scopes.insert(key.clone(), cell.snapshot());
        }
        snapshot
    }
}

/// The process-wide registry the sgf crates report into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Get or register a counter in the [`global`] registry.
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// Get or register a timer in the [`global`] registry.
pub fn timer(name: &str) -> Arc<Timer> {
    global().timer(name)
}

/// Get or register a summary in the [`global`] registry.
pub fn summary(name: &str) -> Arc<Summary> {
    global().summary(name)
}

/// A view of the [`global`] registry through `scope`.
pub fn scoped(scope: &Scope) -> ScopedView<'static> {
    global().scoped(scope)
}

/// A view of the [`global`] registry through `scope` only if its cell already
/// exists; never allocates (see [`Registry::scoped_existing`]).
pub fn scoped_existing(scope: &Scope) -> Option<ScopedView<'static>> {
    global().scoped_existing(scope)
}

/// A deterministic point-in-time view of a [`Registry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Timer statistics by name.
    pub timers: BTreeMap<String, TimerStats>,
    /// Summary statistics by name.
    pub summaries: BTreeMap<String, SummaryStats>,
    /// Per-scope cell snapshots, keyed by [`Scope::render`] output.  Empty
    /// for registries that never handed out a scoped view — in which case
    /// the JSON rendering is exactly the pre-scoping format.
    pub scopes: BTreeMap<String, Snapshot>,
}

impl Snapshot {
    /// The change since `earlier`: counters and timer/summary counts subtract
    /// (saturating, so a restarted registry yields zeros rather than
    /// underflow); min/max are taken from `self` since they cannot be
    /// un-merged.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let mut delta = Snapshot::default();
        for (name, value) in &self.counters {
            let before = earlier.counters.get(name).copied().unwrap_or(0);
            delta
                .counters
                .insert(name.clone(), value.saturating_sub(before));
        }
        for (name, stats) in &self.timers {
            let before = earlier.timers.get(name).copied().unwrap_or_default();
            delta.timers.insert(
                name.clone(),
                TimerStats {
                    count: stats.count.saturating_sub(before.count),
                    total_nanos: stats.total_nanos.saturating_sub(before.total_nanos),
                    max_nanos: stats.max_nanos,
                },
            );
        }
        for (name, stats) in &self.summaries {
            let before = earlier.summaries.get(name).copied().unwrap_or_default();
            delta.summaries.insert(
                name.clone(),
                SummaryStats {
                    count: stats.count.saturating_sub(before.count),
                    sum: stats.sum.saturating_sub(before.sum),
                    min: stats.min,
                    max: stats.max,
                    buckets: std::array::from_fn(|i| {
                        let now = stats.buckets.get(i).copied().unwrap_or(0);
                        let then = before.buckets.get(i).copied().unwrap_or(0);
                        now.saturating_sub(then)
                    }),
                },
            );
        }
        for (key, cell) in &self.scopes {
            let before = earlier.scopes.get(key);
            let zero = Snapshot::default();
            delta
                .scopes
                .insert(key.clone(), cell.delta(before.unwrap_or(&zero)));
        }
        delta
    }

    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A copy holding only the deterministic parts: counters (recursively,
    /// per scope cell too), with timers and summaries — whose wall clocks
    /// and latency buckets are noisy — dropped.  This is what the serve
    /// `metrics` verb returns by default so identically-seeded runs produce
    /// byte-identical documents.
    pub fn counters_only(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.clone(),
            timers: BTreeMap::new(),
            summaries: BTreeMap::new(),
            scopes: self
                .scopes
                .iter()
                .map(|(key, cell)| (key.clone(), cell.counters_only()))
                .collect(),
        }
    }

    /// Render the snapshot as a canonical JSON document.
    pub fn to_json(&self) -> String {
        self.as_json().render()
    }

    /// The snapshot as a [`Json`] value.
    pub fn as_json(&self) -> Json {
        match self.as_json_inner(true) {
            Json::Obj(mut root) => {
                root.insert("schema_version".to_string(), Json::Int(1));
                Json::Obj(root)
            }
            other => other,
        }
    }

    /// The object body; `root` controls whether scope cells nest (cells are
    /// rendered without a redundant `schema_version` and never nest again).
    fn as_json_inner(&self, root: bool) -> Json {
        let mut counters = BTreeMap::new();
        for (name, value) in &self.counters {
            counters.insert(name.clone(), Json::from(*value));
        }
        let mut timers = BTreeMap::new();
        for (name, stats) in &self.timers {
            let mut obj = BTreeMap::new();
            obj.insert("count".to_string(), Json::from(stats.count));
            obj.insert("total_nanos".to_string(), Json::from(stats.total_nanos));
            obj.insert("max_nanos".to_string(), Json::from(stats.max_nanos));
            timers.insert(name.clone(), Json::Obj(obj));
        }
        let mut summaries = BTreeMap::new();
        for (name, stats) in &self.summaries {
            let mut obj = BTreeMap::new();
            obj.insert("count".to_string(), Json::from(stats.count));
            obj.insert("sum".to_string(), Json::from(stats.sum));
            obj.insert("min".to_string(), Json::from(stats.min));
            obj.insert("max".to_string(), Json::from(stats.max));
            // Sparse bucket encoding: only non-zero buckets, keyed by index.
            let mut buckets = BTreeMap::new();
            for (i, count) in stats.buckets.iter().enumerate() {
                if *count > 0 {
                    buckets.insert(format!("{i:02}"), Json::from(*count));
                }
            }
            obj.insert("buckets".to_string(), Json::Obj(buckets));
            summaries.insert(name.clone(), Json::Obj(obj));
        }
        let mut obj = BTreeMap::new();
        obj.insert("counters".to_string(), Json::Obj(counters));
        obj.insert("timers".to_string(), Json::Obj(timers));
        obj.insert("summaries".to_string(), Json::Obj(summaries));
        // Scope cells nest one level down; the key is absent entirely for a
        // scope-free snapshot, keeping the root format (and every pre-scoping
        // BENCH_*.json document) byte-for-byte unchanged.
        if root && !self.scopes.is_empty() {
            let mut scopes = BTreeMap::new();
            for (key, cell) in &self.scopes {
                scopes.insert(key.clone(), cell.as_json_inner(false));
            }
            obj.insert("scopes".to_string(), Json::Obj(scopes));
        }
        Json::Obj(obj)
    }

    /// Parse a snapshot back from its JSON rendering.
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let doc = crate::json::parse(text).map_err(|e| e.to_string())?;
        Self::from_json_value(&doc)
    }

    /// Parse a snapshot from an already-parsed [`Json`] document.
    pub fn from_json_value(doc: &Json) -> Result<Snapshot, String> {
        let mut snapshot = Snapshot::default();
        if let Some(counters) = doc.get("counters").and_then(Json::as_obj) {
            for (name, value) in counters {
                let value = value
                    .as_u64()
                    .ok_or_else(|| format!("counter `{name}` is not a u64"))?;
                snapshot.counters.insert(name.clone(), value);
            }
        }
        if let Some(timers) = doc.get("timers").and_then(Json::as_obj) {
            for (name, stats) in timers {
                let field = |key: &str| {
                    stats
                        .get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("timer `{name}` field `{key}` is not a u64"))
                };
                snapshot.timers.insert(
                    name.clone(),
                    TimerStats {
                        count: field("count")?,
                        total_nanos: field("total_nanos")?,
                        max_nanos: field("max_nanos")?,
                    },
                );
            }
        }
        if let Some(summaries) = doc.get("summaries").and_then(Json::as_obj) {
            for (name, stats) in summaries {
                let field = |key: &str| {
                    stats
                        .get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("summary `{name}` field `{key}` is not a u64"))
                };
                let mut buckets = [0u64; SUMMARY_BUCKETS];
                if let Some(sparse) = stats.get("buckets").and_then(Json::as_obj) {
                    for (index, count) in sparse {
                        let i: usize = index
                            .parse()
                            .map_err(|_| format!("summary `{name}` bucket key `{index}`"))?;
                        let slot = buckets
                            .get_mut(i)
                            .ok_or_else(|| format!("summary `{name}` bucket {i} out of range"))?;
                        *slot = count
                            .as_u64()
                            .ok_or_else(|| format!("summary `{name}` bucket {i} not a u64"))?;
                    }
                }
                snapshot.summaries.insert(
                    name.clone(),
                    SummaryStats {
                        count: field("count")?,
                        sum: field("sum")?,
                        min: field("min")?,
                        max: field("max")?,
                        buckets,
                    },
                );
            }
        }
        if let Some(scopes) = doc.get("scopes").and_then(Json::as_obj) {
            for (key, cell) in scopes {
                snapshot
                    .scopes
                    .insert(key.clone(), Self::from_json_value(cell)?);
            }
        }
        Ok(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_in_sorted_order() {
        let registry = Registry::new();
        registry.counter("z.last").add(2);
        registry.counter("a.first").incr();
        registry.counter("m.middle").add(5);
        registry.counter("a.first").add(9);
        let snapshot = registry.snapshot();
        let names: Vec<&str> = snapshot.counters.keys().map(String::as_str).collect();
        assert_eq!(names, ["a.first", "m.middle", "z.last"]);
        assert_eq!(snapshot.counter("a.first"), 10);
        assert_eq!(snapshot.counter("missing"), 0);
    }

    #[test]
    fn timers_track_count_total_and_max() {
        let registry = Registry::new();
        let timer = registry.timer("t");
        timer.observe(Duration::from_millis(2));
        timer.observe(Duration::from_millis(6));
        let stats = registry.snapshot().timers["t"];
        assert_eq!(stats.count, 2);
        assert_eq!(stats.total_nanos, 8_000_000);
        assert_eq!(stats.max_nanos, 6_000_000);
        assert!((stats.mean_seconds() - 0.004).abs() < 1e-12);
        let result = timer.time(|| 42);
        assert_eq!(result, 42);
        assert_eq!(timer.stats().count, 3);
        {
            let _guard = timer.start();
        }
        assert_eq!(timer.stats().count, 4);
    }

    #[test]
    fn summaries_bucket_by_magnitude() {
        assert_eq!(summary_bucket(0), 0);
        assert_eq!(summary_bucket(1), 1);
        assert_eq!(summary_bucket(2), 2);
        assert_eq!(summary_bucket(3), 2);
        assert_eq!(summary_bucket(1024), 11);
        assert_eq!(summary_bucket(u64::MAX), 64);
        let registry = Registry::new();
        let summary = registry.summary("s");
        for value in [0, 1, 3, 1024] {
            summary.observe(value);
        }
        let stats = registry.snapshot().summaries["s"];
        assert_eq!(stats.count, 4);
        assert_eq!(stats.sum, 1028);
        assert_eq!(stats.min, 0);
        assert_eq!(stats.max, 1024);
        assert_eq!(stats.buckets[0], 1);
        assert_eq!(stats.buckets[1], 1);
        assert_eq!(stats.buckets[2], 1);
        assert_eq!(stats.buckets[11], 1);
        assert!((stats.mean() - 257.0).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_reports_zero_min() {
        let registry = Registry::new();
        registry.summary("s");
        let stats = registry.snapshot().summaries["s"];
        assert_eq!(stats.min, 0);
        assert_eq!(stats.mean(), 0.0);
    }

    #[test]
    fn kind_clashes_yield_detached_handles_not_panics() {
        let registry = Registry::new();
        registry.counter("name").add(3);
        let detached = registry.timer("name");
        detached.observe(Duration::from_millis(1));
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("name"), 3);
        assert!(!snapshot.timers.contains_key("name"));
    }

    #[test]
    fn delta_subtracts_counters_and_counts() {
        let registry = Registry::new();
        let counter = registry.counter("c");
        let timer = registry.timer("t");
        counter.add(10);
        timer.observe(Duration::from_millis(1));
        let before = registry.snapshot();
        counter.add(7);
        timer.observe(Duration::from_millis(2));
        let delta = registry.snapshot().delta(&before);
        assert_eq!(delta.counter("c"), 7);
        assert_eq!(delta.timers["t"].count, 1);
        assert_eq!(delta.timers["t"].total_nanos, 2_000_000);
        // A metric absent from the earlier snapshot deltas from zero.
        registry.counter("new").add(4);
        let delta = registry.snapshot().delta(&before);
        assert_eq!(delta.counter("new"), 4);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let registry = Registry::new();
        registry.counter("requests").add(1234);
        registry
            .timer("synthesis")
            .observe(Duration::from_micros(1500));
        let summary = registry.summary("queue_wait");
        summary.observe(0);
        summary.observe(900);
        let snapshot = registry.snapshot();
        let json = snapshot.to_json();
        let parsed = Snapshot::from_json(&json).unwrap();
        assert_eq!(parsed, snapshot);
        // The canonical rendering is stable through a round trip.
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn malformed_snapshots_error() {
        assert!(Snapshot::from_json("not json").is_err());
        assert!(Snapshot::from_json("{\"counters\":{\"c\":-1}}").is_err());
        assert!(Snapshot::from_json("{\"timers\":{\"t\":{\"count\":1}}}").is_err());
        assert!(
            Snapshot::from_json("{\"summaries\":{\"s\":{\"count\":0,\"sum\":0,\"min\":0,\"max\":0,\"buckets\":{\"99\":1}}}}")
                .is_err()
        );
    }

    #[test]
    fn disabled_metrics_are_no_ops() {
        let registry = Registry::new();
        let counter = registry.counter("c");
        let timer = registry.timer("t");
        let summary = registry.summary("s");
        set_enabled(false);
        counter.add(5);
        timer.observe(Duration::from_millis(1));
        summary.observe(9);
        set_enabled(true);
        assert_eq!(counter.get(), 0);
        assert_eq!(timer.stats().count, 0);
        assert_eq!(summary.stats().count, 0);
        counter.incr();
        assert_eq!(counter.get(), 1);
    }

    #[test]
    fn scoped_snapshots_nest_delta_and_round_trip() {
        let registry = Registry::new();
        registry.counter("c").add(1);
        let a = Scope::new().label("session", "a");
        let b = Scope::new().label("session", "b");
        registry.scoped(&a).counter("c").add(2);
        registry.scoped(&b).counter("c").add(3);
        registry.scoped(&a).summary("s").observe(40);
        let before = registry.snapshot();
        // Rollup = unscoped + both cells.
        assert_eq!(before.counter("c"), 6);
        assert_eq!(before.scopes["session=a"].counter("c"), 2);
        assert_eq!(before.scopes["session=b"].counter("c"), 3);
        // JSON round-trips with nested scopes, and the rendering is stable.
        let json = before.to_json();
        let parsed = Snapshot::from_json(&json).unwrap();
        assert_eq!(parsed, before);
        assert_eq!(parsed.to_json(), json);
        // Deltas recurse into cells (a fresh cell deltas from zero).
        registry.scoped(&a).counter("c").add(5);
        registry
            .scoped(&Scope::new().label("session", "new"))
            .counter("c")
            .incr();
        let delta = registry.snapshot().delta(&before);
        assert_eq!(delta.counter("c"), 6);
        assert_eq!(delta.scopes["session=a"].counter("c"), 5);
        assert_eq!(delta.scopes["session=b"].counter("c"), 0);
        assert_eq!(delta.scopes["session=new"].counter("c"), 1);
        // counters_only keeps counters and scope cells, drops the rest.
        let counters = registry.snapshot().counters_only();
        assert!(counters.summaries.is_empty());
        assert!(counters.scopes["session=a"].summaries.is_empty());
        assert_eq!(counters.scopes["session=a"].counter("c"), 7);
    }

    #[test]
    fn scope_free_snapshot_json_has_no_scopes_key() {
        let registry = Registry::new();
        registry.counter("c").incr();
        assert!(!registry.snapshot().to_json().contains("\"scopes\""));
    }

    #[test]
    fn quantile_upper_bound_reads_the_buckets() {
        let registry = Registry::new();
        let summary = registry.summary("s");
        assert_eq!(summary.stats().quantile_upper_bound(0.95), 0);
        for _ in 0..95 {
            summary.observe(3); // bucket 2: [2, 4)
        }
        for _ in 0..5 {
            summary.observe(100); // bucket 7: [64, 128)
        }
        let stats = summary.stats();
        // p50 lands in the [2, 4) bucket; upper edge is 3.
        assert_eq!(stats.quantile_upper_bound(0.50), 3);
        // p95 still lands in the low bucket (95 of 100 observations).
        assert_eq!(stats.quantile_upper_bound(0.95), 3);
        // p99 crosses into the tail bucket and caps at the observed max.
        assert_eq!(stats.quantile_upper_bound(0.99), 100);
        assert_eq!(stats.quantile_upper_bound(1.0), 100);
        // A single observation: every quantile is bounded by it.
        let one = registry.summary("one");
        one.observe(7);
        assert_eq!(one.stats().quantile_upper_bound(0.95), 7);
    }

    #[test]
    fn quantile_upper_bound_is_nan_safe_and_clamped() {
        let registry = Registry::new();
        let summary = registry.summary("s");
        for _ in 0..95 {
            summary.observe(3);
        }
        for _ in 0..5 {
            summary.observe(100);
        }
        let stats = summary.stats();
        // Invalid q — NaN would have cast to 0 and picked the *first* bucket;
        // all out-of-range inputs now answer the conservative observed max.
        assert_eq!(stats.quantile_upper_bound(f64::NAN), 100);
        assert_eq!(stats.quantile_upper_bound(-0.1), 100);
        assert_eq!(stats.quantile_upper_bound(1.5), 100);
        // Boundary q stays well-defined: q=0 bounds the smallest observation,
        // q=1 the largest.
        assert_eq!(stats.quantile_upper_bound(0.0), 3);
        assert_eq!(stats.quantile_upper_bound(1.0), 100);
        // An empty summary answers 0 regardless of q.
        let empty = registry.summary("empty").stats();
        assert_eq!(empty.quantile_upper_bound(f64::NAN), 0);
        assert_eq!(empty.quantile_upper_bound(2.0), 0);
    }

    #[test]
    fn scoped_existing_never_allocates_cells() {
        let registry = Registry::new();
        // No cell yet: the non-allocating read answers None and the scope
        // map stays empty — this is the admission-path guarantee that bogus
        // client-supplied scope keys cannot grow the registry.
        let scope = Scope::new().label("session", "never-registered");
        assert!(registry.scoped_existing(&scope).is_none());
        assert!(registry.snapshot().scopes.is_empty());
        // Once the allocating path has created the cell, the read finds it
        // and its handles feed the same cell.
        let real = Scope::new().label("session", "real");
        registry.scoped(&real).counter("c").add(2);
        let view = registry.scoped_existing(&real).expect("cell exists");
        view.counter("c").incr();
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.scopes.len(), 1);
        assert_eq!(snapshot.scopes["session=real"].counter("c"), 3);
    }

    #[test]
    fn global_registry_hands_out_shared_handles() {
        let a = counter("test.global.shared");
        let b = counter("test.global.shared");
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 5);
        assert!(global()
            .snapshot()
            .counters
            .contains_key("test.global.shared"));
        let _ = timer("test.global.timer");
        let _ = summary("test.global.summary");
    }
}
