//! Determinism of the metrics registry under `std::thread::scope`
//! concurrency: counts are exact (no lost updates), snapshot iteration order
//! is canonical, the JSON schema round-trips, and scoped cells partition the
//! global rollup exactly.

use sgf_metrics::{Registry, Scope, Snapshot, SpanId, Trace, TraceBatch};
use std::sync::RwLock;
use std::time::Duration;

/// Serializes the kill-switch test (write lock) against every test that
/// needs the process-wide enable flag to stay on (read lock): the flag is
/// global, so flipping it mid-hammer would drop another test's updates.
static ENABLE_GATE: RwLock<()> = RwLock::new(());

const THREADS: u64 = 8;
const INCREMENTS: u64 = 10_000;

#[test]
fn concurrent_counter_updates_are_exact() {
    let _on = ENABLE_GATE.read().unwrap();
    let registry = Registry::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = &registry;
            scope.spawn(move || {
                let shared = registry.counter("shared");
                let own = registry.counter(&format!("worker.{t:02}"));
                for _ in 0..INCREMENTS {
                    shared.incr();
                    own.add(2);
                }
            });
        }
    });
    let snapshot = registry.snapshot();
    assert_eq!(snapshot.counter("shared"), THREADS * INCREMENTS);
    for t in 0..THREADS {
        assert_eq!(snapshot.counter(&format!("worker.{t:02}")), 2 * INCREMENTS);
    }
}

#[test]
fn concurrent_timers_and_summaries_lose_no_observations() {
    let _on = ENABLE_GATE.read().unwrap();
    let registry = Registry::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = &registry;
            scope.spawn(move || {
                let timer = registry.timer("work");
                let summary = registry.summary("batch_size");
                for i in 0..1_000u64 {
                    timer.observe(Duration::from_nanos(t + 1));
                    summary.observe(i % 17);
                }
            });
        }
    });
    let snapshot = registry.snapshot();
    let timer = snapshot.timers["work"];
    assert_eq!(timer.count, THREADS * 1_000);
    // Total is the exact sum of per-thread contributions: 1000 * (1+..+8).
    assert_eq!(timer.total_nanos, 1_000 * (THREADS * (THREADS + 1) / 2));
    assert_eq!(timer.max_nanos, THREADS);
    let summary = snapshot.summaries["batch_size"];
    assert_eq!(summary.count, THREADS * 1_000);
    assert_eq!(summary.min, 0);
    assert_eq!(summary.max, 16);
    assert_eq!(summary.buckets.iter().sum::<u64>(), summary.count);
}

#[test]
fn snapshot_order_and_json_are_deterministic_across_registration_order() {
    let _on = ENABLE_GATE.read().unwrap();
    // Two registries populated by threads racing in opposite orders still
    // snapshot identically: iteration order is the sorted name order, not
    // registration order.
    let build = |reverse: bool| {
        let registry = Registry::new();
        std::thread::scope(|scope| {
            let names: Vec<String> = (0..32).map(|i| format!("metric.{i:02}")).collect();
            for chunk in names.chunks(8) {
                let registry = &registry;
                let mut chunk = chunk.to_vec();
                if reverse {
                    chunk.reverse();
                }
                scope.spawn(move || {
                    for name in chunk {
                        registry.counter(&name).add(7);
                    }
                });
            }
        });
        registry.snapshot()
    };
    let forward = build(false);
    let backward = build(true);
    assert_eq!(forward, backward);
    assert_eq!(forward.to_json(), backward.to_json());
    let names: Vec<&String> = forward.counters.keys().collect();
    let mut sorted = names.clone();
    sorted.sort();
    assert_eq!(names, sorted);
}

#[test]
fn concurrent_scoped_writers_sum_exactly_to_the_global_rollup() {
    let _on = ENABLE_GATE.read().unwrap();
    let registry = Registry::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = &registry;
            scope.spawn(move || {
                // Each thread hammers its own session cell plus a shared one.
                let own = registry.scoped(&Scope::new().label("session", &format!("s{t}")));
                let shared = registry.scoped(&Scope::new().label("session", "shared"));
                let own_counter = own.counter("core.released");
                let shared_counter = shared.counter("core.released");
                let own_summary = own.summary("serve.generate_ms");
                for i in 0..INCREMENTS {
                    own_counter.add(3);
                    shared_counter.incr();
                    if i % 100 == 0 {
                        own_summary.observe(i);
                    }
                }
            });
        }
    });
    let snapshot = registry.snapshot();
    // Per-scope cells partition the rollup: summing every cell reproduces the
    // global value exactly — no lost updates, no double counting.
    let cell_sum: u64 = snapshot
        .scopes
        .values()
        .map(|cell| cell.counter("core.released"))
        .sum();
    assert_eq!(cell_sum, snapshot.counter("core.released"));
    assert_eq!(cell_sum, THREADS * INCREMENTS * 4);
    assert_eq!(
        snapshot.scopes["session=shared"].counter("core.released"),
        THREADS * INCREMENTS
    );
    // Summary observation counts partition the same way.
    let summary_sum: u64 = snapshot
        .scopes
        .values()
        .filter_map(|cell| cell.summaries.get("serve.generate_ms"))
        .map(|s| s.count)
        .sum();
    assert_eq!(summary_sum, snapshot.summaries["serve.generate_ms"].count);
    // Scope iteration order is the sorted rendering, deterministically.
    let keys: Vec<&String> = snapshot.scopes.keys().collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
    // And the nested document round-trips.
    let parsed = Snapshot::from_json(&snapshot.to_json()).expect("scoped snapshot parses");
    assert_eq!(parsed, snapshot);
}

#[test]
fn kill_switch_zeroes_scoped_and_trace_overhead() {
    // `set_enabled(false)` must stop every write: global cells, scope cells,
    // and trace commits.  The write lock keeps every enabled-dependent test
    // out while the process-wide flag is down.
    let _exclusive = ENABLE_GATE.write().unwrap();
    let registry = Registry::new();
    let trace = Trace::new(16);
    trace.set_enabled(true);
    let view = registry.scoped(&Scope::new().label("session", "off"));
    let counter = view.counter("c");
    let summary = view.summary("s");
    sgf_metrics::set_enabled(false);
    counter.add(5);
    summary.observe(9);
    let mut batch = TraceBatch::new();
    batch.span("root", SpanId::NONE);
    let committed = trace.commit(batch);
    sgf_metrics::set_enabled(true);
    assert_eq!(committed, 0);
    assert!(trace.events().is_empty());
    let snapshot = registry.snapshot();
    assert_eq!(snapshot.counter("c"), 0);
    assert_eq!(snapshot.scopes["session=off"].counter("c"), 0);
    assert_eq!(snapshot.scopes["session=off"].summaries["s"].count, 0);
    // Back on: the same handles work again.
    counter.incr();
    assert_eq!(counter.cell_value(), 1);
}

#[test]
fn concurrent_trace_commits_keep_batches_contiguous() {
    let _on = ENABLE_GATE.read().unwrap();
    // Batches from racing threads may interleave in arbitrary order, but
    // every batch's spans stay contiguous with intact parent links — commit
    // is atomic per batch.
    let trace = Trace::new(4096);
    trace.set_enabled(true);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let trace = &trace;
            scope.spawn(move || {
                for _ in 0..100 {
                    let mut batch = TraceBatch::new();
                    let root = batch.span("root", SpanId::NONE);
                    batch.label(root, "thread", &format!("{t}"));
                    let child = batch.span("child", root);
                    batch.counter(child, "work", t);
                    trace.commit(batch);
                }
            });
        }
    });
    let events = trace.events();
    assert_eq!(events.len(), (THREADS as usize) * 200);
    for pair in events.chunks(2) {
        assert_eq!(pair.len(), 2, "batches never split");
        assert_eq!(pair[0].name, "root");
        assert_eq!(pair[1].name, "child");
        assert_eq!(pair[1].parent, pair[0].span);
        assert_eq!(pair[1].span, pair[0].span + 1);
        // The child's counter matches the root's thread label: no cross-batch
        // mixing.
        let thread: u64 = pair[0]
            .label("thread")
            .and_then(|v| v.parse().ok())
            .unwrap();
        assert_eq!(pair[1].counter("work"), Some(thread));
    }
}

#[test]
fn snapshot_json_schema_round_trips_through_text() {
    let _on = ENABLE_GATE.read().unwrap();
    let registry = Registry::new();
    registry.counter("core.candidates").add(123_456_789);
    registry.counter("core.released").add(1_000);
    registry
        .timer("core.generate_seconds")
        .observe(Duration::from_micros(2_500));
    let summary = registry.summary("index.posting_len");
    for v in [0u64, 1, 7, 64, 4096, u64::MAX] {
        summary.observe(v);
    }
    let snapshot = registry.snapshot();
    let text = snapshot.to_json();
    let parsed = Snapshot::from_json(&text).expect("canonical snapshot JSON parses");
    assert_eq!(parsed, snapshot);
    assert_eq!(parsed.to_json(), text);
    // Delta against itself is all-zero counts.
    let delta = snapshot.delta(&snapshot);
    assert!(delta.counters.values().all(|v| *v == 0));
    assert!(delta.timers.values().all(|t| t.count == 0));
    assert!(delta.summaries.values().all(|s| s.count == 0));
}
