//! Determinism of the metrics registry under `std::thread::scope`
//! concurrency: counts are exact (no lost updates), snapshot iteration order
//! is canonical, and the JSON schema round-trips.

use sgf_metrics::{Registry, Snapshot};
use std::time::Duration;

const THREADS: u64 = 8;
const INCREMENTS: u64 = 10_000;

#[test]
fn concurrent_counter_updates_are_exact() {
    let registry = Registry::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = &registry;
            scope.spawn(move || {
                let shared = registry.counter("shared");
                let own = registry.counter(&format!("worker.{t:02}"));
                for _ in 0..INCREMENTS {
                    shared.incr();
                    own.add(2);
                }
            });
        }
    });
    let snapshot = registry.snapshot();
    assert_eq!(snapshot.counter("shared"), THREADS * INCREMENTS);
    for t in 0..THREADS {
        assert_eq!(snapshot.counter(&format!("worker.{t:02}")), 2 * INCREMENTS);
    }
}

#[test]
fn concurrent_timers_and_summaries_lose_no_observations() {
    let registry = Registry::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = &registry;
            scope.spawn(move || {
                let timer = registry.timer("work");
                let summary = registry.summary("batch_size");
                for i in 0..1_000u64 {
                    timer.observe(Duration::from_nanos(t + 1));
                    summary.observe(i % 17);
                }
            });
        }
    });
    let snapshot = registry.snapshot();
    let timer = snapshot.timers["work"];
    assert_eq!(timer.count, THREADS * 1_000);
    // Total is the exact sum of per-thread contributions: 1000 * (1+..+8).
    assert_eq!(timer.total_nanos, 1_000 * (THREADS * (THREADS + 1) / 2));
    assert_eq!(timer.max_nanos, THREADS);
    let summary = snapshot.summaries["batch_size"];
    assert_eq!(summary.count, THREADS * 1_000);
    assert_eq!(summary.min, 0);
    assert_eq!(summary.max, 16);
    assert_eq!(summary.buckets.iter().sum::<u64>(), summary.count);
}

#[test]
fn snapshot_order_and_json_are_deterministic_across_registration_order() {
    // Two registries populated by threads racing in opposite orders still
    // snapshot identically: iteration order is the sorted name order, not
    // registration order.
    let build = |reverse: bool| {
        let registry = Registry::new();
        std::thread::scope(|scope| {
            let names: Vec<String> = (0..32).map(|i| format!("metric.{i:02}")).collect();
            for chunk in names.chunks(8) {
                let registry = &registry;
                let mut chunk = chunk.to_vec();
                if reverse {
                    chunk.reverse();
                }
                scope.spawn(move || {
                    for name in chunk {
                        registry.counter(&name).add(7);
                    }
                });
            }
        });
        registry.snapshot()
    };
    let forward = build(false);
    let backward = build(true);
    assert_eq!(forward, backward);
    assert_eq!(forward.to_json(), backward.to_json());
    let names: Vec<&String> = forward.counters.keys().collect();
    let mut sorted = names.clone();
    sorted.sort();
    assert_eq!(names, sorted);
}

#[test]
fn snapshot_json_schema_round_trips_through_text() {
    let registry = Registry::new();
    registry.counter("core.candidates").add(123_456_789);
    registry.counter("core.released").add(1_000);
    registry
        .timer("core.generate_seconds")
        .observe(Duration::from_micros(2_500));
    let summary = registry.summary("index.posting_len");
    for v in [0u64, 1, 7, 64, 4096, u64::MAX] {
        summary.observe(v);
    }
    let snapshot = registry.snapshot();
    let text = snapshot.to_json();
    let parsed = Snapshot::from_json(&text).expect("canonical snapshot JSON parses");
    assert_eq!(parsed, snapshot);
    assert_eq!(parsed.to_json(), text);
    // Delta against itself is all-zero counts.
    let delta = snapshot.delta(&snapshot);
    assert!(delta.counters.values().all(|v| *v == 0));
    assert!(delta.timers.values().all(|t| t.count == 0));
    assert!(delta.summaries.values().all(|s| s.count == 0));
}
