//! The smoke's observability documents are byte-identical across runs.
//!
//! Two fresh `sgf-serve --smoke` processes with identical seeds must write
//! identical `SMOKE_METRICS.json` / `SMOKE_TRACE.json` /
//! `SMOKE_PROVENANCE.json` artifacts: counter-only metrics snapshots,
//! wall-clock-free span trees, and the provenance block are all functions of
//! the request seeds alone.  Separate processes (not threads) because the
//! metrics registry and trace ring are process-global.

use std::path::{Path, PathBuf};
use std::process::Command;

const ARTIFACTS: [&str; 3] = [
    "SMOKE_METRICS.json",
    "SMOKE_TRACE.json",
    "SMOKE_PROVENANCE.json",
];

fn run_smoke(dir: &Path) {
    let status = Command::new(env!("CARGO_BIN_EXE_sgf-serve"))
        .arg("--smoke")
        .env("SGF_BENCH_DIR", dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("spawning sgf-serve --smoke failed");
    assert!(status.success(), "smoke run failed: {status}");
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sgf-smoke-determinism-{}-{tag}",
        std::process::id()
    ));
    // A stale directory from a previous crashed run must not leak old bytes
    // into the comparison.
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("creating artifact dir failed");
    dir
}

#[test]
fn smoke_observability_documents_are_byte_identical_across_runs() {
    let first = fresh_dir("a");
    let second = fresh_dir("b");
    run_smoke(&first);
    run_smoke(&second);
    for name in ARTIFACTS {
        let a = std::fs::read(first.join(name))
            .unwrap_or_else(|e| panic!("first run wrote no {name}: {e}"));
        let b = std::fs::read(second.join(name))
            .unwrap_or_else(|e| panic!("second run wrote no {name}: {e}"));
        assert!(!a.is_empty(), "{name} is empty");
        assert_eq!(
            a, b,
            "{name} differs between two identically-seeded smoke runs"
        );
    }
    let _ = std::fs::remove_dir_all(&first);
    let _ = std::fs::remove_dir_all(&second);
}
