//! A blocking protocol client, used by the test harness, the quickstart
//! example, and the binary's smoke mode.
//!
//! One [`Client`] wraps one TCP connection and speaks the lockstep
//! request/response protocol: send a line, read the response (for `generate`,
//! the header, every record line, and the trailer).  Server-side rejections
//! surface as [`ClientError::Rejected`] with the machine-readable code.

use crate::json::Value;
use crate::protocol::{parse_record_line, GenerateCall, Request, UpdateCall};
use sgf_data::Record;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, or unexpected EOF).
    Io(std::io::Error),
    /// The server answered, but not with the protocol shape we expected.
    Protocol(String),
    /// The server rejected the request.
    Rejected(Rejection),
}

/// A server-side rejection: the machine-readable `code` plus everything else
/// the reject line carried.
#[derive(Debug, Clone)]
pub struct Rejection {
    /// Machine-readable code (see [`crate::protocol::reject`]).
    pub code: String,
    /// Human-readable message.
    pub message: String,
    /// Retry hint attached to `queue_full` rejections, in milliseconds.
    pub retry_after_ms: Option<u64>,
    /// The full reject line for code-specific fields (budgets etc.).
    pub detail: Value,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "transport error: {err}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Rejected(r) => write!(f, "rejected ({}): {}", r.code, r.message),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(err: std::io::Error) -> Self {
        ClientError::Io(err)
    }
}

/// Result alias for client calls.
pub type ClientResult<T> = Result<T, ClientError>;

/// A successful `generate` response.
#[derive(Debug, Clone)]
pub struct Release {
    /// The released records (value indices; schema lives with the session).
    pub records: Vec<Record>,
    /// Released-record count as reported by the server.
    pub released: usize,
    /// Whether the response was streamed.
    pub streaming: bool,
    /// The server's `stats` object for this request.
    pub stats: Value,
    /// The server's cumulative ledger snapshot after this request.
    pub ledger: Value,
    /// The server's provenance block for this request (store kind, request
    /// parameters, ledger before/after, trace span count).
    pub provenance: Value,
}

impl Release {
    /// A named `f64` field of the ledger snapshot (e.g. `total_epsilon`).
    pub fn ledger_f64(&self, key: &str) -> Option<f64> {
        self.ledger.get(key).and_then(Value::as_f64)
    }
}

/// A blocking protocol client over one TCP connection.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> ClientResult<Client> {
        let writer = TcpStream::connect(addr)?;
        // Line-oriented request/response: leaving Nagle on costs a delayed-ACK
        // round trip (~40ms) per call.  Best effort, as on the server side.
        let _ = writer.set_nodelay(true);
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    fn send(&mut self, line: &str) -> ClientResult<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(())
    }

    fn read_value(&mut self) -> ClientResult<Value> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Value::parse(line.trim_end())
            .map_err(|e| ClientError::Protocol(format!("unparseable response line: {e}")))
    }

    /// Check a response line for `"ok":false` and convert it to a rejection.
    fn check_rejection(value: Value) -> ClientResult<Value> {
        if value.get("ok").and_then(Value::as_bool) == Some(false) {
            let code = value
                .get("error")
                .and_then(Value::as_str)
                .unwrap_or("unknown")
                .to_string();
            let message = value
                .get("message")
                .and_then(Value::as_str)
                .unwrap_or_default()
                .to_string();
            let retry_after_ms = value.get("retry_after_ms").and_then(Value::as_u64);
            return Err(ClientError::Rejected(Rejection {
                code,
                message,
                retry_after_ms,
                detail: value,
            }));
        }
        Ok(value)
    }

    /// Run one `generate` call and collect the full response.
    pub fn generate(&mut self, call: &GenerateCall) -> ClientResult<Release> {
        self.send(&call.encode())?;
        let header = Self::check_rejection(self.read_value()?)?;
        let streaming = header
            .get("streaming")
            .and_then(Value::as_bool)
            .ok_or_else(|| ClientError::Protocol("generate header missing `streaming`".into()))?;
        let mut records = Vec::new();
        let mut rejection: Option<ClientError> = None;
        let trailer = loop {
            let line = self.read_value()?;
            if line.get("end").and_then(Value::as_bool) == Some(true) {
                break line;
            }
            if let Some(values) = parse_record_line(&line) {
                records.push(Record::new(values));
                continue;
            }
            match Self::check_rejection(line) {
                // A mid-stream failure still terminates with a trailer; keep
                // draining so the connection stays usable, then report it.
                Err(err) => rejection = Some(err),
                Ok(other) => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected line in generate response: {other:?}"
                    )))
                }
            }
        };
        if let Some(err) = rejection {
            return Err(err);
        }
        let released = trailer
            .get("released")
            .and_then(Value::as_usize)
            .ok_or_else(|| ClientError::Protocol("trailer missing `released`".into()))?;
        if released != records.len() {
            return Err(ClientError::Protocol(format!(
                "trailer reports {released} records but {} arrived",
                records.len()
            )));
        }
        // Batch responses carry stats/ledger/provenance in the header,
        // streams in the trailer.
        let source = if streaming { &trailer } else { &header };
        let stats = source.get("stats").cloned().unwrap_or(Value::Null);
        let ledger = source.get("ledger").cloned().unwrap_or(Value::Null);
        let provenance = source.get("provenance").cloned().unwrap_or(Value::Null);
        Ok(Release {
            records,
            released,
            streaming,
            stats,
            ledger,
            provenance,
        })
    }

    /// Fold a ±record delta into a session (the `update` verb), advancing it
    /// to its next epoch.  Returns the full response line (`epoch`, `seeds`,
    /// `inserts`, `deletes`).
    pub fn update(&mut self, call: &UpdateCall) -> ClientResult<Value> {
        self.send(&call.encode())?;
        Self::check_rejection(self.read_value()?)
    }

    /// Send a raw protocol line and read back one response line — for
    /// protocol tests exercising malformed input; rejections surface as
    /// [`ClientError::Rejected`] like everywhere else.
    pub fn raw_roundtrip(&mut self, line: &str) -> ClientResult<Value> {
        self.send(line)?;
        Self::check_rejection(self.read_value()?)
    }

    /// Fetch the server status object.
    pub fn status(&mut self) -> ClientResult<Value> {
        self.send(&Request::Status.encode())?;
        Self::check_rejection(self.read_value()?)
    }

    /// Fetch a session's ledger object (the full response line).
    pub fn ledger(&mut self, session: &str) -> ClientResult<Value> {
        self.send(
            &Request::Ledger {
                session: session.to_string(),
            }
            .encode(),
        )?;
        Self::check_rejection(self.read_value()?)
    }

    /// Fetch the labeled metrics snapshot (the full response line): the
    /// whole registry, or one session's cell when `session` is given.
    /// `noisy` opts into timers and summaries; the default counter-only
    /// document is deterministic across identically-seeded runs.
    pub fn metrics(&mut self, session: Option<&str>, noisy: bool) -> ClientResult<Value> {
        self.send(
            &Request::Metrics {
                session: session.map(str::to_string),
                noisy,
            }
            .encode(),
        )?;
        Self::check_rejection(self.read_value()?)
    }

    /// Fetch recent trace span trees (the full response line), optionally
    /// restricted to one session's trees.  `noisy` includes wall clocks.
    pub fn trace(&mut self, session: Option<&str>, noisy: bool) -> ClientResult<Value> {
        self.send(
            &Request::Trace {
                session: session.map(str::to_string),
                noisy,
            }
            .encode(),
        )?;
        Self::check_rejection(self.read_value()?)
    }

    /// Ask the server to drain and stop.
    pub fn shutdown(&mut self) -> ClientResult<()> {
        self.send(&Request::Shutdown.encode())?;
        Self::check_rejection(self.read_value()?)?;
        Ok(())
    }
}
