//! The threaded release server: accept loop, bounded admission, worker pool,
//! and graceful drain.
//!
//! ## Request lifecycle
//!
//! 1. A connection reader thread parses one JSON line into a
//!    [`Request`] and assigns it a request id (the key tying its log lines
//!    and trace span together).  `status` / `ledger` / `metrics` / `trace` /
//!    `shutdown` are answered inline; `generate` goes through **admission**:
//!    * a draining server rejects with `shutting_down`;
//!    * a capped session must win an atomic budget reservation
//!      ([`SynthesisSession::try_reserve`]) covering the request's full
//!      target — concurrent requests can therefore never jointly overshoot
//!      the session's (ε, δ) cap, no matter how they interleave;
//!    * the job must fit the bounded queue — a full queue rejects with
//!      `queue_full` and a `retry_after_ms` hint (and releases the
//!      reservation).
//! 2. A worker pops the job, runs the session's generate path (batch or
//!    streaming, seed or marginal model), settles the reservation (actual
//!    releases committed, unused budget freed; aborted on failure), and
//!    writes the response to the job's connection.
//! 3. `shutdown` (or [`ServerHandle::shutdown`]) starts the drain: admission
//!    closes, queued jobs still complete, workers then exit, and
//!    [`ServerHandle::join`] returns once every thread is down.

use crate::protocol::{
    self, reject, GenerateCall, ModelKind, Request, UpdateCall, DEFAULT_SESSION,
};
use crate::queue::{BoundedQueue, PushError};
use sgf_core::{CoreError, ReleaseReport, SynthesisSession};
use sgf_data::DatasetDelta;
use sgf_metrics::{Scope, SpanId, Trace, TraceBatch};
use sgf_stats::DpBudget;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Maximum queued (admitted but not yet running) generate requests;
    /// beyond it, requests are rejected with `queue_full`.
    pub queue_capacity: usize,
    /// Worker threads executing generate requests.
    pub workers: usize,
    /// The retry hint attached to `queue_full` rejections.
    pub retry_after_ms: u64,
    /// Artificial minimum service time per generate request — a test/chaos
    /// knob making queue backpressure deterministic to exercise; `None` in
    /// production.
    pub service_delay: Option<Duration>,
    /// Request folding: a worker that pops a generate job also drains queued
    /// jobs for the *same session* and serves the whole fold in one turn, so
    /// the fused sweep runs against a warm class-match cache and the queue
    /// wakes fewer threads.  Folding never reorders a session's admitted
    /// jobs, never crosses sessions, and each folded request still gets its
    /// own response, reservation settlement, and service-time observation —
    /// per-request outputs are byte-identical to an unfolded run.
    ///
    /// `None` (the default) folds **adaptively** from the queue depth the
    /// worker observes at pop time: an empty queue never folds (sequential
    /// traffic is served one-for-one, byte-identical to a fold-free server,
    /// with no fold metrics or spans), and a backed-up queue folds up to
    /// [`MAX_ADAPTIVE_FOLD`] jobs per turn.  `Some(n)` overrides with a fixed
    /// cap (`Some(1)` disables folding entirely; `Some(0)` is treated as 1).
    pub max_fold: Option<usize>,
    /// Turn the process-wide deterministic trace ring on at startup, so the
    /// `trace` verb has spans to report.  (Never turned back off: the ring
    /// is shared, so one server must not blind another.)
    pub trace: bool,
    /// Emit one structured JSON log line per request (with its request id)
    /// to stderr: parse failures, admission outcomes, and completions.
    pub log_requests: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            queue_capacity: 32,
            workers: 4,
            retry_after_ms: 50,
            service_delay: None,
            max_fold: None,
            trace: true,
            log_requests: false,
        }
    }
}

/// One session offered by the server.
#[derive(Debug, Clone)]
pub struct SessionEntry {
    /// The name `generate`/`ledger` requests address it by.
    pub name: String,
    /// A handle to the trained session (clones share models, index, ledger).
    pub session: SynthesisSession,
    /// Per-session (ε, δ) cap enforced at admission; `None` serves uncapped.
    pub cap: Option<DpBudget>,
}

impl SessionEntry {
    /// Serve `session` under the [`DEFAULT_SESSION`] name, uncapped.
    pub fn new(session: SynthesisSession) -> Self {
        SessionEntry {
            name: DEFAULT_SESSION.to_string(),
            session,
            cap: None,
        }
    }

    /// Name the session.
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// Cap the session's cumulative worst-case (ε, δ).
    pub fn capped(mut self, cap: DpBudget) -> Self {
        self.cap = Some(cap);
        self
    }
}

/// The smallest cap that admits `releases` records from `session` (with a
/// hair of multiplicative slack), for cap sizing in tests and demos.
///
/// Exact-admission counting additionally requires the composed release
/// budget at `releases` records to dominate the session's model budget —
/// otherwise the cap is the model budget and admits more.  Returns `None`
/// under the deterministic privacy test (no finite cap admits anything).
pub fn cap_admitting(session: &SynthesisSession, releases: usize) -> Option<DpBudget> {
    session.per_release_budget()?;
    // Derive the cap from the exact formula admission checks
    // (BudgetLedger::total_for_releases), so the two can never desync.
    let total = session.ledger().total_for_releases(releases);
    Some(DpBudget::new(
        total.epsilon * (1.0 + 1e-9),
        (total.delta * (1.0 + 1e-9)).min(1.0),
    ))
}

/// The largest fold an adaptive worker turn coalesces, however deep the
/// queue is (matches the old fixed default).
pub const MAX_ADAPTIVE_FOLD: usize = 8;

/// A registered session slot.  The handle sits behind a mutex so the
/// `update` verb can swap in the next session epoch while requests already
/// holding a clone keep serving the epoch they were admitted against; every
/// reader takes a cheap clone (shared `Arc` internals) and releases the lock
/// immediately.
struct Registered {
    session: Mutex<SynthesisSession>,
    cap: Option<DpBudget>,
}

impl Registered {
    /// Clone the current epoch's handle (models, stores, and the ledger are
    /// shared `Arc`s — this never copies trained state).
    fn session(&self) -> SynthesisSession {
        locked(&self.session).clone()
    }
}

/// An admitted-but-unsettled budget reservation: aborts on drop unless the
/// worker takes it over (so a job dropped on the floor — queue overflow,
/// forced teardown — can never leak reserved budget).
struct ReservationGuard {
    session: SynthesisSession,
    records: usize,
    armed: bool,
}

impl ReservationGuard {
    fn new(session: SynthesisSession, records: usize) -> Self {
        ReservationGuard {
            session,
            records,
            armed: true,
        }
    }

    /// Disarm the guard and hand the reservation to the caller, which now
    /// owes exactly one commit or abort.
    fn take(mut self) -> usize {
        self.armed = false;
        self.records
    }
}

impl Drop for ReservationGuard {
    fn drop(&mut self) {
        if self.armed {
            self.session.abort_reservation(self.records);
        }
    }
}

/// One admitted generate request waiting for a worker.
struct Job {
    session: SynthesisSession,
    call: GenerateCall,
    reservation: Option<ReservationGuard>,
    out: Arc<Mutex<TcpStream>>,
    /// Server-assigned id tying the job's log lines and trace span together.
    request_id: u64,
}

struct ServerState {
    sessions: HashMap<String, Registered>,
    queue: BoundedQueue<Job>,
    draining: AtomicBool,
    busy_workers: AtomicUsize,
    workers: usize,
    retry_after_ms: u64,
    service_delay: Option<Duration>,
    max_fold: Option<usize>,
    log_requests: bool,
    addr: SocketAddr,
    next_request_id: AtomicU64,
    next_conn_id: AtomicU64,
    /// Clones of the *live* connections, keyed by connection id, for
    /// disconnecting reader threads at teardown.  Each connection removes its
    /// own entry when it closes, so a long-lived server does not accumulate
    /// dead file descriptors.
    conns: Mutex<HashMap<u64, TcpStream>>,
    /// Reader threads; finished handles are reaped on every accept.
    reader_handles: Mutex<Vec<JoinHandle<()>>>,
}

impl ServerState {
    /// Idempotently start the drain: close admission, let queued jobs finish,
    /// and wake the accept loop so it can exit.
    fn begin_drain(&self) {
        if self.draining.swap(true, Ordering::SeqCst) {
            return;
        }
        self.finish_drain();
    }

    /// The drain machinery behind the admission flag: close the queue and
    /// wake the blocking `accept` with a throwaway connection.
    fn finish_drain(&self) {
        self.queue.close();
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running server: the bound address plus the handles needed to stop it.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Programmatic equivalent of the `shutdown` verb: start the drain.
    pub fn shutdown(&self) {
        self.state.begin_drain();
    }

    /// Wait for the server to finish: returns once the drain completes and
    /// every accept / worker / connection thread has exited.  (Blocks until
    /// something — the `shutdown` verb or [`ServerHandle::shutdown`] —
    /// starts the drain.)
    pub fn join(self) -> std::io::Result<()> {
        join_thread(self.accept)?;
        for worker in self.workers {
            join_thread(worker)?;
        }
        // Workers are done; disconnect lingering clients so their reader
        // threads observe EOF and exit.
        for (_, conn) in locked(&self.state.conns).drain() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        let readers: Vec<_> = locked(&self.state.reader_handles).drain(..).collect();
        for reader in readers {
            join_thread(reader)?;
        }
        Ok(())
    }
}

/// Lock a server-state mutex, tolerating poison (R3: panic-free serving).
///
/// Every protected structure here stays consistent across a panicking
/// holder: the conns map and reader-handle list only see single
/// insert/remove/drain/push operations, and a `TcpStream` at worst carries
/// a truncated line, which the client-side framing already treats as a
/// broken connection.  Propagating the poison (what `.expect()` did) would
/// instead cascade one worker's panic into every thread that touches the
/// lock, turning one lost request into a dead server.
fn locked<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

fn join_thread(handle: JoinHandle<()>) -> std::io::Result<()> {
    handle
        .join()
        .map_err(|_| std::io::Error::other("server thread panicked"))
}

/// Bind and start serving `sessions` under `config`; returns immediately.
pub fn serve(config: ServeConfig, sessions: Vec<SessionEntry>) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    if config.trace {
        sgf_metrics::trace().set_enabled(true);
    }
    let mut map = HashMap::new();
    for entry in sessions {
        // Every metric a session's requests emit lands in its own labeled
        // cell (plus the global rollup) — the `metrics` verb's per-session
        // view and the p95 retry hint both read that cell.
        let scoped = entry.session.with_scope(session_scope(&entry.name));
        map.insert(
            entry.name,
            Registered {
                session: Mutex::new(scoped),
                cap: entry.cap,
            },
        );
    }
    let workers = config.workers.max(1);
    let state = Arc::new(ServerState {
        sessions: map,
        queue: BoundedQueue::new(config.queue_capacity),
        draining: AtomicBool::new(false),
        busy_workers: AtomicUsize::new(0),
        workers,
        retry_after_ms: config.retry_after_ms,
        service_delay: config.service_delay,
        max_fold: config.max_fold,
        log_requests: config.log_requests,
        addr,
        next_request_id: AtomicU64::new(1),
        next_conn_id: AtomicU64::new(0),
        conns: Mutex::new(HashMap::new()),
        reader_handles: Mutex::new(Vec::new()),
    });
    let worker_handles = (0..workers)
        .map(|_| {
            let state = Arc::clone(&state);
            std::thread::spawn(move || worker_loop(&state))
        })
        .collect();
    let accept_state = Arc::clone(&state);
    let accept = std::thread::spawn(move || accept_loop(listener, &accept_state));
    Ok(ServerHandle {
        addr,
        state,
        accept,
        workers: worker_handles,
    })
}

fn accept_loop(listener: TcpListener, state: &Arc<ServerState>) {
    for conn in listener.incoming() {
        if state.draining.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else {
            // Transient accept failure (e.g. fd pressure): back off instead
            // of spinning on the error.
            std::thread::sleep(Duration::from_millis(10));
            continue;
        };
        reap_finished_readers(state);
        // The protocol is small request/response lines; Nagle + delayed ACK
        // would add a ~40ms floor to every round trip on loopback.  Best
        // effort: a socket that rejects the option still works, just slower.
        let _ = stream.set_nodelay(true);
        let conn_id = state.next_conn_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            locked(&state.conns).insert(conn_id, clone);
        }
        let conn_state = Arc::clone(state);
        let handle = std::thread::spawn(move || {
            connection_loop(stream, &conn_state);
            // The client is gone: release the teardown clone (and its fd).
            locked(&conn_state.conns).remove(&conn_id);
        });
        locked(&state.reader_handles).push(handle);
    }
}

/// Join (and drop) reader threads that already exited, bounding the handle
/// list to live connections plus recent churn.
fn reap_finished_readers(state: &ServerState) {
    let mut handles = locked(&state.reader_handles);
    let (finished, live): (Vec<_>, Vec<_>) =
        handles.drain(..).partition(|handle| handle.is_finished());
    *handles = live;
    drop(handles);
    for handle in finished {
        let _ = handle.join();
    }
}

fn connection_loop(stream: TcpStream, state: &Arc<ServerState>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let out = Arc::new(Mutex::new(stream));
    for line in BufReader::new(read_half).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        handle_line(&line, &out, state);
    }
}

/// Write `text` (already `\n`-terminated) as one atomic unit on `out`.
fn write_response(out: &Mutex<TcpStream>, text: &str) {
    let mut stream = locked(out);
    let _ = stream.write_all(text.as_bytes());
    let _ = stream.flush();
}

fn write_line(out: &Mutex<TcpStream>, line: &str) {
    write_response(out, &format!("{line}\n"));
}

/// The scope labeling everything a session's requests emit.  Keep this the
/// single construction site: the registration wrap, the `metrics` cell
/// lookup, the retry hint, and the worker's service-time summary must all
/// agree on the rendered key.
fn session_scope(name: &str) -> Scope {
    Scope::new().label("session", name)
}

/// One structured JSON log line on stderr (when `log_requests` is on).
/// Never `eprintln!`: a closed stderr must not panic a server thread (R3).
fn log_request(state: &ServerState, request_id: u64, verb: &str, session: &str, outcome: &str) {
    if !state.log_requests {
        return;
    }
    let _ = writeln!(
        std::io::stderr().lock(),
        "{{\"log\":\"serve.request\",\"request_id\":{},\"verb\":\"{}\",\"session\":\"{}\",\"outcome\":\"{}\"}}",
        request_id,
        crate::json::escape(verb),
        crate::json::escape(session),
        crate::json::escape(outcome),
    );
}

fn handle_line(line: &str, out: &Arc<Mutex<TcpStream>>, state: &Arc<ServerState>) {
    let request_id = state.next_request_id.fetch_add(1, Ordering::Relaxed);
    match protocol::parse_request(line) {
        Err(message) => {
            log_request(state, request_id, "?", "", "bad_request");
            write_line(
                out,
                &protocol::reject_line(reject::BAD_REQUEST, &message, &[]),
            );
        }
        Ok(Request::Status) => {
            log_request(state, request_id, "status", "", "ok");
            write_line(out, &status_line(state));
        }
        Ok(Request::Ledger { session }) => match state.sessions.get(&session) {
            None => {
                log_request(state, request_id, "ledger", &session, "unknown_session");
                write_line(out, &unknown_session_line(&session));
            }
            Some(registered) => {
                log_request(state, request_id, "ledger", &session, "ok");
                write_line(out, &ledger_line(&session, registered));
            }
        },
        Ok(Request::Metrics { session, noisy }) => {
            log_request(
                state,
                request_id,
                "metrics",
                session.as_deref().unwrap_or(""),
                "ok",
            );
            write_line(out, &metrics_line(state, session.as_deref(), noisy));
        }
        Ok(Request::Trace { session, noisy }) => {
            log_request(
                state,
                request_id,
                "trace",
                session.as_deref().unwrap_or(""),
                "ok",
            );
            write_line(out, &trace_line(state, session.as_deref(), noisy));
        }
        Ok(Request::Shutdown) => {
            log_request(state, request_id, "shutdown", "", "draining");
            // Admission closes before the ack (a client that read the ack is
            // guaranteed `shutting_down` on any later request), but the drain
            // machinery — whose teardown eventually closes this connection —
            // starts only after the ack is on the wire, so the ack cannot be
            // lost to the teardown racing this write.
            let already_draining = state.draining.swap(true, Ordering::SeqCst);
            write_line(out, "{\"ok\":true,\"verb\":\"shutdown\",\"draining\":true}");
            if !already_draining {
                state.finish_drain();
            }
        }
        Ok(Request::Generate(call)) => admit_generate(call, request_id, out, state),
        Ok(Request::Update(call)) => admit_update(call, request_id, out, state),
    }
}

/// The `update` verb: fold a ±record delta into a registered session,
/// advancing it to its next epoch.  Admission runs the same gates as
/// `generate` — a draining server rejects with `shutting_down`, an unknown
/// name with `unknown_session` — and the swap holds the session slot's lock
/// for the whole update, so concurrent updates serialize and every generate
/// request is served by exactly one epoch (the one whose handle it cloned at
/// admission; in-flight requests finish against their admitted epoch).
fn admit_update(
    call: UpdateCall,
    request_id: u64,
    out: &Arc<Mutex<TcpStream>>,
    state: &Arc<ServerState>,
) {
    if state.draining.load(Ordering::SeqCst) {
        log_request(state, request_id, "update", &call.session, "shutting_down");
        write_line(
            out,
            &protocol::reject_line(reject::SHUTTING_DOWN, "server is draining", &[]),
        );
        return;
    }
    let Some(registered) = state.sessions.get(&call.session) else {
        log_request(
            state,
            request_id,
            "update",
            &call.session,
            "unknown_session",
        );
        write_line(out, &unknown_session_line(&call.session));
        return;
    };
    let scope = session_scope(&call.session);
    // Hold the slot for the whole update: admissions for this session wait
    // (milliseconds — the update is O(|delta|)), and the epoch swap is atomic
    // with respect to them.
    let mut slot = locked(&registered.session);
    let delta = {
        // The delta validates against the session's schema; a record of the
        // wrong arity or with out-of-domain values is a bad request, not a
        // failed update.
        let schema = slot.seeds().schema_arc();
        let mut delta = DatasetDelta::new(schema);
        let mut malformed = Ok(());
        for record in &call.deletes {
            if let Err(err) = delta.delete(record.clone()) {
                malformed = Err(err);
                break;
            }
        }
        if malformed.is_ok() {
            for record in &call.inserts {
                if let Err(err) = delta.insert(record.clone()) {
                    malformed = Err(err);
                    break;
                }
            }
        }
        match malformed {
            Ok(()) => delta,
            Err(err) => {
                drop(slot);
                log_request(state, request_id, "update", &call.session, "bad_request");
                write_line(
                    out,
                    &protocol::reject_line(reject::BAD_REQUEST, &err.to_string(), &[]),
                );
                return;
            }
        }
    };
    match slot.update(&delta) {
        Ok(next) => {
            let epoch = next.epoch();
            let seeds = next.seeds().len();
            *slot = next;
            drop(slot);
            sgf_metrics::scoped(&scope).counter("serve.updates").incr();
            log_request(state, request_id, "update", &call.session, "ok");
            write_line(
                out,
                &format!(
                    "{{\"ok\":true,\"verb\":\"update\",\"session\":\"{}\",\"epoch\":{},\
                     \"seeds\":{},\"inserts\":{},\"deletes\":{}}}",
                    crate::json::escape(&call.session),
                    epoch,
                    seeds,
                    call.inserts.len(),
                    call.deletes.len()
                ),
            );
        }
        Err(err) => {
            drop(slot);
            sgf_metrics::scoped(&scope)
                .counter("serve.update_failed")
                .incr();
            log_request(state, request_id, "update", &call.session, "update_failed");
            write_line(
                out,
                &protocol::reject_line(reject::UPDATE_FAILED, &err.to_string(), &[]),
            );
        }
    }
}

/// Answer the `metrics` verb: the labeled snapshot of the process registry —
/// counter-only (deterministic) unless `noisy` — either whole (global rollup
/// plus every scope cell) or restricted to one registered session's cell.
fn metrics_line(state: &ServerState, session: Option<&str>, noisy: bool) -> String {
    let snapshot = sgf_metrics::global().snapshot();
    let snapshot = if noisy {
        snapshot
    } else {
        snapshot.counters_only()
    };
    match session {
        None => format!(
            "{{\"ok\":true,\"verb\":\"metrics\",\"noisy\":{},\"metrics\":{}}}",
            noisy,
            snapshot.to_json()
        ),
        Some(name) => {
            if !state.sessions.contains_key(name) {
                return unknown_session_line(name);
            }
            // A registered session that has served nothing yet has no cell;
            // answer with an empty snapshot rather than a rejection.
            let cell = snapshot
                .scopes
                .get(&session_scope(name).render())
                .cloned()
                .unwrap_or_default();
            format!(
                "{{\"ok\":true,\"verb\":\"metrics\",\"session\":\"{}\",\"noisy\":{},\"metrics\":{}}}",
                crate::json::escape(name),
                noisy,
                cell.to_json()
            )
        }
    }
}

/// Answer the `trace` verb: recent span trees from the deterministic trace
/// ring — all of them, or only the trees rooted at spans labeled with the
/// requested session.  Wall clocks are omitted unless `noisy`.
fn trace_line(state: &ServerState, session: Option<&str>, noisy: bool) -> String {
    let trace = sgf_metrics::trace();
    let (filter, events) = match session {
        None => (String::new(), trace.events()),
        Some(name) => {
            if !state.sessions.contains_key(name) {
                return unknown_session_line(name);
            }
            // Trace labels carry the scope-sanitized session name.
            let scope = session_scope(name);
            let value = scope.get("session").unwrap_or(name);
            (
                format!(",\"session\":\"{}\"", crate::json::escape(name)),
                trace.events_with_label("session", value),
            )
        }
    };
    format!(
        "{{\"ok\":true,\"verb\":\"trace\"{},\"noisy\":{},\"enabled\":{},\"trace\":{}}}",
        filter,
        noisy,
        trace.enabled(),
        Trace::events_json(&events, noisy).render()
    )
}

fn status_line(state: &ServerState) -> String {
    let mut names: Vec<&str> = state.sessions.keys().map(String::as_str).collect();
    names.sort_unstable();
    let sessions = names
        .iter()
        .map(|n| format!("\"{}\"", crate::json::escape(n)))
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"ok\":true,\"verb\":\"status\",\"draining\":{},\"queue_depth\":{},\
         \"queue_capacity\":{},\"busy_workers\":{},\"workers\":{},\"connections\":{},\
         \"sessions\":[{}]}}",
        state.draining.load(Ordering::SeqCst),
        state.queue.len(),
        state.queue.capacity(),
        state.busy_workers.load(Ordering::SeqCst),
        state.workers,
        locked(&state.conns).len(),
        sessions
    )
}

fn unknown_session_line(session: &str) -> String {
    protocol::reject_line(
        reject::UNKNOWN_SESSION,
        &format!("no session named `{session}` is registered"),
        &[("session", format!("\"{}\"", crate::json::escape(session)))],
    )
}

fn ledger_line(name: &str, registered: &Registered) -> String {
    let (cap_epsilon, cap_delta) = match registered.cap {
        Some(cap) => (protocol::num(cap.epsilon), protocol::num(cap.delta)),
        None => ("null".to_string(), "null".to_string()),
    };
    format!(
        "{{\"ok\":true,\"verb\":\"ledger\",\"session\":\"{}\",\"ledger\":{},\
         \"cap_epsilon\":{},\"cap_delta\":{}}}",
        crate::json::escape(name),
        registered.session().ledger().to_json(),
        cap_epsilon,
        cap_delta
    )
}

/// The `retry_after_ms` hint for a full queue: the session's observed p95
/// generate latency (from its scoped `serve.generate_ms` summary), falling
/// back to the configured constant until at least one request completed.
/// Honest backpressure: a client retrying after one typical service time
/// finds a queue slot with high probability.
///
/// Reads the scope cell through the **non-allocating** lookup: the session
/// name ultimately comes off the wire, and the allocating `scoped()` would
/// let a flood of bogus names permanently grow the process-global registry —
/// a scope cell may only ever be created for a registered session.
fn retry_hint_ms(state: &ServerState, session: &str) -> u64 {
    let observed = sgf_metrics::scoped_existing(&session_scope(session))
        .map(|view| view.summary("serve.generate_ms").cell_stats());
    match observed {
        Some(stats) if stats.count > 0 => stats.quantile_upper_bound(0.95).max(1),
        _ => state.retry_after_ms,
    }
}

/// Admission control for one generate request: drain check, atomic budget
/// reservation, bounded-queue push — each failure is a machine-readable
/// rejection, and a reservation never outlives a failed admission.
fn admit_generate(
    call: GenerateCall,
    request_id: u64,
    out: &Arc<Mutex<TcpStream>>,
    state: &Arc<ServerState>,
) {
    if state.draining.load(Ordering::SeqCst) {
        log_request(
            state,
            request_id,
            "generate",
            &call.session,
            "shutting_down",
        );
        write_line(
            out,
            &protocol::reject_line(reject::SHUTTING_DOWN, "server is draining", &[]),
        );
        return;
    }
    let Some(registered) = state.sessions.get(&call.session) else {
        log_request(
            state,
            request_id,
            "generate",
            &call.session,
            "unknown_session",
        );
        write_line(out, &unknown_session_line(&call.session));
        return;
    };
    let scope = session_scope(&call.session);
    // Clone the current epoch's handle once: the reservation, the queued job,
    // and the eventual generate all run against this epoch even if an
    // `update` swaps the slot while the job is queued (the shared ledger
    // keeps budget accounting exact across epochs).
    let session = registered.session();
    let reservation = match registered.cap {
        None => None,
        Some(cap) => match session.try_reserve(call.request.target, cap) {
            Ok(()) => Some(ReservationGuard::new(session.clone(), call.request.target)),
            Err(CoreError::BudgetCapExceeded { requested, cap }) => {
                sgf_metrics::scoped(&scope)
                    .counter("serve.rejected_budget")
                    .incr();
                log_request(
                    state,
                    request_id,
                    "generate",
                    &call.session,
                    "budget_exhausted",
                );
                write_line(
                    out,
                    &protocol::reject_line(
                        reject::BUDGET_EXHAUSTED,
                        "admitting the request would exceed the session budget cap",
                        &[
                            ("requested_epsilon", protocol::num(requested.epsilon)),
                            ("requested_delta", protocol::num(requested.delta)),
                            ("cap_epsilon", protocol::num(cap.epsilon)),
                            ("cap_delta", protocol::num(cap.delta)),
                        ],
                    ),
                );
                return;
            }
            Err(err) => {
                log_request(state, request_id, "generate", &call.session, "bad_request");
                write_line(
                    out,
                    &protocol::reject_line(reject::BAD_REQUEST, &err.to_string(), &[]),
                );
                return;
            }
        },
    };
    let session_name = call.session.clone();
    let job = Job {
        session,
        call,
        reservation,
        out: Arc::clone(out),
        request_id,
    };
    match state.queue.try_push(job) {
        Ok(()) => {
            sgf_metrics::scoped(&scope).counter("serve.admitted").incr();
            log_request(state, request_id, "generate", &session_name, "admitted");
        }
        Err(PushError::Full(job)) => {
            sgf_metrics::scoped(&scope)
                .counter("serve.rejected_queue_full")
                .incr();
            log_request(
                state,
                request_id,
                "generate",
                &job.call.session,
                "queue_full",
            );
            // Dropping the job aborts its reservation (guard).
            let out = Arc::clone(&job.out);
            let retry_after = retry_hint_ms(state, &job.call.session);
            drop(job);
            write_line(
                &out,
                &protocol::reject_line(
                    reject::QUEUE_FULL,
                    "request queue is full, retry later",
                    &[("retry_after_ms", retry_after.to_string())],
                ),
            );
        }
        Err(PushError::Closed(job)) => {
            log_request(
                state,
                request_id,
                "generate",
                &job.call.session,
                "shutting_down",
            );
            let out = Arc::clone(&job.out);
            drop(job);
            write_line(
                &out,
                &protocol::reject_line(reject::SHUTTING_DOWN, "server is draining", &[]),
            );
        }
    }
}

/// Folded-batch membership shared by every job of one coalesced worker turn.
/// Only materialized for real folds (size > 1), so unfolded traffic —
/// including the sequential smoke — renders byte-identical responses to a
/// server without folding.
struct FoldInfo {
    /// Request ids of the fold's members, in service order.
    members: Vec<u64>,
}

fn worker_loop(state: &Arc<ServerState>) {
    while let Some(job) = state.queue.pop() {
        state.busy_workers.fetch_add(1, Ordering::SeqCst);
        // Coalescing: fold queued same-session jobs into this service turn.
        // Draining happens only at pop time — admission, capacity accounting,
        // and backpressure semantics are untouched — and the fold preserves
        // the session's admitted order, so per-request outputs stay exactly
        // what the unfolded worker would have produced; the fused sweep just
        // runs against a class-match cache the earlier members warmed.
        //
        // The fold cap adapts to pressure unless a fixed override is set: the
        // queue depth observed right after the pop (the jobs still waiting)
        // is exactly how far behind this worker is, so an empty queue folds
        // nothing — sequential traffic stays a strict one-request-per-turn
        // server — and a backlog folds up to MAX_ADAPTIVE_FOLD jobs at once.
        let fold_cap = match state.max_fold {
            Some(fixed) => fixed.max(1),
            None => {
                let cap = state.queue.len().min(MAX_ADAPTIVE_FOLD - 1) + 1;
                if cap > 1 {
                    sgf_metrics::summary("serve.adaptive_fold_cap").observe(cap as u64);
                }
                cap
            }
        };
        let folded = if fold_cap > 1 {
            state.queue.drain_matching(
                |queued| queued.call.session == job.call.session,
                fold_cap - 1,
            )
        } else {
            Vec::new()
        };
        let fold = if folded.is_empty() {
            None
        } else {
            let members: Vec<u64> = std::iter::once(job.request_id)
                .chain(folded.iter().map(|j| j.request_id))
                .collect();
            record_fold(&job.call.session, &members);
            Some(FoldInfo { members })
        };
        for job in std::iter::once(job).chain(folded) {
            // The injected delay is part of the simulated service time, so
            // the clock starts before it: the p95 retry hint must reflect
            // what a client actually waits for.
            let started = Instant::now();
            if let Some(delay) = state.service_delay {
                std::thread::sleep(delay);
            }
            let session_name = job.call.session.clone();
            let request_id = job.request_id;
            let streaming = job.call.stream;
            sgf_metrics::timer("serve.job").time(|| serve_job(job, fold.as_ref()));
            observe_service_time(
                state,
                &session_name,
                request_id,
                streaming,
                started.elapsed(),
            );
        }
        state.busy_workers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Observability for one real fold (size > 1): the session-scoped
/// `serve.folds` / `serve.folded_requests` counters plus a `serve.fold` span
/// recording the batch size and first member.  Strictly before the fold is
/// served — and never emitted for unfolded traffic, so deterministic
/// sequential runs see no new metrics or spans at all.
fn record_fold(session_name: &str, members: &[u64]) {
    let scope = session_scope(session_name);
    let view = sgf_metrics::scoped(&scope);
    view.counter("serve.folds").incr();
    view.counter("serve.folded_requests")
        .add(members.len().saturating_sub(1) as u64);
    let trace = sgf_metrics::trace();
    if trace.enabled() {
        let mut batch = TraceBatch::new();
        let root = batch.span("serve.fold", SpanId::NONE);
        batch.scope_labels(root, &scope);
        batch.counter(root, "fold_size", members.len() as u64);
        if let Some(&first) = members.first() {
            batch.counter(root, "first_request_id", first);
        }
        trace.commit(batch);
    }
}

/// Post-job observability: feed the session's observed service time into its
/// scoped `serve.generate_ms` summary (the source of the p95 retry hint),
/// commit a `serve.job` span to the trace ring, and log the completion.
/// Strictly after the job ran — none of this can perturb the release path.
fn observe_service_time(
    state: &ServerState,
    session_name: &str,
    request_id: u64,
    streaming: bool,
    elapsed: Duration,
) {
    let scope = session_scope(session_name);
    let millis = u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX);
    sgf_metrics::scoped(&scope)
        .summary("serve.generate_ms")
        .observe(millis);
    let trace = sgf_metrics::trace();
    if trace.enabled() {
        let mut batch = TraceBatch::new();
        let root = batch.span("serve.job", SpanId::NONE);
        batch.scope_labels(root, &scope);
        batch.label(root, "mode", if streaming { "stream" } else { "batch" });
        batch.counter(root, "request_id", request_id);
        batch.wall(root, elapsed);
        trace.commit(batch);
    }
    log_request(state, request_id, "generate", session_name, "done");
}

fn serve_job(job: Job, fold: Option<&FoldInfo>) {
    let Job {
        session,
        call,
        reservation,
        out,
        request_id,
    } = job;
    // The worker takes over the reservation: from here, the generate path (or
    // the explicit abort on the streaming path) settles it exactly once.
    let reserved = reservation.map(ReservationGuard::take);
    let fold = fold.map(|info| (info, request_id));
    if call.stream {
        serve_stream(&session, call, reserved, fold, &out);
    } else {
        serve_batch(&session, &call, reserved, fold, &out);
    }
}

/// Inject folded-batch membership into a rendered provenance JSON object:
/// `{"fold":{"size":N,"request_id":R,"members":[..]},<original fields>}`.
/// Identity for unfolded requests, so their provenance bytes are unchanged.
fn provenance_with_fold(provenance: &str, fold: Option<(&FoldInfo, u64)>) -> String {
    let Some((info, request_id)) = fold else {
        return provenance.to_string();
    };
    let members = info
        .members
        .iter()
        .map(|id| id.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let fold_field = format!(
        "\"fold\":{{\"size\":{},\"request_id\":{},\"members\":[{}]}}",
        info.members.len(),
        request_id,
        members
    );
    match provenance.strip_prefix('{') {
        Some("}") => format!("{{{fold_field}}}"),
        Some(body) => format!("{{{fold_field},{body}"),
        // Not an object (defensive): leave the rendering untouched rather
        // than corrupt it.
        None => provenance.to_string(),
    }
}

fn serve_batch(
    session: &SynthesisSession,
    call: &GenerateCall,
    reserved: Option<usize>,
    fold: Option<(&FoldInfo, u64)>,
    out: &Mutex<TcpStream>,
) {
    let result: sgf_core::Result<ReleaseReport> = match (call.model, reserved) {
        (ModelKind::Seed, None) => session.generate(&call.request),
        (ModelKind::Seed, Some(r)) => session.generate_reserved(r, &call.request),
        (ModelKind::Marginal, None) => {
            session.generate_with(&session.models().marginal, &call.request)
        }
        (ModelKind::Marginal, Some(r)) => {
            session.generate_reserved_with(&session.models().marginal, r, &call.request)
        }
    };
    match result {
        Err(err) => write_line(
            out,
            &protocol::reject_line(reject::GENERATE_FAILED, &err.to_string(), &[]),
        ),
        Ok(report) => {
            let mut text = protocol::batch_header_line(
                report.stats.released,
                &report.stats.to_json(),
                report.request_budget().epsilon,
                &report.ledger.to_json(),
                &provenance_with_fold(&report.provenance_json().render(), fold),
            );
            text.push('\n');
            for record in report.synthetics.records() {
                text.push_str(&protocol::record_line(record));
                text.push('\n');
            }
            text.push_str(&protocol::batch_end_line(report.stats.released));
            text.push('\n');
            write_response(out, &text);
        }
    }
}

/// Settle the part of a stream's reservation it did not convert into
/// releases.  An over-delivering stream (`released > reserved`) breaks the
/// reservation invariant — the ledger may now undercount the session's
/// worst case — so beyond settling to zero (never underflow-panicking the
/// worker), the violation is made observable: a `serve.over_delivered`
/// counter tick plus one structured warning line on stderr.
fn settle_stream_reservation(session: &SynthesisSession, reserved: usize, released: usize) {
    if released > reserved {
        sgf_metrics::counter("serve.over_delivered").incr();
        // Never `eprintln!`: a closed stderr must not panic a worker (R3).
        let _ = writeln!(
            std::io::stderr().lock(),
            "{{\"log\":\"serve.over_delivered\",\"reserved\":{reserved},\"released\":{released}}}",
        );
    }
    session.abort_reservation(reserved.saturating_sub(released));
}

fn serve_stream(
    session: &SynthesisSession,
    call: GenerateCall,
    reserved: Option<usize>,
    fold: Option<(&FoldInfo, u64)>,
    out: &Mutex<TcpStream>,
) {
    if call.model == ModelKind::Marginal {
        // Streaming runs through the session's ReleaseIter, which is bound to
        // the seed synthesizer; keep the protocol surface honest about it.
        if let Some(r) = reserved {
            session.abort_reservation(r);
        }
        write_line(
            out,
            &protocol::reject_line(
                reject::BAD_REQUEST,
                "streaming supports the seed model only",
                &[],
            ),
        );
        return;
    }
    // A reservation-backed iterator converts one reserved record into a
    // release per yield, so the ledger's worst case stays exact mid-stream;
    // the unstreamed remainder is aborted below.  (An open error settles the
    // whole reservation inside release_iter_reserved.)
    let open = match reserved {
        Some(r) => session.release_iter_reserved(r, call.request),
        None => session.release_iter(call.request),
    };
    let mut iter = match open {
        Ok(iter) => iter,
        Err(err) => {
            write_line(
                out,
                &protocol::reject_line(reject::GENERATE_FAILED, &err.to_string(), &[]),
            );
            return;
        }
    };
    // Hold the connection for the whole stream so no other response can
    // interleave with the record lines.
    let mut stream = locked(out);
    let header_ok = writeln!(stream, "{}", protocol::stream_header_line()).is_ok();
    let mut released = 0usize;
    if header_ok {
        for item in iter.by_ref() {
            match item {
                Ok(record) => {
                    released += 1;
                    // The client hung up: stop proposing — and charging the
                    // ledger for — records nobody will receive.
                    if writeln!(stream, "{}", protocol::record_line(&record)).is_err() {
                        break;
                    }
                }
                Err(err) => {
                    let _ = writeln!(
                        stream,
                        "{}",
                        protocol::reject_line(reject::GENERATE_FAILED, &err.to_string(), &[])
                    );
                    break;
                }
            }
        }
    }
    let stats = iter.stats();
    let provenance = iter.provenance();
    // Settle the part of the reservation the stream did not convert (and
    // surface the over-delivery invariant violation if it ever fires).
    if let Some(r) = reserved {
        settle_stream_reservation(session, r, stats.released);
    }
    // The iterator never touches the metrics registry itself; the server
    // flushes the finished stream's counters into the session's scope cell
    // exactly once, here.
    session.flush_stream_stats(&stats);
    let _ = writeln!(
        stream,
        "{}",
        protocol::stream_end_line(
            released,
            &stats.to_json(),
            &session.ledger().to_json(),
            &provenance_with_fold(&provenance.to_json(&session.ledger()).render(), fold)
        )
    );
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgf_core::{PrivacyTestConfig, SynthesisEngine};
    use sgf_data::acs::{acs_bucketizer, acs_schema, generate_acs};

    #[test]
    fn provenance_fold_injection_preserves_object_shape() {
        let fold = FoldInfo {
            members: vec![7, 9, 12],
        };
        assert_eq!(
            provenance_with_fold("{\"seed\":5}", Some((&fold, 9))),
            "{\"fold\":{\"size\":3,\"request_id\":9,\"members\":[7,9,12]},\"seed\":5}"
        );
        assert_eq!(
            provenance_with_fold("{}", Some((&fold, 7))),
            "{\"fold\":{\"size\":3,\"request_id\":7,\"members\":[7,9,12]}}"
        );
        // Unfolded requests keep their provenance bytes untouched.
        assert_eq!(provenance_with_fold("{\"seed\":5}", None), "{\"seed\":5}");
        // Defensive: a non-object rendering passes through unmodified.
        assert_eq!(provenance_with_fold("null", Some((&fold, 7))), "null");
    }

    #[test]
    fn over_delivered_stream_is_counted_not_swallowed() {
        let population = generate_acs(600, 11);
        let bucketizer = acs_bucketizer(&acs_schema());
        let session = SynthesisEngine::builder()
            .privacy_test(
                PrivacyTestConfig::randomized(20, 4.0, 1.0).with_limits(Some(40), Some(500)),
            )
            .seed(11)
            .train(&population, &bucketizer)
            .unwrap();
        let cap = cap_admitting(&session, 20).unwrap();
        session.try_reserve(5, cap).unwrap();
        let counter = sgf_metrics::counter("serve.over_delivered");
        let before = counter.get();
        // A well-behaved stream (released <= reserved) settles silently.
        settle_stream_reservation(&session, 5, 5);
        assert_eq!(counter.get(), before);
        // An over-delivering stream settles to zero *and* is observable.
        session.try_reserve(3, cap).unwrap();
        settle_stream_reservation(&session, 3, 7);
        assert_eq!(counter.get(), before + 1);
    }
}
