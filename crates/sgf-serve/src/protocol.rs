//! The JSON-lines wire protocol: one JSON object per `\n`-terminated line.
//!
//! ## Requests
//!
//! | verb | fields |
//! |---|---|
//! | `generate` | `session` (default `"default"`), `target` (required), `seed`, `workers`, `max_candidate_factor`, `omega` (number or `{"lo","hi"}`), `seed_index` (`"scan"`/`"inverted"`/`"partition"`/`"auto"`), `stream` (bool), `model` (`"seed"`/`"marginal"`) |
//! | `update` | `session` (default `"default"`), `inserts` (array of records), `deletes` (array of records) — records are arrays of attribute value indices |
//! | `status` | — |
//! | `ledger` | `session` |
//! | `metrics` | `session` (optional: restrict to one session's cell), `noisy` (bool: include timers/summaries) |
//! | `trace` | `session` (optional: restrict to one session's spans), `noisy` (bool: include wall clocks) |
//! | `shutdown` | — |
//!
//! ## Responses
//!
//! Every response line carries `"ok"`.  A rejected request is a single line
//! with `"ok":false` and a machine-readable `"error"` code from [`reject`]
//! (plus code-specific fields such as `retry_after_ms` or the requested/cap
//! budgets).  A successful `generate` is a header line, one `{"record":[..]}`
//! line per released record, and an `{"end":true,...}` trailer; batch
//! responses carry stats/ledger/provenance in the header, streaming responses
//! in the trailer (the counts are only known once the stream finishes).
//!
//! `metrics` and `trace` answer with one line of canonical JSON.  Both are
//! deterministic by default: `metrics` returns the counter-only labeled
//! snapshot (per-scope cells always sum exactly to the global rollup) and
//! `trace` returns span trees without wall clocks, so two identically-seeded
//! server runs answer byte-identically.  `noisy:true` opts into the
//! wall-clock-bearing variants.

use crate::json::{escape, Value};
use sgf_core::{GenerateRequest, SeedIndex};
use sgf_data::Record;
use sgf_model::OmegaSpec;

/// Session name used when a `generate`/`ledger` request does not name one.
pub const DEFAULT_SESSION: &str = "default";

/// Machine-readable rejection codes (`"error"` field of `"ok":false` lines).
pub mod reject {
    /// The bounded request queue is full; retry after `retry_after_ms`.
    pub const QUEUE_FULL: &str = "queue_full";
    /// Admission would push the session ledger past its (ε, δ) cap.
    pub const BUDGET_EXHAUSTED: &str = "budget_exhausted";
    /// No session with the requested name is registered.
    pub const UNKNOWN_SESSION: &str = "unknown_session";
    /// The request line failed to parse or validate.
    pub const BAD_REQUEST: &str = "bad_request";
    /// The server is draining and admits no new generate requests.
    pub const SHUTTING_DOWN: &str = "shutting_down";
    /// The admitted request failed while generating.
    pub const GENERATE_FAILED: &str = "generate_failed";
    /// The admitted `update` delta failed to apply (e.g. deleting a record
    /// the dataset does not hold, or draining the seed subset below `k`).
    pub const UPDATE_FAILED: &str = "update_failed";
}

/// Which generative model a `generate` request runs through the mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ModelKind {
    /// The session's seed-based synthesizer (the paper's Mechanism 1 default).
    #[default]
    Seed,
    /// The session's marginal baseline (seed-independent; every candidate
    /// passes the privacy test, Section 8).
    Marginal,
}

/// A parsed `generate` request: the target session plus the core
/// [`GenerateRequest`] and serve-level options.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateCall {
    /// Which registered session serves the request.
    pub session: String,
    /// The core request (target, seed, per-request overrides).
    pub request: GenerateRequest,
    /// Stream records as they are released (via the session's `ReleaseIter`)
    /// instead of generating the whole batch first.
    pub stream: bool,
    /// Which generative model to run.
    pub model: ModelKind,
}

impl GenerateCall {
    /// A batch seed-model call against the default session.
    pub fn new(target: usize) -> Self {
        GenerateCall {
            session: DEFAULT_SESSION.to_string(),
            request: GenerateRequest::new(target),
            stream: false,
            model: ModelKind::Seed,
        }
    }

    /// Target a named session.
    pub fn with_session(mut self, session: &str) -> Self {
        self.session = session.to_string();
        self
    }

    /// Replace the core request.
    pub fn with_request(mut self, request: GenerateRequest) -> Self {
        self.request = request;
        self
    }

    /// Stream records as they are released.
    pub fn with_stream(mut self, stream: bool) -> Self {
        self.stream = stream;
        self
    }

    /// Pick the generative model.
    pub fn with_model(mut self, model: ModelKind) -> Self {
        self.model = model;
        self
    }

    /// Encode the call as one protocol line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut line = format!(
            "{{\"verb\":\"generate\",\"session\":\"{}\",\"target\":{},\"seed\":{}",
            escape(&self.session),
            self.request.target,
            self.request.seed
        );
        if let Some(workers) = self.request.workers {
            line.push_str(&format!(",\"workers\":{workers}"));
        }
        if let Some(factor) = self.request.max_candidate_factor {
            line.push_str(&format!(",\"max_candidate_factor\":{factor}"));
        }
        match self.request.omega {
            Some(OmegaSpec::Fixed(w)) => line.push_str(&format!(",\"omega\":{w}")),
            Some(OmegaSpec::UniformRange { lo, hi }) => {
                line.push_str(&format!(",\"omega\":{{\"lo\":{lo},\"hi\":{hi}}}"))
            }
            None => {}
        }
        if let Some(policy) = self.request.seed_index {
            // `SeedIndex`'s `Display` is the canonical lowercase wire name.
            line.push_str(&format!(",\"seed_index\":\"{policy}\""));
        }
        if self.stream {
            line.push_str(",\"stream\":true");
        }
        if self.model == ModelKind::Marginal {
            line.push_str(",\"model\":\"marginal\"");
        }
        line.push('}');
        line
    }
}

/// A parsed `update` request: a ±record delta to fold into a session,
/// advancing it to its next epoch (see `SynthesisSession::update`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct UpdateCall {
    /// Which registered session to advance.
    pub session: String,
    /// Records to append (attribute value indices, validated against the
    /// session schema server-side).
    pub inserts: Vec<Record>,
    /// Records to remove (matched by value against the current dataset).
    pub deletes: Vec<Record>,
}

impl UpdateCall {
    /// An empty delta against the default session.
    pub fn new() -> Self {
        UpdateCall {
            session: DEFAULT_SESSION.to_string(),
            inserts: Vec::new(),
            deletes: Vec::new(),
        }
    }

    /// Target a named session.
    pub fn with_session(mut self, session: &str) -> Self {
        self.session = session.to_string();
        self
    }

    /// Append a record.
    pub fn insert(mut self, record: Record) -> Self {
        self.inserts.push(record);
        self
    }

    /// Remove a record (by value).
    pub fn delete(mut self, record: Record) -> Self {
        self.deletes.push(record);
        self
    }

    /// Encode the call as one protocol line (no trailing newline).
    pub fn encode(&self) -> String {
        let mut line = format!(
            "{{\"verb\":\"update\",\"session\":\"{}\"",
            escape(&self.session)
        );
        for (key, records) in [("inserts", &self.inserts), ("deletes", &self.deletes)] {
            if records.is_empty() {
                continue;
            }
            line.push_str(&format!(",\"{key}\":["));
            for (i, record) in records.iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push('[');
                for (j, v) in record.values().iter().enumerate() {
                    if j > 0 {
                        line.push(',');
                    }
                    line.push_str(&v.to_string());
                }
                line.push(']');
            }
            line.push(']');
        }
        line.push('}');
        line
    }
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Release synthetic records from a session.
    Generate(GenerateCall),
    /// Fold a ±record delta into a session (next session epoch).
    Update(UpdateCall),
    /// Report server state (queue depth, busy workers, sessions).
    Status,
    /// Report a session's cumulative budget ledger.
    Ledger {
        /// The session to report on.
        session: String,
    },
    /// Report the labeled metrics snapshot (the whole registry, or one
    /// session's cell).
    Metrics {
        /// Restrict the snapshot to this session's scope cell (`None`
        /// returns the global rollup with every per-session cell attached).
        session: Option<String>,
        /// Include timers and summaries (wall-clock observations).  The
        /// default counter-only snapshot is deterministic across
        /// identically-seeded runs.
        noisy: bool,
    },
    /// Report recent trace span trees from the deterministic trace ring.
    Trace {
        /// Restrict to span trees rooted at spans labeled with this session
        /// (`None` returns every buffered event).
        session: Option<String>,
        /// Include noisy wall-clock durations on the spans.
        noisy: bool,
    },
    /// Drain the queue and stop the server.
    Shutdown,
}

impl Request {
    /// Encode the request as one protocol line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Request::Generate(call) => call.encode(),
            Request::Update(call) => call.encode(),
            Request::Status => "{\"verb\":\"status\"}".to_string(),
            Request::Ledger { session } => {
                format!(
                    "{{\"verb\":\"ledger\",\"session\":\"{}\"}}",
                    escape(session)
                )
            }
            Request::Metrics { session, noisy } => observe_verb_line("metrics", session, *noisy),
            Request::Trace { session, noisy } => observe_verb_line("trace", session, *noisy),
            Request::Shutdown => "{\"verb\":\"shutdown\"}".to_string(),
        }
    }
}

/// Parse one request line.  The error string is the human-readable half of a
/// [`reject::BAD_REQUEST`] response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = Value::parse(line).map_err(|e| e.to_string())?;
    let verb = value
        .get("verb")
        .and_then(Value::as_str)
        .ok_or("missing string field `verb`")?;
    match verb {
        "status" => Ok(Request::Status),
        "shutdown" => Ok(Request::Shutdown),
        "ledger" => Ok(Request::Ledger {
            session: session_name(&value)?,
        }),
        "metrics" => Ok(Request::Metrics {
            session: optional_session(&value)?,
            noisy: noisy_flag(&value)?,
        }),
        "trace" => Ok(Request::Trace {
            session: optional_session(&value)?,
            noisy: noisy_flag(&value)?,
        }),
        "generate" => parse_generate(&value).map(Request::Generate),
        "update" => parse_update(&value).map(Request::Update),
        other => Err(format!("unknown verb `{other}`")),
    }
}

fn session_name(value: &Value) -> Result<String, String> {
    match value.get("session") {
        None => Ok(DEFAULT_SESSION.to_string()),
        Some(v) => v
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| "field `session` must be a string".to_string()),
    }
}

/// `session` for the observability verbs: absent means "everything", so the
/// default-session fallback of [`session_name`] does not apply.
fn optional_session(value: &Value) -> Result<Option<String>, String> {
    match value.get("session") {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| "field `session` must be a string".to_string()),
    }
}

fn noisy_flag(value: &Value) -> Result<bool, String> {
    match value.get("noisy") {
        None => Ok(false),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| "field `noisy` must be a boolean".to_string()),
    }
}

/// Encode a `metrics`/`trace` request line.
fn observe_verb_line(verb: &str, session: &Option<String>, noisy: bool) -> String {
    let mut line = format!("{{\"verb\":\"{verb}\"");
    if let Some(session) = session {
        line.push_str(&format!(",\"session\":\"{}\"", escape(session)));
    }
    if noisy {
        line.push_str(",\"noisy\":true");
    }
    line.push('}');
    line
}

fn parse_generate(value: &Value) -> Result<GenerateCall, String> {
    let target = value
        .get("target")
        .and_then(Value::as_usize)
        .ok_or("field `target` must be a non-negative integer")?;
    if target == 0 {
        return Err("field `target` must be at least 1".to_string());
    }
    let mut request = GenerateRequest::new(target);
    if let Some(seed) = value.get("seed") {
        request.seed = seed
            .as_u64()
            .ok_or("field `seed` must be a non-negative integer")?;
    }
    if let Some(workers) = value.get("workers") {
        request.workers = Some(
            workers
                .as_usize()
                .ok_or("field `workers` must be a non-negative integer")?,
        );
    }
    if let Some(factor) = value.get("max_candidate_factor") {
        request.max_candidate_factor = Some(
            factor
                .as_usize()
                .ok_or("field `max_candidate_factor` must be a non-negative integer")?,
        );
    }
    if let Some(omega) = value.get("omega") {
        request.omega = Some(parse_omega(omega)?);
    }
    if let Some(policy) = value.get("seed_index") {
        request.seed_index = Some(match policy.as_str() {
            Some("scan") => SeedIndex::Scan,
            Some("inverted") => SeedIndex::Inverted,
            Some("partition") => SeedIndex::Partition,
            Some("auto") => SeedIndex::Auto,
            _ => {
                return Err("field `seed_index` must be \"scan\", \"inverted\", \
                     \"partition\" or \"auto\""
                    .into())
            }
        });
    }
    let stream = match value.get("stream") {
        None => false,
        Some(v) => v.as_bool().ok_or("field `stream` must be a boolean")?,
    };
    let model = match value.get("model") {
        None => ModelKind::Seed,
        Some(v) => match v.as_str() {
            Some("seed") => ModelKind::Seed,
            Some("marginal") => ModelKind::Marginal,
            _ => return Err("field `model` must be \"seed\" or \"marginal\"".into()),
        },
    };
    Ok(GenerateCall {
        session: session_name(value)?,
        request,
        stream,
        model,
    })
}

fn parse_update(value: &Value) -> Result<UpdateCall, String> {
    let mut call = UpdateCall::new().with_session(&session_name(value)?);
    for (key, out) in [("inserts", 0usize), ("deletes", 1usize)] {
        let records = match value.get(key) {
            None => continue,
            Some(v) => v
                .as_array()
                .ok_or_else(|| format!("field `{key}` must be an array of records"))?,
        };
        for record in records {
            let values = record
                .as_array()
                .ok_or_else(|| format!("each `{key}` record must be an array of value indices"))?
                .iter()
                .map(|v| {
                    v.as_u64()
                        .filter(|&n| n <= u16::MAX as u64)
                        .map(|n| n as u16)
                })
                .collect::<Option<Vec<u16>>>()
                .ok_or_else(|| {
                    format!("each `{key}` record value must be an integer in [0, 65535]")
                })?;
            let record = Record::new(values);
            if out == 0 {
                call.inserts.push(record);
            } else {
                call.deletes.push(record);
            }
        }
    }
    Ok(call)
}

fn parse_omega(value: &Value) -> Result<OmegaSpec, String> {
    if let Some(w) = value.as_usize() {
        return Ok(OmegaSpec::Fixed(w));
    }
    let lo = value.get("lo").and_then(Value::as_usize);
    let hi = value.get("hi").and_then(Value::as_usize);
    match (lo, hi) {
        (Some(lo), Some(hi)) => Ok(OmegaSpec::UniformRange { lo, hi }),
        _ => Err("field `omega` must be an integer or {\"lo\":..,\"hi\":..}".to_string()),
    }
}

/// Format an `f64` as a JSON value (`null` for non-finite values).
pub fn num(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

/// An `"ok":false` rejection line: machine-readable `code` plus a
/// human-readable `message` and optional extra fields (pre-encoded values).
pub fn reject_line(code: &str, message: &str, extras: &[(&str, String)]) -> String {
    let mut line = format!(
        "{{\"ok\":false,\"error\":\"{}\",\"message\":\"{}\"",
        escape(code),
        escape(message)
    );
    for (key, value) in extras {
        line.push_str(&format!(",\"{}\":{}", escape(key), value));
    }
    line.push('}');
    line
}

/// Header line of a successful batch `generate` response.
pub fn batch_header_line(
    released: usize,
    stats_json: &str,
    request_epsilon: f64,
    ledger_json: &str,
    provenance_json: &str,
) -> String {
    format!(
        "{{\"ok\":true,\"verb\":\"generate\",\"streaming\":false,\"released\":{},\
         \"stats\":{},\"request_epsilon\":{},\"ledger\":{},\"provenance\":{}}}",
        released,
        stats_json,
        num(request_epsilon),
        ledger_json,
        provenance_json
    )
}

/// Header line of a successful streaming `generate` response.
pub fn stream_header_line() -> String {
    "{\"ok\":true,\"verb\":\"generate\",\"streaming\":true}".to_string()
}

/// One released record.
pub fn record_line(record: &Record) -> String {
    let mut line = String::from("{\"record\":[");
    for (i, v) in record.values().iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&v.to_string());
    }
    line.push_str("]}");
    line
}

/// Trailer of a batch `generate` response.
pub fn batch_end_line(released: usize) -> String {
    format!("{{\"end\":true,\"released\":{released}}}")
}

/// Trailer of a streaming `generate` response (counts are only known here).
pub fn stream_end_line(
    released: usize,
    stats_json: &str,
    ledger_json: &str,
    provenance_json: &str,
) -> String {
    format!(
        "{{\"end\":true,\"released\":{released},\"stats\":{stats_json},\
         \"ledger\":{ledger_json},\"provenance\":{provenance_json}}}"
    )
}

/// Decode a `{"record":[..]}` line into attribute value indices.
pub fn parse_record_line(value: &Value) -> Option<Vec<u16>> {
    value
        .get("record")?
        .as_array()?
        .iter()
        .map(|v| {
            v.as_u64()
                .filter(|&n| n <= u16::MAX as u64)
                .map(|n| n as u16)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_calls_round_trip_through_encode_and_parse() {
        let calls = [
            GenerateCall::new(10),
            GenerateCall::new(3)
                .with_session("census")
                .with_stream(true)
                .with_model(ModelKind::Marginal)
                .with_request(
                    GenerateRequest::new(3)
                        .with_seed(99)
                        .with_workers(4)
                        .with_max_candidate_factor(7)
                        .with_omega(OmegaSpec::Fixed(9))
                        .with_seed_index(SeedIndex::Inverted),
                ),
            GenerateCall::new(5).with_request(
                GenerateRequest::new(5).with_omega(OmegaSpec::UniformRange { lo: 8, hi: 11 }),
            ),
        ];
        for call in calls {
            let parsed = parse_request(&call.encode()).unwrap();
            assert_eq!(parsed, Request::Generate(call));
        }
        for request in [
            Request::Status,
            Request::Shutdown,
            Request::Ledger {
                session: "a \"quoted\" name".to_string(),
            },
            Request::Metrics {
                session: None,
                noisy: false,
            },
            Request::Metrics {
                session: Some("census".to_string()),
                noisy: true,
            },
            Request::Trace {
                session: Some("a \"quoted\" name".to_string()),
                noisy: false,
            },
            Request::Trace {
                session: None,
                noisy: true,
            },
        ] {
            assert_eq!(parse_request(&request.encode()).unwrap(), request);
        }
    }

    #[test]
    fn update_calls_round_trip_through_encode_and_parse() {
        let calls = [
            UpdateCall::new(),
            UpdateCall::new()
                .with_session("census")
                .insert(Record::new(vec![1, 2, 3]))
                .insert(Record::new(vec![0, 0, 65535]))
                .delete(Record::new(vec![4, 5, 6])),
            UpdateCall::new().delete(Record::new(vec![9])),
        ];
        for call in calls {
            let parsed = parse_request(&call.encode()).unwrap();
            assert_eq!(parsed, Request::Update(call));
        }
        // Absent arrays default to an empty delta against the default session.
        let parsed = parse_request(r#"{"verb":"update"}"#).unwrap();
        assert_eq!(parsed, Request::Update(UpdateCall::new()));
    }

    #[test]
    fn malformed_update_requests_are_rejected_with_a_reason() {
        for (line, needle) in [
            (r#"{"verb":"update","session":7}"#, "session"),
            (r#"{"verb":"update","inserts":7}"#, "inserts"),
            (r#"{"verb":"update","deletes":[7]}"#, "deletes"),
            (r#"{"verb":"update","inserts":[[-1]]}"#, "integer"),
            (r#"{"verb":"update","inserts":[[70000]]}"#, "integer"),
            (r#"{"verb":"update","deletes":[["a"]]}"#, "integer"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err} (wanted {needle})");
        }
    }

    #[test]
    fn observability_verbs_leave_the_session_filter_optional() {
        // Unlike `ledger`, an absent `session` means "the whole registry",
        // not the default session.
        let parsed = parse_request(r#"{"verb":"metrics"}"#).unwrap();
        assert_eq!(
            parsed,
            Request::Metrics {
                session: None,
                noisy: false
            }
        );
        let parsed = parse_request(r#"{"verb":"trace","session":"acs","noisy":true}"#).unwrap();
        assert_eq!(
            parsed,
            Request::Trace {
                session: Some("acs".to_string()),
                noisy: true
            }
        );
        for (line, needle) in [
            (r#"{"verb":"metrics","session":7}"#, "session"),
            (r#"{"verb":"trace","noisy":"yes"}"#, "noisy"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err} (wanted {needle})");
        }
    }

    #[test]
    fn u64_seeds_round_trip_exactly() {
        // Seeds drive the byte-identical replay guarantee, so the wire must
        // not lose a single bit of them.
        for seed in [9_007_199_254_740_993u64, u64::MAX] {
            let call = GenerateCall::new(2).with_request(GenerateRequest::new(2).with_seed(seed));
            let Request::Generate(parsed) = parse_request(&call.encode()).unwrap() else {
                panic!("expected a generate request");
            };
            assert_eq!(parsed.request.seed, seed);
        }
    }

    #[test]
    fn generate_defaults_match_the_core_request() {
        let parsed = parse_request(r#"{"verb":"generate","target":4}"#).unwrap();
        let Request::Generate(call) = parsed else {
            panic!("expected a generate request");
        };
        assert_eq!(call.session, DEFAULT_SESSION);
        assert_eq!(call.request, GenerateRequest::new(4));
        assert!(!call.stream);
        assert_eq!(call.model, ModelKind::Seed);
    }

    #[test]
    fn malformed_requests_are_rejected_with_a_reason() {
        for (line, needle) in [
            ("not json", "invalid JSON"),
            (r#"{"target":4}"#, "verb"),
            (r#"{"verb":"launch"}"#, "unknown verb"),
            (r#"{"verb":"generate"}"#, "target"),
            (r#"{"verb":"generate","target":0}"#, "at least 1"),
            (r#"{"verb":"generate","target":4,"seed":-1}"#, "seed"),
            (r#"{"verb":"generate","target":4,"omega":"nine"}"#, "omega"),
            (
                r#"{"verb":"generate","target":4,"seed_index":"btree"}"#,
                "seed_index",
            ),
            (r#"{"verb":"generate","target":4,"model":"gpt"}"#, "model"),
            (r#"{"verb":"ledger","session":7}"#, "session"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{line}: {err} (wanted {needle})");
        }
    }

    #[test]
    fn response_lines_are_valid_json() {
        use crate::json::Value;
        let reject = reject_line(
            reject::QUEUE_FULL,
            "queue is full",
            &[("retry_after_ms", "50".to_string())],
        );
        let parsed = Value::parse(&reject).unwrap();
        assert_eq!(parsed.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(
            parsed.get("error").and_then(Value::as_str),
            Some(reject::QUEUE_FULL)
        );
        assert_eq!(
            parsed.get("retry_after_ms").and_then(Value::as_u64),
            Some(50)
        );

        let header = batch_header_line(
            2,
            "{\"candidates\":5}",
            1.5,
            "{\"releases\":2}",
            "{\"store\":\"partition\"}",
        );
        let parsed = Value::parse(&header).unwrap();
        assert_eq!(parsed.get("released").and_then(Value::as_usize), Some(2));
        assert_eq!(
            parsed.get("request_epsilon").and_then(Value::as_f64),
            Some(1.5)
        );
        assert_eq!(
            parsed
                .get("provenance")
                .and_then(|p| p.get("store"))
                .and_then(Value::as_str),
            Some("partition")
        );

        let record = Record::new(vec![3, 0, 65535]);
        let parsed = Value::parse(&record_line(&record)).unwrap();
        assert_eq!(parse_record_line(&parsed), Some(vec![3, 0, 65535]));

        let end = stream_end_line(
            4,
            "{\"released\":4}",
            "{\"requests\":1}",
            "{\"store\":\"scan\"}",
        );
        let parsed = Value::parse(&end).unwrap();
        assert_eq!(parsed.get("end").and_then(Value::as_bool), Some(true));
        assert_eq!(parsed.get("released").and_then(Value::as_usize), Some(4));
        assert_eq!(
            parsed
                .get("provenance")
                .and_then(|p| p.get("store"))
                .and_then(Value::as_str),
            Some("scan")
        );
        assert_eq!(
            Value::parse(&stream_header_line())
                .unwrap()
                .get("streaming")
                .and_then(Value::as_bool),
            Some(true)
        );
        assert_eq!(
            Value::parse(&batch_end_line(9))
                .unwrap()
                .get("released")
                .and_then(Value::as_usize),
            Some(9)
        );
    }
}
