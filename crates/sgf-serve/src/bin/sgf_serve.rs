//! The `sgf-serve` binary: train a demo session over the ACS-like population
//! and serve it over the JSON-lines TCP protocol.
//!
//! ```text
//! sgf-serve [--addr HOST:PORT] [--population N] [--seed S] [--k K]
//!           [--cap-releases N] [--queue N] [--workers N]
//! sgf-serve --smoke
//! ```
//!
//! `--cap-releases N` caps the session at the composed (ε, δ) of `N` released
//! records (omit to serve uncapped).  `--smoke` runs the end-to-end self-test
//! used by `scripts/repro.sh` and CI: an ephemeral-port server with two named
//! sessions, a capped-session request sequence sized so the third request
//! must be rejected over budget, batch + streaming requests against the
//! second session, `metrics` / `trace` verification (per-session cells sum
//! to the global rollup; the generate span tree is complete), and a clean
//! drain.  With `SGF_BENCH_DIR` set, the smoke writes its deterministic
//! observability documents (`SMOKE_METRICS.json`, `SMOKE_TRACE.json`,
//! `SMOKE_PROVENANCE.json`) there — two identically-seeded runs produce
//! byte-identical files.

use sgf_core::{GenerateRequest, PrivacyTestConfig, SynthesisEngine, SynthesisSession};
use sgf_data::acs::{acs_bucketizer, acs_schema, generate_acs};
use sgf_serve::json::Value;
use sgf_serve::{
    cap_admitting, reject, serve, Client, ClientError, GenerateCall, ModelKind, ServeConfig,
    SessionEntry,
};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Duration;

struct Args {
    addr: String,
    population: usize,
    seed: u64,
    k: usize,
    cap_releases: Option<usize>,
    queue: usize,
    workers: usize,
    smoke: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            addr: "127.0.0.1:7878".to_string(),
            population: 10_000,
            seed: 42,
            k: 50,
            cap_releases: None,
            queue: 32,
            workers: 4,
            smoke: false,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("flag {name} requires a value"))
        };
        match flag.as_str() {
            "--smoke" => args.smoke = true,
            "--addr" => args.addr = value("--addr")?,
            "--population" => args.population = parse_num(&value("--population")?)?,
            "--seed" => args.seed = parse_num(&value("--seed")?)? as u64,
            "--k" => args.k = parse_num(&value("--k")?)?,
            "--cap-releases" => args.cap_releases = Some(parse_num(&value("--cap-releases")?)?),
            "--queue" => args.queue = parse_num(&value("--queue")?)?,
            "--workers" => args.workers = parse_num(&value("--workers")?)?,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn parse_num(text: &str) -> Result<usize, String> {
    text.parse::<usize>()
        .map_err(|_| format!("expected a non-negative integer, got `{text}`"))
}

fn train_demo_session(population: usize, seed: u64, k: usize) -> SynthesisSession {
    let data = generate_acs(population, seed);
    let bucketizer = acs_bucketizer(&acs_schema());
    SynthesisEngine::builder()
        .privacy_test(PrivacyTestConfig::randomized(k, 4.0, 1.0).with_limits(Some(2 * k), None))
        .seed(seed)
        .train(&data, &bucketizer)
        .expect("training the demo session failed")
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("sgf-serve: {message}");
            return ExitCode::from(2);
        }
    };
    if args.smoke {
        return smoke();
    }

    eprintln!(
        "training demo session (population {}, k {}, seed {})...",
        args.population, args.k, args.seed
    );
    let session = train_demo_session(args.population, args.seed, args.k);
    eprintln!(
        "trained in {:.2}s ({} seeds); per-release epsilon {:?}",
        session.training_time().as_secs_f64(),
        session.seeds().len(),
        session.per_release_budget().map(|b| b.epsilon)
    );
    let mut entry = SessionEntry::new(session);
    if let Some(releases) = args.cap_releases {
        let cap = cap_admitting(&entry.session, releases)
            .expect("the randomized test always has a per-release budget");
        eprintln!(
            "capping the session at {} releases (epsilon {:.3})",
            releases, cap.epsilon
        );
        entry = entry.capped(cap);
    }
    let config = ServeConfig {
        addr: args.addr,
        queue_capacity: args.queue,
        workers: args.workers,
        ..ServeConfig::default()
    };
    let handle = match serve(config, vec![entry]) {
        Ok(handle) => handle,
        Err(err) => {
            eprintln!("sgf-serve: bind failed: {err}");
            return ExitCode::FAILURE;
        }
    };
    println!("sgf-serve listening on {}", handle.addr());
    match handle.join() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("sgf-serve: {err}");
            ExitCode::FAILURE
        }
    }
}

/// Check the sum-to-rollup invariant of a counter-only `metrics` response:
/// every counter present in any session cell must sum, across cells, to
/// exactly its global rollup value (scoped handles write both).
fn assert_cells_sum_to_rollup(response: &Value) {
    let body = response.get("metrics").expect("metrics body");
    let Some(Value::Object(global)) = body.get("counters") else {
        panic!("metrics body has no counters object");
    };
    let Some(Value::Object(scopes)) = body.get("scopes") else {
        panic!("metrics body has no scopes object (no session served anything?)");
    };
    let mut summed: BTreeMap<String, u64> = BTreeMap::new();
    for cell in scopes.values() {
        if let Some(Value::Object(counters)) = cell.get("counters") {
            for (name, value) in counters {
                *summed.entry(name.clone()).or_insert(0) +=
                    value.as_u64().expect("counter must be a u64");
            }
        }
    }
    assert!(!summed.is_empty(), "expected scoped counters in the cells");
    for (name, total) in &summed {
        let rollup = global.get(name).and_then(Value::as_u64).unwrap_or(0);
        assert_eq!(
            rollup, *total,
            "counter `{name}`: cells sum to {total} but the rollup is {rollup}"
        );
    }
}

/// The events array of a `trace` response.
fn trace_events(response: &Value) -> &[Value] {
    response
        .get("trace")
        .and_then(|t| t.get("events"))
        .and_then(Value::as_array)
        .expect("trace response carries an events array")
}

/// Check that a session's `trace` response contains a complete generate span
/// tree: a `core.generate` root (store label), a `core.proposals` child, and
/// per-candidate `core.privacy_test` spans carrying store + outcome labels.
fn assert_generate_span_tree(events: &[Value], session: &str) {
    let name = |e: &Value| {
        e.get("name")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string()
    };
    let label_of = |e: &Value, key: &str| {
        e.get("labels").and_then(Value::as_str).and_then(|labels| {
            labels
                .split(',')
                .find_map(|pair| pair.strip_prefix(&format!("{key}=")).map(str::to_string))
        })
    };
    let generate = events
        .iter()
        .find(|e| name(e) == "core.generate" && label_of(e, "session").as_deref() == Some(session))
        .unwrap_or_else(|| panic!("no core.generate span labeled session={session}"));
    assert!(
        label_of(generate, "store").is_some(),
        "core.generate must carry a store label"
    );
    let generate_span = generate
        .get("span")
        .and_then(Value::as_u64)
        .expect("span id");
    let proposals = events
        .iter()
        .find(|e| {
            name(e) == "core.proposals"
                && e.get("parent").and_then(Value::as_u64) == Some(generate_span)
        })
        .expect("core.generate must have a core.proposals child");
    let proposals_span = proposals
        .get("span")
        .and_then(Value::as_u64)
        .expect("span id");
    let probes: Vec<&Value> = events
        .iter()
        .filter(|e| {
            name(e) == "core.privacy_test"
                && e.get("parent").and_then(Value::as_u64) == Some(proposals_span)
        })
        .collect();
    assert!(
        !probes.is_empty(),
        "core.proposals must have per-candidate core.privacy_test children"
    );
    for probe in probes {
        let store = label_of(probe, "store").expect("privacy_test carries a store label");
        assert!(
            ["scan", "inverted", "partition"].contains(&store.as_str()),
            "unexpected store kind `{store}`"
        );
        let outcome = label_of(probe, "outcome").expect("privacy_test carries an outcome label");
        assert!(
            outcome == "pass" || outcome == "fail",
            "unexpected outcome `{outcome}`"
        );
        assert!(
            probe
                .get("counters")
                .and_then(|c| c.get("plausible_seeds"))
                .and_then(Value::as_u64)
                .is_some(),
            "privacy_test counters must include plausible_seeds"
        );
    }
    // The serve layer adds its own span over the whole job.
    assert!(
        events
            .iter()
            .any(|e| name(e) == "serve.job" && label_of(e, "session").as_deref() == Some(session)),
        "no serve.job span labeled session={session}"
    );
}

/// Write one observability artifact into `$SGF_BENCH_DIR` (no-op when the
/// variable is unset).
fn write_artifact(name: &str, content: &str) {
    let Ok(dir) = std::env::var("SGF_BENCH_DIR") else {
        return;
    };
    if dir.is_empty() {
        return;
    }
    let path = std::path::Path::new(&dir).join(name);
    std::fs::create_dir_all(&dir).expect("creating SGF_BENCH_DIR failed");
    std::fs::write(&path, content).expect("writing smoke artifact failed");
    println!("wrote {}", path.display());
}

/// End-to-end self-test: serve two named sessions on an ephemeral port — the
/// capped one sized for exactly two of three requests — then verify the
/// machine-readable rejection, the provenance blocks, the labeled `metrics`
/// snapshot (cells sum to the rollup), the `trace` span trees, and a clean
/// drain.  Single-worker server and single-worker requests keep every
/// observability document deterministic.
fn smoke() -> ExitCode {
    let target = 10usize;
    println!("== sgf-serve smoke: train ==");
    let acs = train_demo_session(3_000, 11, 20);
    let census = train_demo_session(4_000, 23, 20);
    let acs_ledger = acs.clone();
    let census_ledger = census.clone();
    let cap = cap_admitting(&acs, 2 * target).expect("randomized test has a budget");
    println!(
        "cap admits {} releases (epsilon {:.3}, delta {:.3e})",
        2 * target,
        cap.epsilon,
        cap.delta
    );

    let handle = serve(
        ServeConfig {
            queue_capacity: 8,
            // One worker → jobs execute (and commit trace batches) in
            // admission order, so the smoke's documents are deterministic.
            workers: 1,
            log_requests: true,
            ..ServeConfig::default()
        },
        vec![
            SessionEntry::new(acs).named("acs").capped(cap),
            SessionEntry::new(census).named("census"),
        ],
    )
    .expect("ephemeral bind failed");
    println!("== serving on {} ==", handle.addr());

    let mut client = Client::connect(handle.addr()).expect("connect failed");
    // The marginal model releases exactly `target` records per request
    // (Section 8: every candidate passes), so the third request must push
    // the worst case past the cap and be rejected at admission.
    for request_seed in 1..=3u64 {
        let call = GenerateCall::new(target)
            .with_session("acs")
            .with_model(ModelKind::Marginal)
            .with_request(
                GenerateRequest::new(target)
                    .with_seed(request_seed)
                    .with_workers(1),
            );
        match client.generate(&call) {
            Ok(release) => {
                assert_eq!(
                    release.records.len(),
                    target,
                    "marginal must fill the target"
                );
                println!(
                    "acs request {request_seed}: released {} records, cumulative epsilon {:.3}",
                    release.records.len(),
                    release.ledger_f64("total_epsilon").unwrap_or(f64::NAN)
                );
                assert!(
                    request_seed <= 2,
                    "request {request_seed} should have been over budget"
                );
            }
            Err(ClientError::Rejected(rejection)) => {
                println!(
                    "acs request {request_seed}: rejected with code `{}` \
                     (requested epsilon {:?}, cap epsilon {:?})",
                    rejection.code,
                    rejection
                        .detail
                        .get("requested_epsilon")
                        .and_then(|v| v.as_f64()),
                    rejection.detail.get("cap_epsilon").and_then(|v| v.as_f64()),
                );
                assert_eq!(rejection.code, reject::BUDGET_EXHAUSTED);
                assert_eq!(request_seed, 3, "only the third request may be rejected");
            }
            Err(err) => panic!("request {request_seed} failed unexpectedly: {err}"),
        }
    }

    // The second session serves the seed model, batch and streaming; its
    // provenance blocks travel in the header / trailer respectively.
    let batch = client
        .generate(
            &GenerateCall::new(target)
                .with_session("census")
                .with_request(GenerateRequest::new(target).with_seed(7).with_workers(1)),
        )
        .expect("census batch failed");
    let store = batch
        .provenance
        .get("store")
        .and_then(Value::as_str)
        .expect("batch provenance carries a store kind")
        .to_string();
    assert_eq!(
        batch.provenance.get("request_seed").and_then(Value::as_u64),
        Some(7)
    );
    assert_eq!(
        batch.provenance.get("workers").and_then(Value::as_u64),
        Some(1)
    );
    assert!(
        batch
            .provenance
            .get("trace_spans")
            .and_then(Value::as_u64)
            .unwrap_or(0)
            > 0,
        "a traced batch must commit spans"
    );
    assert!(
        batch
            .provenance
            .get("ledger")
            .and_then(|l| l.get("before"))
            .is_some(),
        "provenance must carry the before/after ledger"
    );
    println!(
        "census batch: released {} via the {store} store, {} trace spans",
        batch.released,
        batch
            .provenance
            .get("trace_spans")
            .and_then(Value::as_u64)
            .unwrap_or(0)
    );
    let stream = client
        .generate(
            &GenerateCall::new(target)
                .with_session("census")
                .with_stream(true)
                .with_request(GenerateRequest::new(target).with_seed(8).with_workers(1)),
        )
        .expect("census stream failed");
    assert!(stream.streaming);
    assert_eq!(
        stream.provenance.get("workers").and_then(Value::as_u64),
        Some(1),
        "streaming proposes on one thread"
    );
    println!("census stream: released {}", stream.released);

    // The worker commits each job's serve.job span *after* answering, so
    // wait for the last job's span before snapshotting the trace ring.
    let expected_jobs = 4u64; // 2 admitted acs + census batch + census stream
    let mut trace_global = client.trace(None, false).expect("trace failed");
    for _ in 0..200 {
        let jobs = trace_events(&trace_global)
            .iter()
            .filter(|e| e.get("name").and_then(Value::as_str) == Some("serve.job"))
            .count() as u64;
        if jobs >= expected_jobs {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
        trace_global = client.trace(None, false).expect("trace failed");
    }
    assert!(
        trace_global
            .get("trace")
            .and_then(|t| t.get("schema_version"))
            .is_some(),
        "trace response is canonical JSON with a schema_version"
    );

    // Per-session metrics cells must sum exactly to the global rollup.
    let metrics_global = client.metrics(None, false).expect("metrics failed");
    assert_cells_sum_to_rollup(&metrics_global);
    let metrics_census = client
        .metrics(Some("census"), false)
        .expect("census metrics failed");
    let census_requests = metrics_census
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(|c| c.get("core.mechanism.requests"))
        .and_then(Value::as_u64);
    assert_eq!(
        census_requests,
        Some(2),
        "census served one batch and one stream"
    );
    println!("metrics: per-session cells sum to the global rollup");

    // Each session's trace view holds its complete generate span tree.
    let trace_acs = client.trace(Some("acs"), false).expect("acs trace failed");
    assert_generate_span_tree(trace_events(&trace_acs), "acs");
    let trace_census = client
        .trace(Some("census"), false)
        .expect("census trace failed");
    assert_generate_span_tree(trace_events(&trace_census), "census");
    println!("trace: complete generate span trees for both sessions");

    // Deterministic observability documents for the perf-trajectory
    // artifacts: counter-only metrics, wall-clock-free traces, and the
    // batch provenance line.
    let metrics_doc = metrics_global
        .get("metrics")
        .map(Value::render)
        .expect("metrics body");
    let trace_doc = trace_global
        .get("trace")
        .map(Value::render)
        .expect("trace body");
    write_artifact("SMOKE_METRICS.json", &format!("{metrics_doc}\n"));
    write_artifact("SMOKE_TRACE.json", &format!("{trace_doc}\n"));
    write_artifact(
        "SMOKE_PROVENANCE.json",
        &format!("{}\n", batch.provenance.render()),
    );

    // The shared ledgers (visible through the cloned handles) match: the
    // capped session committed exactly two requests, no leaked reservations.
    let ledger = acs_ledger.ledger();
    assert_eq!(ledger.requests, 2);
    assert_eq!(ledger.releases, 2 * target);
    assert_eq!(ledger.reserved, 0, "no reservation may leak");
    assert!(ledger.total().epsilon <= cap.epsilon);
    let census_ledger = census_ledger.ledger();
    assert_eq!(census_ledger.requests, 2);
    assert_eq!(census_ledger.releases, batch.released + stream.released);

    client.shutdown().expect("shutdown failed");
    handle.join().expect("drain failed");
    println!(
        "== sgf-serve smoke OK: 2 admitted + 1 over-budget reject on acs, \
         batch + stream on census, final epsilon {:.3} ==",
        ledger.total().epsilon
    );
    ExitCode::SUCCESS
}
