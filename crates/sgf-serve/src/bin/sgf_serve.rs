//! The `sgf-serve` binary: train a demo session over the ACS-like population
//! and serve it over the JSON-lines TCP protocol.
//!
//! ```text
//! sgf-serve [--addr HOST:PORT] [--population N] [--seed S] [--k K]
//!           [--cap-releases N] [--queue N] [--workers N]
//! sgf-serve --smoke
//! ```
//!
//! `--cap-releases N` caps the session at the composed (ε, δ) of `N` released
//! records (omit to serve uncapped).  `--smoke` runs the end-to-end self-test
//! used by `scripts/repro.sh` and CI: an ephemeral-port server, a 3-request
//! client session sized so the third request must be rejected over budget,
//! and a clean drain.

use sgf_core::{GenerateRequest, PrivacyTestConfig, SynthesisEngine, SynthesisSession};
use sgf_data::acs::{acs_bucketizer, acs_schema, generate_acs};
use sgf_serve::{
    cap_admitting, reject, serve, Client, ClientError, GenerateCall, ModelKind, ServeConfig,
    SessionEntry,
};
use std::process::ExitCode;

struct Args {
    addr: String,
    population: usize,
    seed: u64,
    k: usize,
    cap_releases: Option<usize>,
    queue: usize,
    workers: usize,
    smoke: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            addr: "127.0.0.1:7878".to_string(),
            population: 10_000,
            seed: 42,
            k: 50,
            cap_releases: None,
            queue: 32,
            workers: 4,
            smoke: false,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("flag {name} requires a value"))
        };
        match flag.as_str() {
            "--smoke" => args.smoke = true,
            "--addr" => args.addr = value("--addr")?,
            "--population" => args.population = parse_num(&value("--population")?)?,
            "--seed" => args.seed = parse_num(&value("--seed")?)? as u64,
            "--k" => args.k = parse_num(&value("--k")?)?,
            "--cap-releases" => args.cap_releases = Some(parse_num(&value("--cap-releases")?)?),
            "--queue" => args.queue = parse_num(&value("--queue")?)?,
            "--workers" => args.workers = parse_num(&value("--workers")?)?,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn parse_num(text: &str) -> Result<usize, String> {
    text.parse::<usize>()
        .map_err(|_| format!("expected a non-negative integer, got `{text}`"))
}

fn train_demo_session(population: usize, seed: u64, k: usize) -> SynthesisSession {
    let data = generate_acs(population, seed);
    let bucketizer = acs_bucketizer(&acs_schema());
    SynthesisEngine::builder()
        .privacy_test(PrivacyTestConfig::randomized(k, 4.0, 1.0).with_limits(Some(2 * k), None))
        .seed(seed)
        .train(&data, &bucketizer)
        .expect("training the demo session failed")
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("sgf-serve: {message}");
            return ExitCode::from(2);
        }
    };
    if args.smoke {
        return smoke();
    }

    eprintln!(
        "training demo session (population {}, k {}, seed {})...",
        args.population, args.k, args.seed
    );
    let session = train_demo_session(args.population, args.seed, args.k);
    eprintln!(
        "trained in {:.2}s ({} seeds); per-release epsilon {:?}",
        session.training_time().as_secs_f64(),
        session.seeds().len(),
        session.per_release_budget().map(|b| b.epsilon)
    );
    let mut entry = SessionEntry::new(session);
    if let Some(releases) = args.cap_releases {
        let cap = cap_admitting(&entry.session, releases)
            .expect("the randomized test always has a per-release budget");
        eprintln!(
            "capping the session at {} releases (epsilon {:.3})",
            releases, cap.epsilon
        );
        entry = entry.capped(cap);
    }
    let config = ServeConfig {
        addr: args.addr,
        queue_capacity: args.queue,
        workers: args.workers,
        ..ServeConfig::default()
    };
    let handle = match serve(config, vec![entry]) {
        Ok(handle) => handle,
        Err(err) => {
            eprintln!("sgf-serve: bind failed: {err}");
            return ExitCode::FAILURE;
        }
    };
    println!("sgf-serve listening on {}", handle.addr());
    match handle.join() {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("sgf-serve: {err}");
            ExitCode::FAILURE
        }
    }
}

/// End-to-end self-test: serve on an ephemeral port with a cap sized for
/// exactly two of three requests, verify the rejection is machine-readable,
/// and drain cleanly.
fn smoke() -> ExitCode {
    let target = 10usize;
    println!("== sgf-serve smoke: train ==");
    let session = train_demo_session(3_000, 11, 20);
    let ledger_handle = session.clone();
    let cap = cap_admitting(&session, 2 * target).expect("randomized test has a budget");
    println!(
        "cap admits {} releases (epsilon {:.3}, delta {:.3e})",
        2 * target,
        cap.epsilon,
        cap.delta
    );

    let handle = serve(
        ServeConfig {
            queue_capacity: 8,
            workers: 2,
            ..ServeConfig::default()
        },
        vec![SessionEntry::new(session).capped(cap)],
    )
    .expect("ephemeral bind failed");
    println!("== serving on {} ==", handle.addr());

    let mut client = Client::connect(handle.addr()).expect("connect failed");
    // The marginal model releases exactly `target` records per request
    // (Section 8: every candidate passes), so the third request must push
    // the worst case past the cap and be rejected at admission.
    for request_seed in 1..=3u64 {
        let call = GenerateCall::new(target)
            .with_model(ModelKind::Marginal)
            .with_request(GenerateRequest::new(target).with_seed(request_seed));
        match client.generate(&call) {
            Ok(release) => {
                assert_eq!(
                    release.records.len(),
                    target,
                    "marginal must fill the target"
                );
                println!(
                    "request {request_seed}: released {} records, cumulative epsilon {:.3}",
                    release.records.len(),
                    release.ledger_f64("total_epsilon").unwrap_or(f64::NAN)
                );
                assert!(
                    request_seed <= 2,
                    "request {request_seed} should have been over budget"
                );
            }
            Err(ClientError::Rejected(rejection)) => {
                println!(
                    "request {request_seed}: rejected with code `{}` \
                     (requested epsilon {:?}, cap epsilon {:?})",
                    rejection.code,
                    rejection
                        .detail
                        .get("requested_epsilon")
                        .and_then(|v| v.as_f64()),
                    rejection.detail.get("cap_epsilon").and_then(|v| v.as_f64()),
                );
                assert_eq!(rejection.code, reject::BUDGET_EXHAUSTED);
                assert_eq!(request_seed, 3, "only the third request may be rejected");
            }
            Err(err) => panic!("request {request_seed} failed unexpectedly: {err}"),
        }
    }

    // The shared ledger (visible through the cloned handle) matches: exactly
    // two committed requests, no leaked reservations.
    let ledger = ledger_handle.ledger();
    assert_eq!(ledger.requests, 2);
    assert_eq!(ledger.releases, 2 * target);
    assert_eq!(ledger.reserved, 0, "no reservation may leak");
    assert!(ledger.total().epsilon <= cap.epsilon);

    client.shutdown().expect("shutdown failed");
    handle.join().expect("drain failed");
    println!(
        "== sgf-serve smoke OK: 2 admitted, 1 over-budget reject, final epsilon {:.3} ==",
        ledger.total().epsilon
    );
    ExitCode::SUCCESS
}
