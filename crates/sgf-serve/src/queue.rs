//! A bounded MPMC request queue with explicit backpressure.
//!
//! Producers (connection readers) use the non-blocking
//! [`BoundedQueue::try_push`]: a full queue is surfaced to the caller — which
//! turns it into a `queue_full` rejection with a retry hint — instead of
//! blocking the connection or buffering unboundedly.  Consumers (the worker
//! pool) block on [`BoundedQueue::pop`].  [`BoundedQueue::close`] starts a
//! graceful drain: no new items are admitted, but everything already queued
//! is still handed to workers before `pop` returns `None`.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Why a [`BoundedQueue::try_push`] was refused; the rejected item is handed
/// back so the caller can settle any resources attached to it.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity — retry later.
    Full(T),
    /// The queue is closed (server draining) — do not retry.
    Closed(T),
}

struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded queue (see the module docs).
pub struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Lock the queue state, tolerating poison: every mutation of
    /// `QueueInner` is a single push/pop/flag write that cannot be observed
    /// half-done, so the state is consistent even if a holder panicked, and
    /// propagating the panic to every other producer/consumer (what
    /// `.expect()` would do) only turns one dead worker into a dead server.
    fn locked(&self) -> MutexGuard<'_, QueueInner<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A queue admitting at most `capacity` pending items (at least 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of items currently queued (racy by nature; for reporting).
    pub fn len(&self) -> usize {
        self.locked().items.len()
    }

    /// Whether the queue is currently empty (racy by nature; for reporting).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueue without blocking; a full or closed queue hands the item back.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.locked();
        if inner.closed {
            sgf_metrics::counter("serve.queue.rejected_closed").incr();
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            sgf_metrics::counter("serve.queue.rejected_full").incr();
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        sgf_metrics::counter("serve.queue.pushed").incr();
        sgf_metrics::summary("serve.queue.depth").observe(depth as u64);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeue, blocking while the queue is empty and open.  Returns `None`
    /// once the queue is closed *and* fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.locked();
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                sgf_metrics::counter("serve.queue.popped").incr();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Remove up to `limit` items matching `matches` from anywhere in the
    /// queue (preserving their relative order) without blocking.
    ///
    /// This is the coalescing primitive: a worker that just popped a job
    /// calls it to fold queued same-session requests into its service turn.
    /// It only ever *removes* work that was already admitted — capacity
    /// accounting, backpressure, and close semantics are untouched, and an
    /// empty queue returns an empty vec immediately.
    pub fn drain_matching<F>(&self, mut matches: F, limit: usize) -> Vec<T>
    where
        F: FnMut(&T) -> bool,
    {
        let mut drained = Vec::new();
        if limit == 0 {
            return drained;
        }
        let mut inner = self.locked();
        let mut idx = 0;
        while drained.len() < limit {
            let Some(item) = inner.items.get(idx) else {
                break;
            };
            if matches(item) {
                if let Some(item) = inner.items.remove(idx) {
                    drained.push(item);
                }
            } else {
                idx += 1;
            }
        }
        drop(inner);
        for _ in &drained {
            sgf_metrics::counter("serve.queue.popped").incr();
        }
        drained
    }

    /// Close the queue: subsequent pushes fail with [`PushError::Closed`],
    /// already-queued items still drain, and idle consumers wake up to exit.
    pub fn close(&self) {
        self.locked().closed = true;
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn backpressure_hands_items_back_at_capacity() {
        let queue = BoundedQueue::new(2);
        queue.try_push(1).unwrap();
        queue.try_push(2).unwrap();
        assert!(matches!(queue.try_push(3), Err(PushError::Full(3))));
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.pop(), Some(1));
        queue.try_push(3).unwrap();
        assert_eq!(queue.pop(), Some(2));
        assert_eq!(queue.pop(), Some(3));
        assert!(queue.is_empty());
    }

    #[test]
    fn close_drains_queued_items_then_stops() {
        let queue = BoundedQueue::new(4);
        queue.try_push("a").unwrap();
        queue.try_push("b").unwrap();
        queue.close();
        assert!(matches!(queue.try_push("c"), Err(PushError::Closed("c"))));
        assert_eq!(queue.pop(), Some("a"));
        assert_eq!(queue.pop(), Some("b"));
        assert_eq!(queue.pop(), None);
        assert_eq!(queue.pop(), None);
    }

    #[test]
    fn capacity_is_at_least_one() {
        let queue = BoundedQueue::new(0);
        assert_eq!(queue.capacity(), 1);
        queue.try_push(1).unwrap();
        assert!(matches!(queue.try_push(2), Err(PushError::Full(2))));
    }

    #[test]
    fn drain_matching_pulls_matches_in_order_up_to_limit() {
        let queue = BoundedQueue::new(8);
        for item in [1, 2, 3, 4, 5, 6] {
            queue.try_push(item).unwrap();
        }
        // Evens drain in their queue order, odds keep their relative order.
        let drained = queue.drain_matching(|v| v % 2 == 0, 2);
        assert_eq!(drained, vec![2, 4]);
        assert_eq!(queue.len(), 4);
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(queue.pop(), Some(3));
        assert_eq!(queue.pop(), Some(5));
        assert_eq!(queue.pop(), Some(6));
        // Nothing to match, zero limit: both are quiet no-ops.
        queue.try_push(7).unwrap();
        assert!(queue.drain_matching(|v| *v == 9, 4).is_empty());
        assert!(queue.drain_matching(|_| true, 0).is_empty());
        assert_eq!(queue.len(), 1);
    }

    #[test]
    fn consumers_block_until_an_item_or_close_arrives() {
        let queue = Arc::new(BoundedQueue::new(8));
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    let mut seen = Vec::new();
                    while let Some(item) = queue.pop() {
                        seen.push(item);
                    }
                    seen
                })
            })
            .collect();
        for i in 0..100 {
            loop {
                match queue.try_push(i) {
                    Ok(()) => break,
                    Err(PushError::Full(_)) => std::thread::yield_now(),
                    Err(PushError::Closed(_)) => unreachable!("queue closed early"),
                }
            }
        }
        queue.close();
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }
}
