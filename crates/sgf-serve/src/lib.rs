//! # sgf-serve
//!
//! A budget-capped release service over a trained
//! [`SynthesisSession`](sgf_core::SynthesisSession) — the deployable
//! front-end for the paper's release mechanism (Section 8 discusses composing
//! (ε, δ) across releases; the ledger's reserve/commit protocol enforces a
//! cap on that composition under concurrency).
//!
//! * [`protocol`] — the JSON-lines TCP protocol: `generate` / `status` /
//!   `ledger` / `metrics` / `trace` / `shutdown` verbs, machine-readable
//!   rejection codes;
//! * [`server`] — the std-only threaded server: accept loop, **bounded
//!   request queue with backpressure**, worker pool fanning requests onto
//!   `session.generate`, **atomic (ε, δ) admission control**, graceful
//!   drain.  Every session is served under a `session=<name>` metric scope,
//!   so the `metrics` verb reports per-session labeled cells that sum
//!   exactly to the global rollup, and the `trace` verb returns the
//!   deterministic span trees (train → generate → proposals → per-candidate
//!   privacy tests) of recent requests.  `queue_full` rejections carry a
//!   retry hint derived from the session's observed p95 service time;
//! * [`client`] — a blocking client used by the tests, the example, and the
//!   `sgf-serve --smoke` self-test;
//! * [`queue`] — the bounded MPMC queue;
//! * [`json`] — the hand-rolled JSON reader/writer (the build is offline;
//!   see `vendor/README.md`).
//!
//! ## Quickstart
//!
//! ```no_run
//! use sgf_core::{PrivacyTestConfig, SynthesisEngine};
//! use sgf_data::acs::{acs_bucketizer, acs_schema, generate_acs};
//! use sgf_serve::{cap_admitting, serve, GenerateCall, ServeConfig, SessionEntry};
//!
//! let population = generate_acs(4_000, 42);
//! let bucketizer = acs_bucketizer(&acs_schema());
//! let session = SynthesisEngine::builder()
//!     .privacy_test(PrivacyTestConfig::randomized(20, 4.0, 1.0))
//!     .seed(42)
//!     .train(&population, &bucketizer)
//!     .unwrap();
//!
//! // Cap the session at the composed budget of 100 released records, then
//! // serve it; port 0 binds an ephemeral port.
//! let cap = cap_admitting(&session, 100).unwrap();
//! let handle = serve(
//!     ServeConfig::default(),
//!     vec![SessionEntry::new(session).capped(cap)],
//! )
//! .unwrap();
//! println!("serving on {}", handle.addr());
//!
//! let mut client = sgf_serve::Client::connect(handle.addr()).unwrap();
//! let release = client.generate(&GenerateCall::new(25)).unwrap();
//! println!("released {} records", release.records.len());
//! client.shutdown().unwrap();
//! handle.join().unwrap();
//! ```

pub mod client;
pub mod json;
pub mod protocol;
pub mod queue;
pub mod server;

pub use client::{Client, ClientError, ClientResult, Rejection, Release};
pub use protocol::{reject, GenerateCall, ModelKind, Request, UpdateCall, DEFAULT_SESSION};
pub use queue::{BoundedQueue, PushError};
pub use server::{
    cap_admitting, serve, ServeConfig, ServerHandle, SessionEntry, MAX_ADAPTIVE_FOLD,
};
