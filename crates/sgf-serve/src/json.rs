//! A minimal JSON reader/writer for the serve protocol.
//!
//! The workspace builds offline (the vendored `serde` stub carries no real
//! serializer — see `vendor/README.md`), so the wire protocol is handled by
//! this hand-rolled module instead: a strict recursive-descent parser for the
//! values the protocol uses, plus string escaping for the writer side.  It
//! supports the full JSON value grammar (objects, arrays, strings with
//! escapes, numbers, booleans, null) but none of serde's data-model mapping —
//! the protocol layer pattern-matches on [`Value`] directly.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal that fits `u64`, kept exact — request
    /// seeds are `u64` and must round-trip without `f64` precision loss.
    Uint(u64),
    /// Any other JSON number (parsed as `f64`, like JavaScript).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.  Key order is not preserved (protocol fields are accessed
    /// by name, never by position).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Parse one complete JSON document; trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after the JSON value"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number (lossy above 2^53 for
    /// integers — use [`as_u64`](Value::as_u64) where exactness matters).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            Value::Uint(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The numeric payload as a `u64`, if it is a non-negative integer.
    /// Integer literals are exact across the whole `u64` range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Uint(u) => Some(*u),
            // Non-literal integral values (e.g. `1e3`) within f64's exact
            // integer range.
            Value::Number(n) if n.fract() == 0.0 && (0.0..=2f64.powi(53)).contains(n) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one exactly.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Render the value back to one line of canonical JSON: object keys in
    /// sorted order (the `Object` map is a `BTreeMap`), strings escaped,
    /// non-finite numbers as `null`.  Parsing a canonical document and
    /// rendering it reproduces the document, which is what lets clients
    /// persist server observability responses byte-stably.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Uint(u) => out.push_str(&u.to_string()),
            Value::Number(n) => {
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Value::String(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(key));
                    out.push_str("\":");
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value map, if this is an object.
    pub fn as_object(&self) -> Option<&std::collections::BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    // Named to stay visibly distinct from the panicking `Option::expect` /
    // `Result::expect` — nothing in this parser is allowed to panic (R3).
    fn expect_byte(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect_byte(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or_else(|| self.error("dangling escape"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.error("unknown escape sequence")),
                    }
                }
                Some(byte) if byte < 0x20 => {
                    return Err(self.error("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // byte stream is valid UTF-8 by construction; the error
                    // arm is unreachable but must not be a panic).
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| b & 0b1100_0000 == 0b1000_0000) {
                        self.pos += 1;
                    }
                    let scalar = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    out.push_str(scalar);
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let unit = self.hex4()?;
        // Decode surrogate pairs; lone surrogates are rejected.
        if (0xD800..=0xDBFF).contains(&unit) {
            if !self.bytes[self.pos..].starts_with(b"\\u") {
                return Err(self.error("lone high surrogate"));
            }
            self.pos += 2;
            let low = self.hex4()?;
            if !(0xDC00..=0xDFFF).contains(&low) {
                return Err(self.error("invalid low surrogate"));
            }
            let scalar = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
            char::from_u32(scalar).ok_or_else(|| self.error("invalid surrogate pair"))
        } else {
            char::from_u32(unit).ok_or_else(|| self.error("invalid \\u escape"))
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.error("expected 4 hex digits after \\u")),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        let mut integral = true;
        if self.peek() == Some(b'-') {
            integral = false;
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // The consumed region is ASCII digits/sign/dot/exponent, so this
        // never fails — but a parse error beats a worker panic.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid UTF-8 in number"))?;
        // Keep non-negative integer literals exact (u64 seeds); anything
        // else — signs, fractions, exponents, > u64::MAX — goes through f64.
        if integral {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Uint(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.error("invalid number"))
    }
}

/// Escape a string for embedding in a JSON document (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let v = Value::parse(
            r#"{"verb":"generate","target":10,"seed":7,"stream":false,"omega":{"lo":9,"hi":11},"record":[1,2,3],"cap":null}"#,
        )
        .unwrap();
        assert_eq!(v.get("verb").and_then(Value::as_str), Some("generate"));
        assert_eq!(v.get("target").and_then(Value::as_usize), Some(10));
        assert_eq!(v.get("stream").and_then(Value::as_bool), Some(false));
        assert_eq!(
            v.get("omega")
                .and_then(|o| o.get("hi"))
                .and_then(Value::as_u64),
            Some(11)
        );
        let record: Vec<u64> = v
            .get("record")
            .and_then(Value::as_array)
            .unwrap()
            .iter()
            .map(|x| x.as_u64().unwrap())
            .collect();
        assert_eq!(record, vec![1, 2, 3]);
        assert_eq!(v.get("cap"), Some(&Value::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_numbers_strings_and_escapes() {
        assert_eq!(Value::parse("-12.5e2").unwrap().as_f64(), Some(-1250.0));
        assert_eq!(Value::parse("0").unwrap().as_usize(), Some(0));
        assert_eq!(Value::parse("1.5").unwrap().as_usize(), None);
        assert_eq!(Value::parse("-1").unwrap().as_usize(), None);
        let s = Value::parse(r#""a\"b\\c\nd\u00e9 \ud83e\udd80""#).unwrap();
        assert_eq!(s.as_str(), Some("a\"b\\c\ndé 🦀"));
        assert_eq!(Value::parse("  true ").unwrap().as_bool(), Some(true));
        assert_eq!(Value::parse("[]").unwrap().as_array(), Some(&[][..]));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            "{\"a\"}",
            "{\"a\":}",
            "[1,",
            "\"",
            "tru",
            "1 2",
            "{\"a\":1,}",
            "nul",
            "\"\\q\"",
            "\"\\ud800\"",
        ] {
            assert!(Value::parse(bad).is_err(), "accepted malformed {bad:?}");
        }
    }

    #[test]
    fn integer_literals_stay_exact_across_the_u64_range() {
        // 2^53 + 1 is the first integer f64 cannot represent; u64::MAX is
        // the worst case a request seed can carry.  Both must survive.
        for n in [0u64, 9_007_199_254_740_993, u64::MAX - 1, u64::MAX] {
            let parsed = Value::parse(&n.to_string()).unwrap();
            assert_eq!(parsed, Value::Uint(n));
            assert_eq!(parsed.as_u64(), Some(n));
        }
        // Integral but non-literal forms fall back to f64 and stay usable
        // inside its exact range only.
        assert_eq!(Value::parse("1e3").unwrap().as_u64(), Some(1000));
        assert_eq!(Value::parse("1e300").unwrap().as_u64(), None);
        // Beyond u64::MAX the literal degrades to f64 (and is not an integer).
        assert_eq!(Value::parse("18446744073709551616").unwrap().as_u64(), None);
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "line\nwith \"quotes\", back\\slash, tab\t and unicode é🦀";
        let encoded = format!("\"{}\"", escape(original));
        assert_eq!(Value::parse(&encoded).unwrap().as_str(), Some(original));
    }
}
