//! Feature-matrix representation and encoding of discrete records.
//!
//! The classification experiments (Section 6.3) follow the UCI-Adult recipe:
//! the income class is the binary target and the remaining attributes are the
//! features.  For the DP-ERM comparison (Table 4) the paper additionally
//! follows Chaudhuri et al.: categorical attributes are one-hot encoded,
//! numerical features are scaled to `[0, 1]`, and every example is normalized
//! to have norm at most 1.

use rand::seq::SliceRandom;
use rand::Rng;
use sgf_data::{AttributeKind, Dataset};

/// A binary-classification dataset in dense feature form.
#[derive(Debug, Clone, Default)]
pub struct MlDataset {
    /// Feature vectors, one per example.
    pub features: Vec<Vec<f64>>,
    /// Binary labels (0 or 1), one per example.
    pub labels: Vec<u8>,
}

impl MlDataset {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no examples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of features per example (0 for an empty dataset).
    pub fn dimension(&self) -> usize {
        self.features.first().map_or(0, Vec::len)
    }

    /// Fraction of examples with label 1.
    pub fn positive_rate(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.labels.iter().filter(|&&l| l == 1).count() as f64 / self.len() as f64
    }

    /// The majority label (ties resolved to 0).
    pub fn majority_label(&self) -> u8 {
        u8::from(self.positive_rate() > 0.5)
    }

    /// Random subsample of `n` examples with replacement (bootstrap).
    pub fn bootstrap<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> MlDataset {
        let mut out = MlDataset::default();
        for _ in 0..n {
            let i = rng.gen_range(0..self.len());
            out.features.push(self.features[i].clone());
            out.labels.push(self.labels[i]);
        }
        out
    }

    /// Split into train/test partitions.
    pub fn train_test_split<R: Rng + ?Sized>(
        &self,
        test_fraction: f64,
        rng: &mut R,
    ) -> (MlDataset, MlDataset) {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        let n_test = (test_fraction * self.len() as f64).round() as usize;
        let pick = |range: &[usize]| MlDataset {
            features: range.iter().map(|&i| self.features[i].clone()).collect(),
            labels: range.iter().map(|&i| self.labels[i]).collect(),
        };
        (pick(&idx[n_test..]), pick(&idx[..n_test]))
    }

    /// Keep only the first `n` examples.
    pub fn truncated(&self, n: usize) -> MlDataset {
        let n = n.min(self.len());
        MlDataset {
            features: self.features[..n].to_vec(),
            labels: self.labels[..n].to_vec(),
        }
    }
}

/// How records are converted into feature vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// One column per attribute holding the raw value index — what tree-based
    /// learners consume.
    Ordinal,
    /// One-hot encode categorical attributes and scale numerical attributes to
    /// `[0, 1]`; optionally renormalize rows to unit norm (Chaudhuri et al.
    /// pre-processing for the DP-ERM classifiers of Table 4).
    OneHotNormalized {
        /// Scale every example so its L2 norm is at most 1.
        unit_norm: bool,
    },
}

/// Convert a discrete dataset into a binary classification problem predicting
/// `target_attr` (which must have cardinality 2) from all other attributes.
pub fn encode_dataset(dataset: &Dataset, target_attr: usize, encoding: Encoding) -> MlDataset {
    let schema = dataset.schema();
    assert_eq!(
        schema.cardinality(target_attr),
        2,
        "the classification target must be binary"
    );
    let mut out = MlDataset::default();
    for record in dataset.records() {
        let mut features = Vec::new();
        for attr in 0..schema.len() {
            if attr == target_attr {
                continue;
            }
            let value = record.get(attr);
            let card = schema.cardinality(attr);
            match encoding {
                Encoding::Ordinal => features.push(value as f64),
                Encoding::OneHotNormalized { .. } => {
                    let numerical = matches!(
                        schema.attribute(attr).kind(),
                        AttributeKind::Numerical { .. }
                    );
                    if numerical || card > 32 {
                        // Scale to [0, 1]; very wide categorical domains are
                        // treated ordinally to keep the dimension manageable.
                        features.push(value as f64 / (card - 1).max(1) as f64);
                    } else {
                        for v in 0..card {
                            features.push(if v == value as usize { 1.0 } else { 0.0 });
                        }
                    }
                }
            }
        }
        if let Encoding::OneHotNormalized { unit_norm: true } = encoding {
            let norm = features.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm > 1.0 {
                for x in features.iter_mut() {
                    *x /= norm;
                }
            }
        }
        out.features.push(features);
        out.labels.push(record.get(target_attr) as u8);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sgf_data::acs::{attr, generate_acs};

    #[test]
    fn ordinal_encoding_has_one_column_per_feature_attribute() {
        let data = generate_acs(200, 1);
        let ml = encode_dataset(&data, attr::INCOME, Encoding::Ordinal);
        assert_eq!(ml.len(), 200);
        assert_eq!(ml.dimension(), 10);
        assert!(ml.labels.iter().all(|&l| l <= 1));
    }

    #[test]
    fn one_hot_encoding_expands_categoricals_and_bounds_norm() {
        let data = generate_acs(200, 2);
        let ml = encode_dataset(
            &data,
            attr::INCOME,
            Encoding::OneHotNormalized { unit_norm: true },
        );
        assert!(ml.dimension() > 10);
        for f in &ml.features {
            let norm = f.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!(norm <= 1.0 + 1e-9);
            assert!(f.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn split_and_bootstrap_preserve_shapes() {
        let data = generate_acs(300, 3);
        let ml = encode_dataset(&data, attr::INCOME, Encoding::Ordinal);
        let mut rng = StdRng::seed_from_u64(1);
        let (train, test) = ml.train_test_split(0.3, &mut rng);
        assert_eq!(train.len() + test.len(), 300);
        assert_eq!(test.len(), 90);
        let boot = ml.bootstrap(50, &mut rng);
        assert_eq!(boot.len(), 50);
        assert_eq!(boot.dimension(), ml.dimension());
        assert_eq!(ml.truncated(10).len(), 10);
    }

    #[test]
    fn positive_rate_and_majority() {
        let ml = MlDataset {
            features: vec![vec![0.0]; 4],
            labels: vec![1, 1, 1, 0],
        };
        assert!((ml.positive_rate() - 0.75).abs() < 1e-12);
        assert_eq!(ml.majority_label(), 1);
        assert_eq!(MlDataset::default().majority_label(), 0);
    }

    #[test]
    #[should_panic(expected = "binary")]
    fn non_binary_target_panics() {
        let data = generate_acs(10, 4);
        encode_dataset(&data, attr::AGE, Encoding::Ordinal);
    }
}
