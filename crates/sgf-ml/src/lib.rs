//! # sgf-ml
//!
//! Machine-learning substrate for the SGF reproduction of *Plausible
//! Deniability for Privacy-Preserving Data Synthesis* (VLDB 2017): the
//! classifiers the evaluation trains on real, marginal, and synthetic data
//! (classification tree, random forest, AdaBoost.M1, logistic regression and
//! linear SVM), the Chaudhuri et al. differentially-private ERM baselines of
//! Table 4, feature encoding, and the accuracy / agreement-rate metrics.

pub mod adaboost;
pub mod classifier;
pub mod dataset;
pub mod dp_erm;
pub mod forest;
pub mod linear;
pub mod metrics;
pub mod tree;

pub use adaboost::{AdaBoost, AdaBoostConfig};
pub use classifier::{Classifier, ConstantClassifier};
pub use dataset::{encode_dataset, Encoding, MlDataset};
pub use dp_erm::{fit_private, DpErmConfig, DpErmMechanism};
pub use forest::{ForestConfig, RandomForest};
pub use linear::{LinearConfig, LinearModel, Loss};
pub use metrics::{accuracy, agreement_rate, ConfusionMatrix};
pub use tree::{DecisionTree, TreeConfig};
