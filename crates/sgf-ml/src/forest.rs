//! Random forests: bootstrap-aggregated classification trees with per-node
//! feature subsampling (the "RF" columns of Tables 3 and 5 and Figure 2).

use crate::classifier::Classifier;
use crate::dataset::MlDataset;
use crate::tree::{DecisionTree, TreeConfig};
use rand::Rng;

/// Hyper-parameters of the random-forest learner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestConfig {
    /// Number of trees.
    pub trees: usize,
    /// Configuration of each individual tree; `features_per_split` defaults to
    /// roughly sqrt(d) when left as `None`.
    pub tree: TreeConfig,
    /// Bootstrap sample size as a fraction of the training-set size.
    pub sample_fraction: f64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            trees: 30,
            tree: TreeConfig {
                max_depth: 14,
                min_samples_split: 4,
                features_per_split: None,
                max_thresholds: 16,
            },
            sample_fraction: 1.0,
        }
    }
}

/// A trained random forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Train a forest.
    pub fn fit<R: Rng + ?Sized>(data: &MlDataset, config: &ForestConfig, rng: &mut R) -> Self {
        assert!(
            !data.is_empty(),
            "cannot train a forest on an empty dataset"
        );
        assert!(config.trees > 0, "a forest needs at least one tree");
        let dimension = data.dimension();
        let mut tree_config = config.tree;
        if tree_config.features_per_split.is_none() {
            tree_config.features_per_split =
                Some(((dimension as f64).sqrt().ceil() as usize).max(1));
        }
        let sample_size = ((config.sample_fraction * data.len() as f64).round() as usize).max(1);
        let trees = (0..config.trees)
            .map(|_| {
                let bootstrap = data.bootstrap(sample_size, rng);
                DecisionTree::fit(&bootstrap, &tree_config, rng)
            })
            .collect();
        RandomForest { trees }
    }

    /// Number of trees in the ensemble.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the ensemble is empty (never true after `fit`).
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Average positive-class score across the ensemble.
    pub fn predict_score(&self, features: &[f64]) -> f64 {
        self.trees
            .iter()
            .map(|t| t.predict_score(features))
            .sum::<f64>()
            / self.trees.len() as f64
    }
}

impl Classifier for RandomForest {
    fn predict(&self, features: &[f64]) -> u8 {
        u8::from(self.predict_score(features) > 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use crate::tree::TreeConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Noisy XOR-ish problem that a single shallow tree struggles with.
    fn xor(n: usize, seed: u64) -> MlDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = MlDataset::default();
        for _ in 0..n {
            let x0: f64 = rng.gen();
            let x1: f64 = rng.gen();
            let noisy = rng.gen::<f64>() < 0.05;
            let label = u8::from((x0 > 0.5) ^ (x1 > 0.5)) ^ u8::from(noisy);
            data.features.push(vec![x0, x1]);
            data.labels.push(label);
        }
        data
    }

    #[test]
    fn forest_beats_chance_on_xor() {
        let train = xor(1200, 1);
        let test = xor(400, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let forest = RandomForest::fit(&train, &ForestConfig::default(), &mut rng);
        let acc = accuracy(&forest, &test);
        assert!(acc > 0.85, "accuracy {acc}");
        assert_eq!(forest.len(), 30);
    }

    #[test]
    fn forest_beats_single_shallow_tree() {
        let train = xor(1200, 4);
        let test = xor(400, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let shallow = TreeConfig {
            max_depth: 2,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&train, &shallow, &mut rng);
        let forest = RandomForest::fit(
            &train,
            &ForestConfig {
                trees: 25,
                tree: TreeConfig {
                    max_depth: 8,
                    ..shallow
                },
                sample_fraction: 0.8,
            },
            &mut rng,
        );
        assert!(accuracy(&forest, &test) > accuracy(&tree, &test));
    }

    #[test]
    fn scores_are_probabilities() {
        let train = xor(300, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let forest = RandomForest::fit(&train, &ForestConfig::default(), &mut rng);
        for f in &train.features {
            let s = forest.predict_score(f);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    #[should_panic(expected = "at least one tree")]
    fn zero_trees_panics() {
        let mut rng = StdRng::seed_from_u64(9);
        RandomForest::fit(
            &xor(50, 10),
            &ForestConfig {
                trees: 0,
                ..ForestConfig::default()
            },
            &mut rng,
        );
    }
}
