//! L2-regularized linear classifiers: logistic regression and (Huber-)hinge
//! support vector machines, trained by full-batch gradient descent on the
//! empirical risk
//!
//! ```text
//! J(w) = (1/n) Σ_i loss(y_i · w·x_i) + (λ/2) ||w||²        y_i ∈ {−1, +1}
//! ```
//!
//! These are the non-private "LR" and "SVM" classifiers of Table 4; the
//! differentially-private variants of Chaudhuri et al. reuse the same trainer
//! through the hooks for an extra linear term (objective perturbation) and an
//! extra regularizer (the Δ correction) — see [`crate::dp_erm`].

use crate::classifier::Classifier;
use crate::dataset::MlDataset;
use serde::{Deserialize, Serialize};

/// The convex surrogate loss minimized by the trainer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Loss {
    /// Logistic loss `ln(1 + e^{-z})` — logistic regression.
    Logistic,
    /// Huber-smoothed hinge loss with half-width `h = 0.5` (the smooth SVM
    /// surrogate used by Chaudhuri et al., required for objective perturbation).
    HuberHinge,
}

impl Loss {
    /// Huber half-width.
    pub const HUBER_H: f64 = 0.5;

    /// Loss value at margin `z = y · w·x`.
    pub fn value(&self, z: f64) -> f64 {
        match self {
            Loss::Logistic => (1.0 + (-z).exp()).ln(),
            Loss::HuberHinge => {
                let h = Self::HUBER_H;
                if z > 1.0 + h {
                    0.0
                } else if z < 1.0 - h {
                    1.0 - z
                } else {
                    (1.0 + h - z).powi(2) / (4.0 * h)
                }
            }
        }
    }

    /// Derivative of the loss with respect to the margin `z`.
    pub fn derivative(&self, z: f64) -> f64 {
        match self {
            Loss::Logistic => -1.0 / (1.0 + z.exp()),
            Loss::HuberHinge => {
                let h = Self::HUBER_H;
                if z > 1.0 + h {
                    0.0
                } else if z < 1.0 - h {
                    -1.0
                } else {
                    -(1.0 + h - z) / (2.0 * h)
                }
            }
        }
    }

    /// Upper bound `c` on the second derivative of the loss, used by the
    /// objective-perturbation privacy analysis (1/4 for logistic, 1/(2h) for
    /// the Huber hinge).
    pub fn curvature_bound(&self) -> f64 {
        match self {
            Loss::Logistic => 0.25,
            Loss::HuberHinge => 1.0 / (2.0 * Self::HUBER_H),
        }
    }
}

/// Trainer hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearConfig {
    /// Surrogate loss.
    pub loss: Loss,
    /// L2 regularization strength λ.
    pub lambda: f64,
    /// Number of gradient-descent iterations.
    pub iterations: usize,
    /// Initial learning rate (decayed as `1 / (1 + t/50)`).
    pub learning_rate: f64,
}

impl Default for LinearConfig {
    fn default() -> Self {
        LinearConfig {
            loss: Loss::Logistic,
            lambda: 1e-4,
            iterations: 300,
            learning_rate: 1.0,
        }
    }
}

/// A trained linear binary classifier (`predict 1 iff w·x > 0`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    weights: Vec<f64>,
}

impl LinearModel {
    /// Train on uniformly-weighted data with no extra terms.
    pub fn fit(data: &MlDataset, config: &LinearConfig) -> Self {
        Self::fit_with_terms(data, config, None, 0.0)
    }

    /// Train with an optional extra linear term `(b·w)/n` added to the
    /// objective and an extra L2 regularizer `delta/2 ||w||²` — the two hooks
    /// objective perturbation needs.
    pub fn fit_with_terms(
        data: &MlDataset,
        config: &LinearConfig,
        linear_term: Option<&[f64]>,
        extra_lambda: f64,
    ) -> Self {
        assert!(
            !data.is_empty(),
            "cannot train a linear model on an empty dataset"
        );
        assert!(
            config.lambda.is_finite() && config.lambda >= 0.0,
            "lambda must be non-negative"
        );
        let n = data.len() as f64;
        let d = data.dimension();
        if let Some(b) = linear_term {
            assert_eq!(b.len(), d, "linear term must have the feature dimension");
        }
        let lambda = config.lambda + extra_lambda;
        let mut weights = vec![0.0f64; d];

        for t in 0..config.iterations {
            // Full-batch gradient of the regularized empirical risk.
            let mut gradient = vec![0.0f64; d];
            for (x, &label) in data.features.iter().zip(data.labels.iter()) {
                let y = if label == 1 { 1.0 } else { -1.0 };
                let margin = y * dot(&weights, x);
                let g = config.loss.derivative(margin) * y / n;
                for (gi, &xi) in gradient.iter_mut().zip(x.iter()) {
                    *gi += g * xi;
                }
            }
            for (gi, wi) in gradient.iter_mut().zip(weights.iter()) {
                *gi += lambda * wi;
            }
            if let Some(b) = linear_term {
                for (gi, &bi) in gradient.iter_mut().zip(b.iter()) {
                    *gi += bi / n;
                }
            }
            let rate = config.learning_rate / (1.0 + t as f64 / 50.0);
            for (wi, gi) in weights.iter_mut().zip(gradient.iter()) {
                *wi -= rate * gi;
            }
        }
        LinearModel { weights }
    }

    /// The weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Replace the weight vector (used by output perturbation).
    pub fn with_weights(weights: Vec<f64>) -> Self {
        LinearModel { weights }
    }

    /// Raw decision value `w·x`.
    pub fn decision_value(&self, features: &[f64]) -> f64 {
        dot(&self.weights, features)
    }

    /// Regularized empirical risk of this model on a dataset (diagnostics/tests).
    pub fn objective(&self, data: &MlDataset, config: &LinearConfig) -> f64 {
        let n = data.len() as f64;
        let risk: f64 = data
            .features
            .iter()
            .zip(data.labels.iter())
            .map(|(x, &label)| {
                let y = if label == 1 { 1.0 } else { -1.0 };
                config.loss.value(y * dot(&self.weights, x))
            })
            .sum::<f64>()
            / n;
        risk + 0.5 * config.lambda * self.weights.iter().map(|w| w * w).sum::<f64>()
    }
}

impl Classifier for LinearModel {
    fn predict(&self, features: &[f64]) -> u8 {
        u8::from(self.decision_value(features) > 0.0)
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Separable problem with labels determined by the sign of x0 - x1.
    fn separable(n: usize, seed: u64) -> MlDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = MlDataset::default();
        for _ in 0..n {
            let x0: f64 = rng.gen::<f64>() - 0.5;
            let x1: f64 = rng.gen::<f64>() - 0.5;
            data.features.push(vec![x0, x1]);
            data.labels.push(u8::from(x0 - x1 > 0.0));
        }
        data
    }

    #[test]
    fn logistic_regression_separates() {
        let train = separable(800, 1);
        let test = separable(300, 2);
        let model = LinearModel::fit(&train, &LinearConfig::default());
        assert!(accuracy(&model, &test) > 0.93);
    }

    #[test]
    fn huber_svm_separates() {
        let train = separable(800, 3);
        let test = separable(300, 4);
        let config = LinearConfig {
            loss: Loss::HuberHinge,
            ..LinearConfig::default()
        };
        let model = LinearModel::fit(&train, &config);
        assert!(accuracy(&model, &test) > 0.93);
    }

    #[test]
    fn loss_functions_are_convex_surrogates() {
        for loss in [Loss::Logistic, Loss::HuberHinge] {
            // Decreasing in the margin, non-negative, ~0 for large margins.
            assert!(loss.value(-1.0) > loss.value(0.0));
            assert!(loss.value(0.0) > loss.value(2.5));
            assert!(loss.value(5.0) < 0.01);
            assert!(loss.value(-5.0) > 1.0);
            // Derivative bounded in [-1, 0].
            for z in [-3.0, -1.0, 0.0, 0.9, 1.0, 1.4, 3.0] {
                let d = loss.derivative(z);
                assert!(
                    (-1.0..=0.0).contains(&d),
                    "{loss:?} derivative at {z} = {d}"
                );
            }
            assert!(loss.curvature_bound() > 0.0);
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        for loss in [Loss::Logistic, Loss::HuberHinge] {
            for z in [-2.0, -0.3, 0.6, 1.0, 1.2, 2.0] {
                let eps = 1e-6;
                let numeric = (loss.value(z + eps) - loss.value(z - eps)) / (2.0 * eps);
                assert!(
                    (numeric - loss.derivative(z)).abs() < 1e-5,
                    "{loss:?} at {z}: numeric {numeric} vs analytic {}",
                    loss.derivative(z)
                );
            }
        }
    }

    #[test]
    fn stronger_regularization_shrinks_weights() {
        let train = separable(500, 5);
        let weak = LinearModel::fit(
            &train,
            &LinearConfig {
                lambda: 1e-5,
                ..LinearConfig::default()
            },
        );
        let strong = LinearModel::fit(
            &train,
            &LinearConfig {
                lambda: 1.0,
                ..LinearConfig::default()
            },
        );
        let norm = |m: &LinearModel| m.weights().iter().map(|w| w * w).sum::<f64>().sqrt();
        assert!(norm(&strong) < norm(&weak));
    }

    #[test]
    fn extra_linear_term_biases_the_solution() {
        let train = separable(500, 6);
        let config = LinearConfig::default();
        let plain = LinearModel::fit(&train, &config);
        let pushed = LinearModel::fit_with_terms(&train, &config, Some(&[50.0, 0.0]), 0.0);
        // A large positive linear term on w_0 pushes that weight down.
        assert!(pushed.weights()[0] < plain.weights()[0]);
    }

    #[test]
    fn objective_decreases_relative_to_zero_model() {
        let train = separable(500, 7);
        let config = LinearConfig::default();
        let trained = LinearModel::fit(&train, &config);
        let zero = LinearModel::with_weights(vec![0.0, 0.0]);
        assert!(trained.objective(&train, &config) < zero.objective(&train, &config));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        LinearModel::fit(&MlDataset::default(), &LinearConfig::default());
    }
}
