//! Classification metrics: accuracy, agreement rate, confusion matrices.
//!
//! The evaluation of Section 6.3 reports two quantities per classifier pair:
//! *accuracy* on a held-out test set and the *agreement rate* — the fraction
//! of test records on which a classifier trained on synthetic data makes the
//! same prediction as one trained on real data (right or wrong).

use crate::classifier::Classifier;
use crate::dataset::MlDataset;

/// A 2x2 confusion matrix for binary classification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// Label 1 predicted as 1.
    pub true_positive: usize,
    /// Label 0 predicted as 0.
    pub true_negative: usize,
    /// Label 0 predicted as 1.
    pub false_positive: usize,
    /// Label 1 predicted as 0.
    pub false_negative: usize,
}

impl ConfusionMatrix {
    /// Build the confusion matrix of a classifier on a dataset.
    pub fn evaluate<C: Classifier + ?Sized>(classifier: &C, data: &MlDataset) -> Self {
        let mut cm = ConfusionMatrix::default();
        for (features, &label) in data.features.iter().zip(data.labels.iter()) {
            let predicted = classifier.predict(features);
            match (label, predicted) {
                (1, 1) => cm.true_positive += 1,
                (0, 0) => cm.true_negative += 1,
                (0, 1) => cm.false_positive += 1,
                _ => cm.false_negative += 1,
            }
        }
        cm
    }

    /// Total number of evaluated examples.
    pub fn total(&self) -> usize {
        self.true_positive + self.true_negative + self.false_positive + self.false_negative
    }

    /// Classification accuracy.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.true_positive + self.true_negative) as f64 / self.total() as f64
    }

    /// Precision for the positive class (1.0 when nothing was predicted positive).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positive + self.false_positive;
        if denom == 0 {
            1.0
        } else {
            self.true_positive as f64 / denom as f64
        }
    }

    /// Recall for the positive class (1.0 when there are no positives).
    pub fn recall(&self) -> f64 {
        let denom = self.true_positive + self.false_negative;
        if denom == 0 {
            1.0
        } else {
            self.true_positive as f64 / denom as f64
        }
    }
}

/// Accuracy of a classifier on a dataset.
pub fn accuracy<C: Classifier + ?Sized>(classifier: &C, data: &MlDataset) -> f64 {
    ConfusionMatrix::evaluate(classifier, data).accuracy()
}

/// Agreement rate between two classifiers on the same test records: the
/// fraction of records for which they make the same prediction.
pub fn agreement_rate<A, B>(a: &A, b: &B, data: &MlDataset) -> f64
where
    A: Classifier + ?Sized,
    B: Classifier + ?Sized,
{
    if data.is_empty() {
        return 0.0;
    }
    let agreements = data
        .features
        .iter()
        .filter(|f| a.predict(f) == b.predict(f))
        .count();
    agreements as f64 / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::ConstantClassifier;

    fn toy() -> MlDataset {
        MlDataset {
            features: vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]],
            labels: vec![0, 0, 1, 1],
        }
    }

    #[test]
    fn confusion_matrix_of_constant_classifier() {
        let data = toy();
        let always_one = ConstantClassifier::new(1);
        let cm = ConfusionMatrix::evaluate(&always_one, &data);
        assert_eq!(cm.true_positive, 2);
        assert_eq!(cm.false_positive, 2);
        assert_eq!(cm.total(), 4);
        assert!((cm.accuracy() - 0.5).abs() < 1e-12);
        assert!((cm.precision() - 0.5).abs() < 1e-12);
        assert!((cm.recall() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn agreement_rate_bounds() {
        let data = toy();
        let ones = ConstantClassifier::new(1);
        let zeros = ConstantClassifier::new(0);
        assert_eq!(agreement_rate(&ones, &ones, &data), 1.0);
        assert_eq!(agreement_rate(&ones, &zeros, &data), 0.0);
        assert_eq!(agreement_rate(&ones, &zeros, &MlDataset::default()), 0.0);
    }

    #[test]
    fn empty_confusion_matrix_is_safe() {
        let cm = ConfusionMatrix::default();
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.precision(), 1.0);
        assert_eq!(cm.recall(), 1.0);
    }
}
