//! Differentially-private empirical risk minimization (Chaudhuri, Monteleoni,
//! Sarwate, JMLR 2011) — the privacy-preserving logistic-regression and SVM
//! baselines of Table 4.
//!
//! Two mechanisms are implemented for L2-regularized linear classifiers over
//! examples with `‖x‖ ≤ 1`:
//!
//! * **Output perturbation**: train the non-private minimizer and add a noise
//!   vector with density `∝ exp(-β‖b‖)` where `β = n λ ε / 2` (the L2
//!   sensitivity of the minimizer is `2/(n λ)`).
//! * **Objective perturbation**: add a random linear term `bᵀw / n` to the
//!   objective before minimizing, with `‖b‖` drawn from `Gamma(d, 2/ε')` and
//!   the privacy-dependent corrections `ε'`, Δ of Algorithm 2.

use crate::dataset::MlDataset;
use crate::linear::{LinearConfig, LinearModel};
use rand::Rng;
use serde::{Deserialize, Serialize};
use sgf_stats::sample_gamma;

/// Which DP-ERM mechanism to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DpErmMechanism {
    /// Perturb the learned weight vector.
    OutputPerturbation,
    /// Perturb the optimization objective.
    ObjectivePerturbation,
}

/// Configuration of a DP-ERM training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DpErmConfig {
    /// The underlying trainer (loss, λ, iterations).
    pub linear: LinearConfig,
    /// Privacy budget ε.
    pub epsilon: f64,
    /// Mechanism.
    pub mechanism: DpErmMechanism,
}

/// Sample a vector with `‖b‖ ~ Gamma(d, scale)` and uniformly random direction,
/// i.e. density proportional to `exp(-‖b‖ / scale)`.
fn sample_l2_laplace<R: Rng + ?Sized>(dimension: usize, scale: f64, rng: &mut R) -> Vec<f64> {
    assert!(dimension > 0, "dimension must be positive");
    assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
    // Norm: sum of `dimension` unit-scale Gamma(1) draws equals Gamma(dimension).
    let norm = sample_gamma(dimension as f64, rng) * scale;
    // Direction: normalized standard Gaussian vector (Box-Muller).
    let mut direction: Vec<f64> = (0..dimension)
        .map(|_| {
            let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.gen::<f64>();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        })
        .collect();
    let len = direction
        .iter()
        .map(|x| x * x)
        .sum::<f64>()
        .sqrt()
        .max(f64::MIN_POSITIVE);
    for x in direction.iter_mut() {
        *x = *x / len * norm;
    }
    direction
}

/// Train an ε-differentially-private linear classifier.
///
/// # Panics
/// Panics on invalid parameters (ε ≤ 0, λ ≤ 0, empty data) — callers validate
/// experiment configurations upstream.
pub fn fit_private<R: Rng + ?Sized>(
    data: &MlDataset,
    config: &DpErmConfig,
    rng: &mut R,
) -> LinearModel {
    assert!(!data.is_empty(), "cannot train on an empty dataset");
    assert!(
        config.epsilon.is_finite() && config.epsilon > 0.0,
        "epsilon must be positive"
    );
    assert!(
        config.linear.lambda.is_finite() && config.linear.lambda > 0.0,
        "DP-ERM requires a strictly positive lambda"
    );
    let n = data.len() as f64;
    let d = data.dimension();
    let lambda = config.linear.lambda;

    match config.mechanism {
        DpErmMechanism::OutputPerturbation => {
            let base = LinearModel::fit(data, &config.linear);
            // Sensitivity of the minimizer: 2/(n λ); noise density ∝ exp(-ε‖b‖/sensitivity).
            let scale = 2.0 / (n * lambda * config.epsilon);
            let noise = sample_l2_laplace(d, scale, rng);
            let weights = base
                .weights()
                .iter()
                .zip(noise.iter())
                .map(|(w, b)| w + b)
                .collect();
            LinearModel::with_weights(weights)
        }
        DpErmMechanism::ObjectivePerturbation => {
            let c = config.linear.loss.curvature_bound();
            let mut epsilon_prime = config.epsilon
                - (1.0 + 2.0 * c / (n * lambda) + c * c / (n * n * lambda * lambda)).ln();
            let mut extra_lambda = 0.0;
            if epsilon_prime <= 0.0 {
                extra_lambda = c / (n * ((config.epsilon / 4.0).exp() - 1.0)) - lambda;
                extra_lambda = extra_lambda.max(0.0);
                epsilon_prime = config.epsilon / 2.0;
            }
            let b = sample_l2_laplace(d, 2.0 / epsilon_prime, rng);
            LinearModel::fit_with_terms(data, &config.linear, Some(&b), extra_lambda)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Loss;
    use crate::metrics::accuracy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn separable(n: usize, seed: u64) -> MlDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = MlDataset::default();
        for _ in 0..n {
            let x0: f64 = rng.gen::<f64>() - 0.5;
            let x1: f64 = rng.gen::<f64>() - 0.5;
            // Keep ‖x‖ ≤ 1 as the Chaudhuri pre-processing requires.
            data.features.push(vec![x0, x1]);
            data.labels.push(u8::from(x0 + 0.5 * x1 > 0.0));
        }
        data
    }

    fn config(mechanism: DpErmMechanism, epsilon: f64, loss: Loss) -> DpErmConfig {
        DpErmConfig {
            linear: LinearConfig {
                loss,
                lambda: 1e-3,
                iterations: 250,
                learning_rate: 1.0,
            },
            epsilon,
            mechanism,
        }
    }

    #[test]
    fn generous_budget_preserves_accuracy() {
        let train = separable(3000, 1);
        let test = separable(800, 2);
        let mut rng = StdRng::seed_from_u64(3);
        for mechanism in [
            DpErmMechanism::OutputPerturbation,
            DpErmMechanism::ObjectivePerturbation,
        ] {
            for loss in [Loss::Logistic, Loss::HuberHinge] {
                let model = fit_private(&train, &config(mechanism, 10.0, loss), &mut rng);
                let acc = accuracy(&model, &test);
                assert!(acc > 0.85, "{mechanism:?}/{loss:?} accuracy {acc}");
            }
        }
    }

    #[test]
    fn tiny_budget_degrades_output_perturbation() {
        let train = separable(400, 4);
        let test = separable(400, 5);
        let mut rng = StdRng::seed_from_u64(6);
        // Average over repetitions: with epsilon tiny the added noise dominates
        // the signal and accuracy collapses toward chance.
        let mut degraded = 0.0;
        let mut generous = 0.0;
        let runs = 15;
        for _ in 0..runs {
            let noisy = fit_private(
                &train,
                &config(DpErmMechanism::OutputPerturbation, 1e-4, Loss::Logistic),
                &mut rng,
            );
            let clean = fit_private(
                &train,
                &config(DpErmMechanism::OutputPerturbation, 50.0, Loss::Logistic),
                &mut rng,
            );
            degraded += accuracy(&noisy, &test) / runs as f64;
            generous += accuracy(&clean, &test) / runs as f64;
        }
        assert!(
            generous > degraded + 0.1,
            "generous {generous} should beat tiny-budget {degraded}"
        );
    }

    #[test]
    fn l2_laplace_norm_follows_gamma_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = 5;
        let scale = 0.3;
        let runs = 3000;
        let mean_norm: f64 = (0..runs)
            .map(|_| {
                let v = sample_l2_laplace(d, scale, &mut rng);
                v.iter().map(|x| x * x).sum::<f64>().sqrt()
            })
            .sum::<f64>()
            / runs as f64;
        // E[Gamma(d) * scale] = d * scale.
        assert!((mean_norm - d as f64 * scale).abs() < 0.1);
    }

    #[test]
    fn objective_perturbation_handles_small_epsilon_via_delta() {
        // With a small epsilon and tiny n*lambda the epsilon' correction goes
        // negative and the Δ branch must kick in without panicking.
        let train = separable(60, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let model = fit_private(
            &train,
            &config(DpErmMechanism::ObjectivePerturbation, 0.1, Loss::Logistic),
            &mut rng,
        );
        assert_eq!(model.weights().len(), 2);
        assert!(model.weights().iter().all(|w| w.is_finite()));
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn invalid_epsilon_panics() {
        let train = separable(50, 10);
        let mut rng = StdRng::seed_from_u64(11);
        fit_private(
            &train,
            &config(DpErmMechanism::OutputPerturbation, 0.0, Loss::Logistic),
            &mut rng,
        );
    }

    #[test]
    #[should_panic(expected = "positive lambda")]
    fn zero_lambda_panics() {
        let train = separable(50, 12);
        let mut rng = StdRng::seed_from_u64(13);
        let mut cfg = config(DpErmMechanism::OutputPerturbation, 1.0, Loss::Logistic);
        cfg.linear.lambda = 0.0;
        fit_private(&train, &cfg, &mut rng);
    }
}
