//! CART-style classification trees.
//!
//! Stands in for the Weka "Classification Tree" of Tables 3 and 5: binary
//! splits on `feature <= threshold`, Gini impurity, depth / leaf-size
//! stopping rules, optional per-node feature subsampling (used by the random
//! forest) and optional per-example weights (used by AdaBoost.M1).

use crate::classifier::Classifier;
use crate::dataset::MlDataset;
use rand::seq::SliceRandom;
use rand::Rng;

/// Hyper-parameters of the tree learner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeConfig {
    /// Maximum tree depth (the root is depth 0).
    pub max_depth: usize,
    /// Do not split nodes with fewer examples than this.
    pub min_samples_split: usize,
    /// Number of candidate features examined per node; `None` = all features
    /// (a random forest passes roughly sqrt(d)).
    pub features_per_split: Option<usize>,
    /// Maximum number of candidate thresholds per feature (quantile-spaced).
    pub max_thresholds: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 12,
            min_samples_split: 8,
            features_per_split: None,
            max_thresholds: 16,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        positive_fraction: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A trained classification tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    root: Node,
    dimension: usize,
}

impl DecisionTree {
    /// Train a tree on uniformly-weighted data.
    pub fn fit<R: Rng + ?Sized>(data: &MlDataset, config: &TreeConfig, rng: &mut R) -> Self {
        let weights = vec![1.0; data.len()];
        Self::fit_weighted(data, &weights, config, rng)
    }

    /// Train a tree on weighted data (weights need not be normalized).
    pub fn fit_weighted<R: Rng + ?Sized>(
        data: &MlDataset,
        weights: &[f64],
        config: &TreeConfig,
        rng: &mut R,
    ) -> Self {
        assert!(!data.is_empty(), "cannot train a tree on an empty dataset");
        assert_eq!(data.len(), weights.len(), "one weight per example required");
        let indices: Vec<usize> = (0..data.len()).collect();
        let root = build_node(data, weights, &indices, config, 0, rng);
        DecisionTree {
            root,
            dimension: data.dimension(),
        }
    }

    /// Number of input features the tree expects.
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// Number of leaves (a rough complexity measure).
    pub fn leaf_count(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => count(left) + count(right),
            }
        }
        count(&self.root)
    }

    /// Depth of the tree (a single leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn depth(node: &Node) -> usize {
            match node {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + depth(left).max(depth(right)),
            }
        }
        depth(&self.root)
    }

    /// Probability-like score for the positive class.
    pub fn predict_score(&self, features: &[f64]) -> f64 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf {
                    positive_fraction, ..
                } => return *positive_fraction,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if features.get(*feature).copied().unwrap_or(0.0) <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

impl Classifier for DecisionTree {
    fn predict(&self, features: &[f64]) -> u8 {
        u8::from(self.predict_score(features) > 0.5)
    }
}

fn weighted_positive_fraction(data: &MlDataset, weights: &[f64], indices: &[usize]) -> (f64, f64) {
    let mut total = 0.0;
    let mut positive = 0.0;
    for &i in indices {
        total += weights[i];
        if data.labels[i] == 1 {
            positive += weights[i];
        }
    }
    if total <= 0.0 {
        (0.0, 0.0)
    } else {
        (positive / total, total)
    }
}

fn gini(p: f64) -> f64 {
    2.0 * p * (1.0 - p)
}

fn build_node<R: Rng + ?Sized>(
    data: &MlDataset,
    weights: &[f64],
    indices: &[usize],
    config: &TreeConfig,
    depth: usize,
    rng: &mut R,
) -> Node {
    let (positive_fraction, total_weight) = weighted_positive_fraction(data, weights, indices);
    let leaf = Node::Leaf { positive_fraction };
    if depth >= config.max_depth
        || indices.len() < config.min_samples_split
        || positive_fraction <= 0.0
        || positive_fraction >= 1.0
        || total_weight <= 0.0
    {
        return leaf;
    }

    // Candidate features for this node.
    let dimension = data.dimension();
    let mut feature_pool: Vec<usize> = (0..dimension).collect();
    if let Some(k) = config.features_per_split {
        feature_pool.shuffle(rng);
        feature_pool.truncate(k.max(1).min(dimension));
    }

    let parent_impurity = gini(positive_fraction);
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, impurity decrease)

    for &feature in &feature_pool {
        // Quantile-spaced thresholds over the values present at this node.
        let mut values: Vec<f64> = indices.iter().map(|&i| data.features[i][feature]).collect();
        // total_cmp: a NaN feature (possible once callers feed derived or
        // noised columns) must not panic split-finding; NaNs sort last and
        // fall out of the thresholds instead.
        values.sort_by(f64::total_cmp);
        values.dedup();
        if values.len() < 2 {
            continue;
        }
        let step = (values.len() as f64 / config.max_thresholds as f64).max(1.0);
        let mut t_idx = 0.0;
        while (t_idx as usize) < values.len() - 1 {
            let idx = t_idx as usize;
            let threshold = 0.5 * (values[idx] + values[idx + 1]);
            // Evaluate the split.
            let mut left_w = 0.0;
            let mut left_pos = 0.0;
            let mut right_w = 0.0;
            let mut right_pos = 0.0;
            for &i in indices {
                let w = weights[i];
                if data.features[i][feature] <= threshold {
                    left_w += w;
                    left_pos += w * f64::from(data.labels[i]);
                } else {
                    right_w += w;
                    right_pos += w * f64::from(data.labels[i]);
                }
            }
            if left_w > 0.0 && right_w > 0.0 {
                let p_left = left_pos / left_w;
                let p_right = right_pos / right_w;
                let child_impurity =
                    (left_w * gini(p_left) + right_w * gini(p_right)) / (left_w + right_w);
                let gain = parent_impurity - child_impurity;
                if best.map_or(gain > 1e-12, |(_, _, g)| gain > g) {
                    best = Some((feature, threshold, gain));
                }
            }
            t_idx += step;
        }
    }

    match best {
        None => leaf,
        Some((feature, threshold, _)) => {
            let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
                .iter()
                .partition(|&&i| data.features[i][feature] <= threshold);
            if left_idx.is_empty() || right_idx.is_empty() {
                return leaf;
            }
            Node::Split {
                feature,
                threshold,
                left: Box::new(build_node(data, weights, &left_idx, config, depth + 1, rng)),
                right: Box::new(build_node(
                    data,
                    weights,
                    &right_idx,
                    config,
                    depth + 1,
                    rng,
                )),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Linearly separable toy problem: label = 1 iff x0 + x1 > 1.
    fn separable(n: usize, seed: u64) -> MlDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = MlDataset::default();
        for _ in 0..n {
            let x0: f64 = rng.gen();
            let x1: f64 = rng.gen();
            data.features.push(vec![x0, x1]);
            data.labels.push(u8::from(x0 + x1 > 1.0));
        }
        data
    }

    #[test]
    fn tree_fits_separable_data() {
        let train = separable(800, 1);
        let test = separable(300, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let tree = DecisionTree::fit(&train, &TreeConfig::default(), &mut rng);
        let acc = accuracy(&tree, &test);
        assert!(acc > 0.9, "accuracy {acc}");
        assert!(tree.depth() >= 1);
        assert!(tree.leaf_count() >= 2);
        assert_eq!(tree.dimension(), 2);
    }

    #[test]
    fn fit_survives_nan_feature_values() {
        // Regression: threshold search sorted candidate values with
        // `partial_cmp(..).expect("feature values are finite")`, so a single
        // NaN cell (a derived or noised column) panicked split-finding.
        let mut train = separable(200, 7);
        train.features[0][0] = f64::NAN;
        train.features[63][1] = f64::NAN;
        let mut rng = StdRng::seed_from_u64(8);
        let tree = DecisionTree::fit(&train, &TreeConfig::default(), &mut rng);
        // The tree still trains on the finite cells and stays usable.
        let test = separable(300, 9);
        assert!(accuracy(&tree, &test) > 0.8);
    }

    #[test]
    fn depth_zero_tree_is_majority_vote() {
        let train = separable(200, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let config = TreeConfig {
            max_depth: 0,
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&train, &config, &mut rng);
        assert_eq!(tree.leaf_count(), 1);
        let majority = train.majority_label();
        assert!(train.features.iter().all(|f| tree.predict(f) == majority));
    }

    #[test]
    fn weights_steer_the_tree() {
        // All weight on positive examples: the tree must predict 1 everywhere.
        let data = MlDataset {
            features: vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]],
            labels: vec![0, 0, 1, 1],
        };
        let weights = vec![0.0, 0.0, 10.0, 10.0];
        let mut rng = StdRng::seed_from_u64(6);
        let tree = DecisionTree::fit_weighted(&data, &weights, &TreeConfig::default(), &mut rng);
        assert!(data.features.iter().all(|f| tree.predict(f) == 1));
    }

    #[test]
    fn pure_nodes_become_leaves() {
        let data = MlDataset {
            features: vec![vec![0.0], vec![1.0], vec![2.0]],
            labels: vec![1, 1, 1],
        };
        let mut rng = StdRng::seed_from_u64(7);
        let tree = DecisionTree::fit(&data, &TreeConfig::default(), &mut rng);
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(tree.predict(&[5.0]), 1);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let mut rng = StdRng::seed_from_u64(8);
        DecisionTree::fit(&MlDataset::default(), &TreeConfig::default(), &mut rng);
    }

    #[test]
    fn feature_subsampling_still_learns() {
        let train = separable(800, 9);
        let test = separable(300, 10);
        let mut rng = StdRng::seed_from_u64(11);
        let config = TreeConfig {
            features_per_split: Some(1),
            ..TreeConfig::default()
        };
        let tree = DecisionTree::fit(&train, &config, &mut rng);
        assert!(accuracy(&tree, &test) > 0.75);
    }
}
