//! The binary-classifier abstraction shared by every learner in this crate.

use crate::dataset::MlDataset;

/// A trained binary classifier.
pub trait Classifier: Send + Sync {
    /// Predict the label (0 or 1) of a single feature vector.
    fn predict(&self, features: &[f64]) -> u8;

    /// Predict the labels of every example in a dataset.
    fn predict_all(&self, data: &MlDataset) -> Vec<u8> {
        data.features.iter().map(|f| self.predict(f)).collect()
    }
}

/// A classifier that always predicts the same label — the "baseline" of the
/// paper's tables (predicting the majority class).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstantClassifier {
    label: u8,
}

impl ConstantClassifier {
    /// Always predict `label`.
    pub fn new(label: u8) -> Self {
        ConstantClassifier {
            label: label.min(1),
        }
    }

    /// Predict the majority label of a training set.
    pub fn majority(data: &MlDataset) -> Self {
        ConstantClassifier::new(data.majority_label())
    }
}

impl Classifier for ConstantClassifier {
    fn predict(&self, _features: &[f64]) -> u8 {
        self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_classifier_clamps_and_predicts() {
        let c = ConstantClassifier::new(7);
        assert_eq!(c.predict(&[1.0, 2.0]), 1);
        let data = MlDataset {
            features: vec![vec![0.0]; 3],
            labels: vec![0, 0, 1],
        };
        assert_eq!(ConstantClassifier::majority(&data).predict(&[0.0]), 0);
        assert_eq!(c.predict_all(&data), vec![1, 1, 1]);
    }
}
