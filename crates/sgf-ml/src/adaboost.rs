//! AdaBoost.M1 over shallow classification trees (the "Ada" column of Table 3).

use crate::classifier::Classifier;
use crate::dataset::MlDataset;
use crate::tree::{DecisionTree, TreeConfig};
use rand::Rng;

/// Hyper-parameters of the AdaBoost.M1 learner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaBoostConfig {
    /// Maximum number of boosting rounds.
    pub rounds: usize,
    /// Configuration of each weak learner (a shallow tree by default).
    pub weak_learner: TreeConfig,
}

impl Default for AdaBoostConfig {
    fn default() -> Self {
        AdaBoostConfig {
            rounds: 40,
            weak_learner: TreeConfig {
                max_depth: 2,
                min_samples_split: 8,
                features_per_split: None,
                max_thresholds: 16,
            },
        }
    }
}

/// A trained AdaBoost.M1 ensemble.
#[derive(Debug, Clone)]
pub struct AdaBoost {
    members: Vec<(DecisionTree, f64)>,
}

impl AdaBoost {
    /// Train the ensemble.  Boosting stops early if a weak learner reaches
    /// zero weighted error or no longer beats random guessing.
    pub fn fit<R: Rng + ?Sized>(data: &MlDataset, config: &AdaBoostConfig, rng: &mut R) -> Self {
        assert!(
            !data.is_empty(),
            "cannot train AdaBoost on an empty dataset"
        );
        assert!(config.rounds > 0, "AdaBoost needs at least one round");
        let n = data.len();
        let mut weights = vec![1.0 / n as f64; n];
        let mut members = Vec::new();

        for _ in 0..config.rounds {
            let tree = DecisionTree::fit_weighted(data, &weights, &config.weak_learner, rng);
            let predictions: Vec<u8> = data.features.iter().map(|f| tree.predict(f)).collect();
            let error: f64 = predictions
                .iter()
                .zip(data.labels.iter())
                .zip(weights.iter())
                .filter(|((p, l), _)| p != l)
                .map(|(_, &w)| w)
                .sum();

            if error <= 1e-12 {
                // Perfect weak learner: give it a large (finite) vote and stop.
                members.push((tree, 10.0));
                break;
            }
            if error >= 0.5 {
                // No better than chance: stop boosting (keep what we have; make
                // sure at least one member exists so prediction is defined).
                if members.is_empty() {
                    members.push((tree, 1.0));
                }
                break;
            }

            let alpha = 0.5 * ((1.0 - error) / error).ln();
            // Re-weight: misclassified examples up, correct ones down.
            let mut total = 0.0;
            for ((w, p), &l) in weights
                .iter_mut()
                .zip(predictions.iter())
                .zip(data.labels.iter())
            {
                let sign = if *p == l { -1.0 } else { 1.0 };
                *w *= (sign * alpha).exp();
                total += *w;
            }
            for w in weights.iter_mut() {
                *w /= total;
            }
            members.push((tree, alpha));
        }

        AdaBoost { members }
    }

    /// Number of weak learners kept.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ensemble is empty (never true after `fit`).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Weighted-vote margin for the positive class, in `[-1, 1]`-ish scale.
    pub fn decision_value(&self, features: &[f64]) -> f64 {
        let total: f64 = self.members.iter().map(|(_, a)| a).sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.members
            .iter()
            .map(|(tree, alpha)| {
                let vote = if tree.predict(features) == 1 {
                    1.0
                } else {
                    -1.0
                };
                alpha * vote
            })
            .sum::<f64>()
            / total
    }
}

impl Classifier for AdaBoost {
    fn predict(&self, features: &[f64]) -> u8 {
        u8::from(self.decision_value(features) > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rings(n: usize, seed: u64) -> MlDataset {
        // Concentric-square problem: positive iff the point lies in the middle band.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = MlDataset::default();
        for _ in 0..n {
            let x0: f64 = rng.gen();
            let x1: f64 = rng.gen();
            let r = (x0 - 0.5).abs().max((x1 - 0.5).abs());
            data.features.push(vec![x0, x1]);
            data.labels.push(u8::from(r < 0.3));
        }
        data
    }

    #[test]
    fn boosting_beats_a_single_stump() {
        let train = rings(1500, 1);
        let test = rings(500, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let stump_cfg = TreeConfig {
            max_depth: 1,
            ..TreeConfig::default()
        };
        let stump = DecisionTree::fit(&train, &stump_cfg, &mut rng);
        let boosted = AdaBoost::fit(
            &train,
            &AdaBoostConfig {
                rounds: 60,
                weak_learner: stump_cfg,
            },
            &mut rng,
        );
        let stump_acc = accuracy(&stump, &test);
        let boost_acc = accuracy(&boosted, &test);
        assert!(
            boost_acc > stump_acc,
            "boosting {boost_acc} vs stump {stump_acc}"
        );
        assert!(boost_acc > 0.8, "boosting accuracy {boost_acc}");
        assert!(boosted.len() > 1);
    }

    #[test]
    fn perfectly_separable_data_stops_early() {
        let data = MlDataset {
            features: (0..16).map(|i| vec![i as f64]).collect(),
            labels: (0..16).map(|i| u8::from(i >= 8)).collect(),
        };
        let mut rng = StdRng::seed_from_u64(4);
        let boosted = AdaBoost::fit(&data, &AdaBoostConfig::default(), &mut rng);
        assert!(boosted.len() <= 3);
        assert!((accuracy(&boosted, &data) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn decision_values_are_bounded() {
        let train = rings(300, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let boosted = AdaBoost::fit(&train, &AdaBoostConfig::default(), &mut rng);
        for f in &train.features {
            let v = boosted.decision_value(f);
            assert!((-1.0..=1.0).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let mut rng = StdRng::seed_from_u64(7);
        AdaBoost::fit(&MlDataset::default(), &AdaBoostConfig::default(), &mut rng);
    }
}
