//! # sgf-data
//!
//! Dataset substrate for the SGF (Synthetic Generation Framework) reproduction
//! of *Plausible Deniability for Privacy-Preserving Data Synthesis*
//! (Bindschaedler, Shokri, Gunter — VLDB 2017).
//!
//! This crate provides:
//!
//! * [`Schema`]/[`Attribute`] — the discrete attribute model of Table 1;
//! * [`Record`]/[`Dataset`] — fixed-width records with sampling and splitting;
//! * [`Bucketizer`] — the `bkt()` discretization used by structure learning;
//! * CSV input/output matching the paper's tool interface;
//! * [`acs`] — a synthetic ACS-2013-like population generator standing in for
//!   the Census PUMS extract (see DESIGN.md for the substitution rationale).

pub mod acs;
pub mod bucketize;
pub mod csv;
pub mod delta;
pub mod error;
pub mod record;
pub mod schema;
pub mod split;

pub use bucketize::{AttributeBuckets, Bucketizer};
pub use delta::{apply_deletes, DatasetDelta};
pub use error::{DataError, Result};
pub use record::{Dataset, Record};
pub use schema::{Attribute, AttributeKind, Schema};
pub use split::{
    split_dataset, split_dataset_by_hash, split_role, train_test_split, DataSplit, SplitRole,
    SplitSpec,
};
