//! Error type shared by the dataset substrate.

use std::fmt;

/// Errors produced while constructing schemas, datasets, or parsing CSV input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A schema was declared with no attributes or an attribute with an empty domain.
    EmptySchema,
    /// Attribute name duplicated inside a schema.
    DuplicateAttribute(String),
    /// An attribute name was requested but is not part of the schema.
    UnknownAttribute(String),
    /// A record has a different number of values than the schema has attributes.
    ArityMismatch {
        /// Number of attributes the schema declares.
        expected: usize,
        /// Number of values the record carried.
        got: usize,
    },
    /// A record value index lies outside the attribute's domain.
    ValueOutOfDomain {
        /// Attribute whose domain was violated.
        attribute: String,
        /// Offending value index.
        value: usize,
        /// Cardinality of the attribute's domain.
        cardinality: usize,
    },
    /// A raw string value could not be mapped onto the attribute domain.
    UnparsableValue {
        /// Attribute being parsed.
        attribute: String,
        /// Raw text that failed to parse.
        raw: String,
    },
    /// A CSV row was malformed (wrong number of fields, missing header, ...).
    MalformedCsv {
        /// 1-based line number of the offending row.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// Dataset operation requested on an empty dataset that requires records.
    EmptyDataset,
    /// A requested split does not fit into the dataset (fractions do not sum to <= 1, etc.).
    InvalidSplit(String),
    /// Invalid parameter passed to a generator or bucketizer.
    InvalidParameter(String),
    /// I/O error wrapper (kept as a string so the error stays `Clone + Eq`).
    Io(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::EmptySchema => write!(f, "schema must contain at least one attribute with a non-empty domain"),
            DataError::DuplicateAttribute(name) => write!(f, "duplicate attribute `{name}` in schema"),
            DataError::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            DataError::ArityMismatch { expected, got } => {
                write!(f, "record has {got} values but schema has {expected} attributes")
            }
            DataError::ValueOutOfDomain { attribute, value, cardinality } => write!(
                f,
                "value index {value} is outside the domain of `{attribute}` (cardinality {cardinality})"
            ),
            DataError::UnparsableValue { attribute, raw } => {
                write!(f, "cannot parse `{raw}` as a value of attribute `{attribute}`")
            }
            DataError::MalformedCsv { line, message } => write!(f, "malformed CSV at line {line}: {message}"),
            DataError::EmptyDataset => write!(f, "operation requires a non-empty dataset"),
            DataError::InvalidSplit(msg) => write!(f, "invalid split: {msg}"),
            DataError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            DataError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for DataError {}

impl From<std::io::Error> for DataError {
    fn from(err: std::io::Error) -> Self {
        DataError::Io(err.to_string())
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, DataError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_attribute_name() {
        let err = DataError::UnknownAttribute("AGEP".to_string());
        assert!(err.to_string().contains("AGEP"));
    }

    #[test]
    fn display_arity_mismatch() {
        let err = DataError::ArityMismatch {
            expected: 11,
            got: 3,
        };
        let s = err.to_string();
        assert!(s.contains("11") && s.contains('3'));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing.csv");
        let err: DataError = io.into();
        assert!(matches!(err, DataError::Io(_)));
        assert!(err.to_string().contains("missing.csv"));
    }

    #[test]
    fn value_out_of_domain_display() {
        let err = DataError::ValueOutOfDomain {
            attribute: "SEX".into(),
            value: 7,
            cardinality: 2,
        };
        let s = err.to_string();
        assert!(s.contains("SEX") && s.contains('7') && s.contains('2'));
    }
}
