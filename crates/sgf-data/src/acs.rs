//! Synthetic ACS-2013-like population generator.
//!
//! The paper evaluates on the 2013 American Community Survey public-use
//! microdata (3.1M records, 11 pre-processed attributes — Table 1).  The raw
//! PUMS files are not available in this environment, so this module provides a
//! drop-in substitute: a population generator with the *same schema* (names,
//! types, cardinalities of Table 1) and a hand-built dependency structure that
//! reproduces the qualitative correlations the evaluation relies on
//! (age→education→occupation→income, hours-worked→income, sex→income gap,
//! age→marital status, …).  See DESIGN.md §2 for the substitution rationale.
//!
//! The generator is seeded and fully deterministic for a given seed, which
//! keeps every experiment reproducible.

use crate::bucketize::{AttributeBuckets, Bucketizer};
use crate::error::Result;
use crate::record::{Dataset, Record};
use crate::schema::{Attribute, Schema};
use rand::Rng;
use std::sync::Arc;

/// Attribute indices of the ACS-13 schema, in the order of Table 1.
pub mod attr {
    /// Age (17–96).
    pub const AGE: usize = 0;
    /// Class of worker.
    pub const WORKCLASS: usize = 1;
    /// Educational attainment.
    pub const EDUCATION: usize = 2;
    /// Marital status.
    pub const MARITAL: usize = 3;
    /// Occupation group.
    pub const OCCUPATION: usize = 4;
    /// Relationship to householder.
    pub const RELATIONSHIP: usize = 5;
    /// Race group.
    pub const RACE: usize = 6;
    /// Sex.
    pub const SEX: usize = 7;
    /// Usual hours worked per week (0–99).
    pub const HOURS: usize = 8;
    /// World area of birth.
    pub const BIRTH_AREA: usize = 9;
    /// Income class (<=50K / >50K USD).
    pub const INCOME: usize = 10;
}

/// Short attribute names used in the paper's figures (Figure 1 and 2 x-axis).
pub const SHORT_NAMES: [&str; 11] = [
    "AGE", "WC", "EDU", "MS", "OCC", "REL", "RACE", "SEX", "HPW", "WAOB", "INCC",
];

/// Build the 11-attribute ACS-13 schema of Table 1 (same names, types, and cardinalities).
pub fn acs_schema() -> Schema {
    Schema::new(vec![
        Attribute::numerical("AGEP", 17, 96),
        Attribute::categorical(
            "COW",
            &[
                "private",
                "self-emp-not-inc",
                "self-emp-inc",
                "federal-gov",
                "state-gov",
                "local-gov",
                "without-pay",
                "never-worked",
            ],
        ),
        Attribute::categorical_anon("SCHL", 24),
        Attribute::categorical(
            "MAR",
            &[
                "married",
                "widowed",
                "divorced",
                "separated",
                "never-married",
            ],
        ),
        Attribute::categorical_anon("OCCP", 25),
        Attribute::categorical_anon("RELP", 18),
        Attribute::categorical("RAC1P", &["white", "black", "asian", "native", "other"]),
        Attribute::categorical("SEX", &["male", "female"]),
        Attribute::numerical("WKHP", 0, 99),
        Attribute::categorical(
            "WAOB",
            &[
                "us",
                "pr-island",
                "latin-america",
                "asia",
                "europe",
                "africa",
                "northern-america",
                "oceania",
            ],
        ),
        Attribute::categorical("WAGP", &["<=50K", ">50K"]),
    ])
    .expect("ACS schema is statically valid")
}

/// Bucketization used by structure learning (Section 4): age in bins of 10,
/// hours worked per week in bins of 15, education collapsed into coarse
/// attainment bands, everything else untouched.
pub fn acs_bucketizer(schema: &Schema) -> Bucketizer {
    // Education: 0..=15 -> below high school (bucket 0), 16..=19 -> high school
    // but no college degree (bucket 1), 20 -> associate (2), 21 -> bachelor (3),
    // 22 -> master (4), 23 -> doctorate/professional (5).
    let edu_map: Vec<u16> = (0..24u16)
        .map(|v| match v {
            0..=15 => 0,
            16..=19 => 1,
            20 => 2,
            21 => 3,
            22 => 4,
            _ => 5,
        })
        .collect();
    Bucketizer::identity(schema)
        .with_attribute(
            attr::AGE,
            AttributeBuckets::fixed_width(80, 10).expect("width > 0"),
        )
        .expect("AGE index valid")
        .with_attribute(
            attr::HOURS,
            AttributeBuckets::fixed_width(100, 15).expect("width > 0"),
        )
        .expect("WKHP index valid")
        .with_attribute(
            attr::EDUCATION,
            AttributeBuckets::explicit(edu_map).expect("contiguous"),
        )
        .expect("SCHL index valid")
}

/// Sample an index from an unnormalized weight vector.
fn sample_weighted<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> u16 {
    let total: f64 = weights.iter().sum();
    let mut u = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i as u16;
        }
    }
    (weights.len() - 1) as u16
}

/// Population generator producing ACS-like records.
#[derive(Debug, Clone)]
pub struct AcsGenerator {
    schema: Arc<Schema>,
}

impl Default for AcsGenerator {
    fn default() -> Self {
        Self::new()
    }
}

impl AcsGenerator {
    /// Create a generator over the ACS-13 schema.
    pub fn new() -> Self {
        AcsGenerator {
            schema: Arc::new(acs_schema()),
        }
    }

    /// Shared schema handle.
    pub fn schema(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    /// Generate a dataset of `n` records using the supplied RNG.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Result<Dataset> {
        let mut records = Vec::with_capacity(n);
        for _ in 0..n {
            records.push(self.generate_record(rng));
        }
        Ok(Dataset::from_records_unchecked(self.schema(), records))
    }

    /// Generate one record by sampling the hand-built dependency chain.
    pub fn generate_record<R: Rng + ?Sized>(&self, rng: &mut R) -> Record {
        let mut v = vec![0u16; 11];

        // AGE: mixture of working-age bulk and older tail, 17..=96.
        let age_years: u16 = if rng.gen::<f64>() < 0.78 {
            17 + (rng.gen::<f64>().powf(0.85) * 48.0) as u16 // 17..=64, denser in 25-50
        } else {
            65 + (rng.gen::<f64>().powf(1.4) * 31.0) as u16 // 65..=96
        };
        let age_years = age_years.min(96);
        v[attr::AGE] = age_years - 17;
        let age = age_years as f64;

        // SEX: roughly balanced.
        v[attr::SEX] = if rng.gen::<f64>() < 0.515 { 1 } else { 0 };

        // RACE: fixed marginal.
        v[attr::RACE] = sample_weighted(&[0.73, 0.13, 0.06, 0.015, 0.065], rng);

        // WAOB depends on race (immigration patterns).
        v[attr::BIRTH_AREA] = match v[attr::RACE] {
            0 => sample_weighted(&[0.90, 0.005, 0.03, 0.01, 0.045, 0.002, 0.006, 0.002], rng),
            1 => sample_weighted(&[0.85, 0.01, 0.05, 0.01, 0.01, 0.065, 0.003, 0.002], rng),
            2 => sample_weighted(&[0.25, 0.002, 0.02, 0.70, 0.02, 0.003, 0.003, 0.002], rng),
            3 => sample_weighted(&[0.95, 0.005, 0.02, 0.01, 0.005, 0.004, 0.004, 0.002], rng),
            _ => sample_weighted(&[0.45, 0.06, 0.42, 0.04, 0.02, 0.005, 0.003, 0.002], rng),
        };

        // EDUCATION (24 levels, higher index = more education) depends on age.
        let edu_mean = if age < 22.0 {
            14.0 + (age - 17.0)
        } else {
            17.0 + 3.0 * rng.gen::<f64>() + if age > 60.0 { -1.5 } else { 0.0 }
        };
        let edu_noise: f64 = rng.gen::<f64>() * 8.0 - 4.0;
        let edu = (edu_mean + edu_noise).round().clamp(0.0, 23.0) as u16;
        v[attr::EDUCATION] = edu;

        // MARITAL depends on age.
        v[attr::MARITAL] = if age < 25.0 {
            sample_weighted(&[0.08, 0.001, 0.01, 0.01, 0.899], rng)
        } else if age < 45.0 {
            sample_weighted(&[0.55, 0.005, 0.10, 0.03, 0.315], rng)
        } else if age < 65.0 {
            sample_weighted(&[0.62, 0.04, 0.18, 0.03, 0.13], rng)
        } else {
            sample_weighted(&[0.55, 0.25, 0.12, 0.02, 0.06], rng)
        };

        // RELATIONSHIP (18 categories) loosely follows marital status and age:
        // 0 = householder, 1 = spouse, 2 = child, others = other relations.
        v[attr::RELATIONSHIP] = if v[attr::MARITAL] == 0 {
            sample_weighted(
                &[
                    0.48, 0.44, 0.01, 0.02, 0.01, 0.01, 0.005, 0.005, 0.005, 0.005, 0.002, 0.002,
                    0.002, 0.001, 0.001, 0.001, 0.0005, 0.0005,
                ],
                rng,
            )
        } else if age < 30.0 {
            sample_weighted(
                &[
                    0.25, 0.01, 0.45, 0.05, 0.04, 0.03, 0.03, 0.02, 0.02, 0.02, 0.02, 0.02, 0.02,
                    0.01, 0.01, 0.01, 0.005, 0.005,
                ],
                rng,
            )
        } else {
            sample_weighted(
                &[
                    0.60, 0.02, 0.08, 0.05, 0.04, 0.03, 0.03, 0.03, 0.02, 0.02, 0.02, 0.02, 0.01,
                    0.01, 0.005, 0.005, 0.0025, 0.0025,
                ],
                rng,
            )
        };

        // WORKCLASS depends on age and education.
        let employed =
            (18.0..=70.0).contains(&age) && rng.gen::<f64>() < 0.92 - (age - 17.0).max(0.0) * 0.004;
        v[attr::WORKCLASS] = if !employed {
            sample_weighted(&[0.05, 0.01, 0.005, 0.005, 0.005, 0.005, 0.32, 0.60], rng)
        } else if edu >= 21 {
            sample_weighted(&[0.62, 0.07, 0.05, 0.06, 0.08, 0.10, 0.01, 0.01], rng)
        } else {
            sample_weighted(&[0.74, 0.08, 0.03, 0.03, 0.04, 0.05, 0.015, 0.015], rng)
        };

        // OCCUPATION (25 groups; lower index = higher-skill white-collar) depends on education.
        let occ_weights: Vec<f64> = (0..25)
            .map(|o| {
                let o = o as f64;
                if edu >= 21 {
                    (-(o) / 6.0).exp()
                } else if edu >= 16 {
                    (-(o - 10.0).powi(2) / 60.0).exp() + 0.15
                } else {
                    (-(24.0 - o) / 7.0).exp() + 0.05
                }
            })
            .collect();
        v[attr::OCCUPATION] = if v[attr::WORKCLASS] >= 6 {
            // not working: occupation recorded as last held, mostly low-skill
            sample_weighted(&[1.0; 25], rng)
        } else {
            sample_weighted(&occ_weights, rng)
        };

        // HOURS worked per week depends on workclass and age.
        let hours: f64 = if v[attr::WORKCLASS] >= 6 {
            0.0
        } else {
            let base = if v[attr::WORKCLASS] == 1 || v[attr::WORKCLASS] == 2 {
                46.0
            } else {
                40.0
            };
            let spread: f64 = rng.gen::<f64>() * 24.0 - 12.0;
            let part_time = !(22.0..=65.0).contains(&age) || rng.gen::<f64>() < 0.15;
            (if part_time { 22.0 } else { base } + spread).clamp(0.0, 99.0)
        };
        v[attr::HOURS] = hours.round() as u16;

        // INCOME class depends on education, occupation, hours, age, sex, workclass.
        let mut score = -2.4f64;
        score += (edu as f64 - 15.0) * 0.28;
        score += (12.0 - v[attr::OCCUPATION] as f64) * 0.06;
        score += (hours - 35.0) * 0.035;
        score += ((age - 17.0) / 10.0).min(3.5) * 0.35;
        if v[attr::SEX] == 1 {
            score -= 0.45;
        }
        if v[attr::WORKCLASS] == 2 {
            score += 0.5;
        }
        if v[attr::WORKCLASS] >= 6 {
            score -= 3.0;
        }
        if v[attr::MARITAL] == 0 {
            score += 0.3;
        }
        let p_high = 1.0 / (1.0 + (-score).exp());
        v[attr::INCOME] = if rng.gen::<f64>() < p_high { 1 } else { 0 };

        Record::new(v)
    }
}

/// Convenience helper: generate `n` ACS-like records with a fixed RNG seed.
pub fn generate_acs(n: usize, seed: u64) -> Dataset {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    AcsGenerator::new()
        .generate(n, &mut rng)
        .expect("generation over a valid schema cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn schema_matches_table_1() {
        let s = acs_schema();
        assert_eq!(s.len(), 11);
        assert_eq!(s.cardinality(attr::AGE), 80);
        assert_eq!(s.cardinality(attr::WORKCLASS), 8);
        assert_eq!(s.cardinality(attr::EDUCATION), 24);
        assert_eq!(s.cardinality(attr::MARITAL), 5);
        assert_eq!(s.cardinality(attr::OCCUPATION), 25);
        assert_eq!(s.cardinality(attr::RELATIONSHIP), 18);
        assert_eq!(s.cardinality(attr::RACE), 5);
        assert_eq!(s.cardinality(attr::SEX), 2);
        assert_eq!(s.cardinality(attr::HOURS), 100);
        assert_eq!(s.cardinality(attr::BIRTH_AREA), 8);
        assert_eq!(s.cardinality(attr::INCOME), 2);
        // Table 2 reports 540,587,520,000 possible records (~2^39); the product
        // of the Table 1 cardinalities used here lands within a few percent of
        // that figure (the paper's exact attribute encodings are not published).
        let universe = s.universe_size() as f64;
        assert!((universe - 540_587_520_000.0).abs() / 540_587_520_000.0 < 0.05);
    }

    #[test]
    fn generated_records_are_in_domain() {
        let data = generate_acs(500, 42);
        let schema = data.schema();
        for r in data.records() {
            schema.validate_values(r.values()).unwrap();
        }
        assert_eq!(data.len(), 500);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate_acs(100, 7);
        let b = generate_acs(100, 7);
        let c = generate_acs(100, 8);
        assert_eq!(a.records(), b.records());
        assert_ne!(a.records(), c.records());
    }

    #[test]
    fn income_correlates_with_education() {
        // The income class must be predictable from the other attributes —
        // otherwise none of the ML experiments are meaningful.
        let data = generate_acs(4000, 11);
        let mut high_edu_high_inc = 0usize;
        let mut high_edu = 0usize;
        let mut low_edu_high_inc = 0usize;
        let mut low_edu = 0usize;
        for r in data.records() {
            if r.get(attr::EDUCATION) >= 21 {
                high_edu += 1;
                high_edu_high_inc += (r.get(attr::INCOME) == 1) as usize;
            } else if r.get(attr::EDUCATION) <= 15 {
                low_edu += 1;
                low_edu_high_inc += (r.get(attr::INCOME) == 1) as usize;
            }
        }
        let p_high = high_edu_high_inc as f64 / high_edu.max(1) as f64;
        let p_low = low_edu_high_inc as f64 / low_edu.max(1) as f64;
        assert!(
            p_high > p_low + 0.15,
            "expected income to rise with education: {p_high:.2} vs {p_low:.2}"
        );
    }

    #[test]
    fn marital_status_correlates_with_age() {
        let data = generate_acs(4000, 13);
        let mut young_never = 0usize;
        let mut young = 0usize;
        let mut older_never = 0usize;
        let mut older = 0usize;
        for r in data.records() {
            let age = 17 + r.get(attr::AGE);
            if age < 25 {
                young += 1;
                young_never += (r.get(attr::MARITAL) == 4) as usize;
            } else if age > 45 {
                older += 1;
                older_never += (r.get(attr::MARITAL) == 4) as usize;
            }
        }
        assert!(young_never as f64 / young.max(1) as f64 > 0.7);
        assert!((older_never as f64 / older.max(1) as f64) < 0.3);
    }

    #[test]
    fn bucketizer_covers_schema() {
        let s = acs_schema();
        let b = acs_bucketizer(&s);
        assert_eq!(b.bucket_count(attr::AGE), 8);
        assert_eq!(b.bucket_count(attr::HOURS), 7);
        assert_eq!(b.bucket_count(attr::EDUCATION), 6);
        assert_eq!(b.bucket_count(attr::SEX), 2);
    }

    #[test]
    fn sample_weighted_hits_every_bucket() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[sample_weighted(&[0.2, 0.5, 0.3], &mut rng) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0));
        assert!(counts[1] > counts[0] && counts[1] > counts[2]);
    }

    #[test]
    fn generator_default_matches_new() {
        let g = AcsGenerator::default();
        assert_eq!(g.schema().len(), 11);
    }
}
