//! Records and datasets.
//!
//! A [`Record`] is a fixed-width vector of value indices, one per schema
//! attribute.  A [`Dataset`] bundles records with the [`Schema`] they conform
//! to and provides the sampling / splitting primitives required by the
//! synthesis pipeline (the paper's `D`, `D_S`, `D_T`, `D_P` sets).

use crate::error::{DataError, Result};
use crate::schema::Schema;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::{Arc, OnceLock};

/// A single data record: value indices against a schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Record {
    values: Vec<u16>,
}

impl Record {
    /// Build a record from raw value indices (no schema validation; use
    /// [`Dataset::push`] or [`Record::validated`] when validation is required).
    pub fn new(values: Vec<u16>) -> Self {
        Record { values }
    }

    /// Build a record and validate it against a schema.
    pub fn validated(values: Vec<u16>, schema: &Schema) -> Result<Self> {
        schema.validate_values(&values)?;
        Ok(Record { values })
    }

    /// Value index of attribute `i`.
    pub fn get(&self, i: usize) -> u16 {
        self.values[i]
    }

    /// Set the value index of attribute `i`.
    pub fn set(&mut self, i: usize, value: u16) {
        self.values[i] = value;
    }

    /// Number of attributes in the record.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the record has zero attributes.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Raw value slice.
    pub fn values(&self) -> &[u16] {
        &self.values
    }

    /// Number of attribute positions on which two records differ.
    pub fn hamming_distance(&self, other: &Record) -> usize {
        self.values
            .iter()
            .zip(other.values.iter())
            .filter(|(a, b)| a != b)
            .count()
    }
}

impl From<Vec<u16>> for Record {
    fn from(values: Vec<u16>) -> Self {
        Record::new(values)
    }
}

/// A dataset: a schema plus a collection of records conforming to it.
///
/// Records live in two structurally-shared segments: a `base` block and an
/// appended `tail`, both behind `Arc`.  Cloning a dataset is O(1), and
/// [`with_appended`](Dataset::with_appended) derives a dataset sharing the
/// entire base with its parent — the representation that makes incremental
/// session updates (`SynthesisSession::update` in `sgf-core`) cost O(|Δ|)
/// instead of O(n) for insert-only deltas.  The segmentation is invisible to
/// readers: [`records`](Dataset::records) returns one contiguous slice,
/// materializing (and caching) the concatenation on first use when a tail is
/// present.
#[derive(Debug, Clone)]
pub struct Dataset {
    schema: Arc<Schema>,
    base: Arc<Vec<Record>>,
    tail: Arc<Vec<Record>>,
    /// `base ++ tail`, materialized lazily by [`records`](Dataset::records)
    /// when the tail is non-empty.  `OnceLock<Arc<_>>` keeps clones cheap:
    /// a clone either copies the cached handle or re-materializes on demand.
    full: OnceLock<Arc<Vec<Record>>>,
}

impl Dataset {
    fn from_base(schema: Arc<Schema>, base: Vec<Record>) -> Self {
        Dataset {
            schema,
            base: Arc::new(base),
            tail: Arc::new(Vec::new()),
            full: OnceLock::new(),
        }
    }

    /// Create an empty dataset over a schema.
    pub fn new(schema: Arc<Schema>) -> Self {
        Dataset::from_base(schema, Vec::new())
    }

    /// Create a dataset from pre-validated records.
    pub fn from_records(schema: Arc<Schema>, records: Vec<Record>) -> Result<Self> {
        for r in &records {
            schema.validate_values(r.values())?;
        }
        Ok(Dataset::from_base(schema, records))
    }

    /// Create a dataset without re-validating records.
    ///
    /// Intended for internal fast paths where the records were just produced
    /// against the same schema (e.g. by the synthesizer).
    pub fn from_records_unchecked(schema: Arc<Schema>, records: Vec<Record>) -> Self {
        Dataset::from_base(schema, records)
    }

    /// Collapse the segments into a single uniquely-owned block and return it
    /// mutably (O(1) when this dataset has no tail and shares nothing).
    fn records_mut(&mut self) -> &mut Vec<Record> {
        if !self.tail.is_empty() {
            self.base = match self.full.get() {
                Some(full) => Arc::clone(full),
                None => {
                    let mut merged = Vec::with_capacity(self.base.len() + self.tail.len());
                    merged.extend_from_slice(&self.base);
                    merged.extend_from_slice(&self.tail);
                    Arc::new(merged)
                }
            };
            self.tail = Arc::new(Vec::new());
        }
        self.full = OnceLock::new();
        Arc::make_mut(&mut self.base)
    }

    /// Derive the dataset with `extra` records appended, sharing every
    /// existing record with `self` — O(|extra|), the incremental-ingest fast
    /// path.  Records are validated against the schema.
    pub fn with_appended(&self, extra: Vec<Record>) -> Result<Dataset> {
        for r in &extra {
            self.schema.validate_values(r.values())?;
        }
        if extra.is_empty() {
            return Ok(self.clone());
        }
        let (base, tail) = if self.tail.is_empty() {
            (Arc::clone(&self.base), extra)
        } else if let Some(full) = self.full.get() {
            (Arc::clone(full), extra)
        } else {
            // Chained appends before any materialization: fold the (small)
            // old tail into the new one, still sharing the base block.
            let mut tail = Vec::with_capacity(self.tail.len() + extra.len());
            tail.extend_from_slice(&self.tail);
            tail.extend(extra);
            (Arc::clone(&self.base), tail)
        };
        Ok(Dataset {
            schema: Arc::clone(&self.schema),
            base,
            tail: Arc::new(tail),
            full: OnceLock::new(),
        })
    }

    /// The schema of this dataset.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Shared handle to the schema.
    pub fn schema_arc(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.base.len() + self.tail.len()
    }

    /// Whether the dataset holds no records.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty() && self.tail.is_empty()
    }

    /// Records slice.  With a non-empty tail this materializes (once) the
    /// contiguous concatenation; prefer [`record`](Dataset::record) for point
    /// lookups that should stay O(1) on freshly-appended datasets.
    pub fn records(&self) -> &[Record] {
        if self.tail.is_empty() {
            return &self.base;
        }
        self.full.get_or_init(|| {
            let mut merged = Vec::with_capacity(self.base.len() + self.tail.len());
            merged.extend_from_slice(&self.base);
            merged.extend_from_slice(&self.tail);
            Arc::new(merged)
        })
    }

    /// Record at index `i`.
    pub fn record(&self, i: usize) -> &Record {
        if i < self.base.len() {
            &self.base[i]
        } else {
            &self.tail[i - self.base.len()]
        }
    }

    /// Append a record after validating it against the schema.
    pub fn push(&mut self, record: Record) -> Result<()> {
        self.schema.validate_values(record.values())?;
        self.records_mut().push(record);
        Ok(())
    }

    /// Append a record without validation (caller guarantees conformity).
    pub fn push_unchecked(&mut self, record: Record) {
        self.records_mut().push(record);
    }

    /// Iterate over the value indices of attribute `col` across all records.
    pub fn column(&self, col: usize) -> impl Iterator<Item = u16> + '_ {
        self.records().iter().map(move |r| r.get(col))
    }

    /// Uniformly sample one record (the seed selection step of Mechanism 1).
    pub fn sample_record<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<&Record> {
        if self.is_empty() {
            return Err(DataError::EmptyDataset);
        }
        let idx = rng.gen_range(0..self.len());
        Ok(self.record(idx))
    }

    /// Sample `n` records uniformly *with* replacement.
    pub fn sample_with_replacement<R: Rng + ?Sized>(
        &self,
        n: usize,
        rng: &mut R,
    ) -> Result<Dataset> {
        if self.is_empty() {
            return Err(DataError::EmptyDataset);
        }
        let records = (0..n)
            .map(|_| self.record(rng.gen_range(0..self.len())).clone())
            .collect();
        Ok(Dataset::from_records_unchecked(self.schema_arc(), records))
    }

    /// Sample `n` records uniformly *without* replacement (n is clamped to the dataset size).
    pub fn sample_without_replacement<R: Rng + ?Sized>(
        &self,
        n: usize,
        rng: &mut R,
    ) -> Result<Dataset> {
        if self.is_empty() {
            return Err(DataError::EmptyDataset);
        }
        let n = n.min(self.len());
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(rng);
        let records = idx[..n].iter().map(|&i| self.record(i).clone()).collect();
        Ok(Dataset::from_records_unchecked(self.schema_arc(), records))
    }

    /// Return a new dataset with the records shuffled.
    pub fn shuffled<R: Rng + ?Sized>(&self, rng: &mut R) -> Dataset {
        let mut records = self.records().to_vec();
        records.shuffle(rng);
        Dataset::from_records_unchecked(self.schema_arc(), records)
    }

    /// Number of *distinct* records (the "unique records" statistic of Table 2
    /// counts records whose value combination appears exactly once).
    pub fn distinct_count(&self) -> usize {
        let mut set: HashSet<&[u16]> = HashSet::with_capacity(self.len());
        for r in self.records() {
            set.insert(r.values());
        }
        set.len()
    }

    /// Number of records whose exact value combination occurs exactly once in
    /// the dataset (Table 2's "unique records").
    pub fn singleton_count(&self) -> usize {
        use std::collections::HashMap;
        let mut counts: HashMap<&[u16], usize> = HashMap::with_capacity(self.len());
        for r in self.records() {
            *counts.entry(r.values()).or_insert(0) += 1;
        }
        counts.values().filter(|&&c| c == 1).count()
    }

    /// Concatenate two datasets sharing the same schema.
    pub fn concat(&self, other: &Dataset) -> Result<Dataset> {
        if self.schema.as_ref() != other.schema.as_ref() {
            return Err(DataError::InvalidParameter(
                "cannot concatenate datasets with different schemas".to_string(),
            ));
        }
        let mut records = self.records().to_vec();
        records.extend_from_slice(other.records());
        Ok(Dataset::from_records_unchecked(self.schema_arc(), records))
    }

    /// Keep only the first `n` records.
    pub fn truncated(&self, n: usize) -> Dataset {
        Dataset::from_records_unchecked(
            self.schema_arc(),
            self.records()[..n.min(self.len())].to_vec(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::new(vec![
                Attribute::categorical("A", &["a0", "a1", "a2"]),
                Attribute::categorical("B", &["b0", "b1"]),
            ])
            .unwrap(),
        )
    }

    fn dataset() -> Dataset {
        let s = schema();
        let mut d = Dataset::new(Arc::clone(&s));
        for (a, b) in [(0u16, 0u16), (1, 1), (2, 0), (2, 0), (0, 1)] {
            d.push(Record::new(vec![a, b])).unwrap();
        }
        d
    }

    #[test]
    fn push_validates_domain() {
        let mut d = Dataset::new(schema());
        assert!(d.push(Record::new(vec![0, 1])).is_ok());
        assert!(d.push(Record::new(vec![3, 0])).is_err());
        assert!(d.push(Record::new(vec![0])).is_err());
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn column_iterates_values() {
        let d = dataset();
        let col: Vec<u16> = d.column(0).collect();
        assert_eq!(col, vec![0, 1, 2, 2, 0]);
    }

    #[test]
    fn distinct_and_singleton_counts() {
        let d = dataset();
        assert_eq!(d.distinct_count(), 4);
        // (2,0) appears twice, the other three exactly once.
        assert_eq!(d.singleton_count(), 3);
    }

    #[test]
    fn sampling_respects_bounds() {
        let d = dataset();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let r = d.sample_record(&mut rng).unwrap();
            assert!(r.get(0) < 3 && r.get(1) < 2);
        }
        let with = d.sample_with_replacement(12, &mut rng).unwrap();
        assert_eq!(with.len(), 12);
        let without = d.sample_without_replacement(3, &mut rng).unwrap();
        assert_eq!(without.len(), 3);
        let clamped = d.sample_without_replacement(99, &mut rng).unwrap();
        assert_eq!(clamped.len(), d.len());
    }

    #[test]
    fn empty_dataset_sampling_errors() {
        let d = Dataset::new(schema());
        let mut rng = StdRng::seed_from_u64(1);
        assert!(d.sample_record(&mut rng).is_err());
        assert!(d.sample_with_replacement(3, &mut rng).is_err());
    }

    #[test]
    fn hamming_distance_counts_differences() {
        let a = Record::new(vec![0, 1, 2, 3]);
        let b = Record::new(vec![0, 2, 2, 0]);
        assert_eq!(a.hamming_distance(&b), 2);
        assert_eq!(a.hamming_distance(&a), 0);
    }

    #[test]
    fn concat_requires_same_schema() {
        let d = dataset();
        let other_schema =
            Arc::new(Schema::new(vec![Attribute::categorical("X", &["x"])]).unwrap());
        let other = Dataset::new(other_schema);
        assert!(d.concat(&other).is_err());
        let merged = d.concat(&d).unwrap();
        assert_eq!(merged.len(), 2 * d.len());
    }

    #[test]
    fn truncated_keeps_prefix() {
        let d = dataset();
        assert_eq!(d.truncated(2).len(), 2);
        assert_eq!(d.truncated(100).len(), d.len());
    }

    #[test]
    fn with_appended_shares_the_base_and_reads_contiguously() {
        let d = dataset();
        let extra = vec![Record::new(vec![1, 0]), Record::new(vec![2, 1])];
        let appended = d.with_appended(extra.clone()).unwrap();
        // The base block is shared, not copied.
        assert!(Arc::ptr_eq(&d.base, &appended.base));
        assert_eq!(appended.len(), d.len() + 2);
        // Point lookups resolve without materializing the concatenation.
        assert_eq!(appended.record(0), d.record(0));
        assert_eq!(appended.record(d.len()), &extra[0]);
        assert!(appended.full.get().is_none());
        // The contiguous view equals an explicit concatenation.
        let mut expect = d.records().to_vec();
        expect.extend(extra);
        assert_eq!(appended.records(), expect.as_slice());
        // Appending nothing is a cheap clone of the whole dataset.
        let same = d.with_appended(Vec::new()).unwrap();
        assert!(Arc::ptr_eq(&d.base, &same.base));
        assert_eq!(same.len(), d.len());
    }

    #[test]
    fn chained_appends_keep_sharing_the_base() {
        let d = dataset();
        let once = d.with_appended(vec![Record::new(vec![0, 0])]).unwrap();
        let twice = once.with_appended(vec![Record::new(vec![1, 1])]).unwrap();
        assert!(Arc::ptr_eq(&d.base, &twice.base));
        assert_eq!(twice.len(), d.len() + 2);
        let mut expect = d.records().to_vec();
        expect.push(Record::new(vec![0, 0]));
        expect.push(Record::new(vec![1, 1]));
        assert_eq!(twice.records(), expect.as_slice());
    }

    #[test]
    fn with_appended_validates_and_push_after_append_flattens() {
        let d = dataset();
        assert!(d.with_appended(vec![Record::new(vec![9, 0])]).is_err());
        let mut appended = d.with_appended(vec![Record::new(vec![2, 1])]).unwrap();
        // Mutation collapses the segments without disturbing the parent.
        appended.push(Record::new(vec![0, 0])).unwrap();
        assert_eq!(appended.len(), d.len() + 2);
        assert_eq!(d.len(), 5);
        assert_eq!(
            appended.record(appended.len() - 1),
            &Record::new(vec![0, 0])
        );
    }
}
