//! Bucketization (`bkt()` in the paper, Section 3.3 / Section 4).
//!
//! Structure learning discretizes parent attributes to keep the complexity
//! cost of a parent set bounded: numerical attributes are binned (e.g. age in
//! bins of 10 years), and some categorical attributes have semantically close
//! labels merged (e.g. all education levels below a high-school diploma).
//! Bucketization is a fixed function of the schema — it never looks at the
//! data — which is why the paper can treat it as privacy-free.

use crate::error::{DataError, Result};
use crate::schema::Schema;
use serde::{Deserialize, Serialize};

/// Mapping from raw value indices of one attribute to bucket indices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttributeBuckets {
    /// `map[v]` is the bucket index of raw value index `v`.
    map: Vec<u16>,
    /// Number of buckets (max(map) + 1).
    bucket_count: usize,
}

impl AttributeBuckets {
    /// Identity bucketization: every raw value is its own bucket.
    pub fn identity(cardinality: usize) -> Self {
        AttributeBuckets {
            map: (0..cardinality as u16).collect(),
            bucket_count: cardinality,
        }
    }

    /// Fixed-width binning of `cardinality` consecutive values into bins of `width`.
    pub fn fixed_width(cardinality: usize, width: usize) -> Result<Self> {
        if width == 0 {
            return Err(DataError::InvalidParameter(
                "bucket width must be > 0".into(),
            ));
        }
        let map: Vec<u16> = (0..cardinality).map(|v| (v / width) as u16).collect();
        let bucket_count = if cardinality == 0 {
            0
        } else {
            cardinality.div_ceil(width)
        };
        Ok(AttributeBuckets { map, bucket_count })
    }

    /// Explicit mapping: `map[v]` gives the bucket of raw value `v`.  Bucket
    /// indices must form a contiguous range starting at zero.
    pub fn explicit(map: Vec<u16>) -> Result<Self> {
        if map.is_empty() {
            return Err(DataError::InvalidParameter(
                "bucket map must not be empty".into(),
            ));
        }
        let max = *map.iter().max().expect("non-empty") as usize;
        let mut seen = vec![false; max + 1];
        for &b in &map {
            seen[b as usize] = true;
        }
        if seen.iter().any(|&s| !s) {
            return Err(DataError::InvalidParameter(
                "bucket indices must be contiguous starting at 0".into(),
            ));
        }
        Ok(AttributeBuckets {
            bucket_count: max + 1,
            map,
        })
    }

    /// Number of buckets (`|bkt(x_j)|`).
    pub fn bucket_count(&self) -> usize {
        self.bucket_count
    }

    /// Bucket of raw value index `v`.
    pub fn bucket_of(&self, v: u16) -> u16 {
        self.map[v as usize]
    }

    /// Number of raw values this bucketization covers.
    pub fn domain_size(&self) -> usize {
        self.map.len()
    }
}

/// Bucketization for every attribute of a schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bucketizer {
    per_attribute: Vec<AttributeBuckets>,
}

impl Bucketizer {
    /// Identity bucketizer (no discretization) for a schema.
    pub fn identity(schema: &Schema) -> Self {
        Bucketizer {
            per_attribute: schema
                .cardinalities()
                .into_iter()
                .map(AttributeBuckets::identity)
                .collect(),
        }
    }

    /// Build a bucketizer from per-attribute bucketizations.  One entry per
    /// schema attribute, each covering the attribute's full domain.
    pub fn new(schema: &Schema, per_attribute: Vec<AttributeBuckets>) -> Result<Self> {
        if per_attribute.len() != schema.len() {
            return Err(DataError::InvalidParameter(format!(
                "bucketizer has {} attribute entries but schema has {}",
                per_attribute.len(),
                schema.len()
            )));
        }
        for (i, b) in per_attribute.iter().enumerate() {
            if b.domain_size() != schema.cardinality(i) {
                return Err(DataError::InvalidParameter(format!(
                    "bucketization for attribute `{}` covers {} values but its cardinality is {}",
                    schema.attribute(i).name(),
                    b.domain_size(),
                    schema.cardinality(i)
                )));
            }
        }
        Ok(Bucketizer { per_attribute })
    }

    /// Replace the bucketization of one attribute (builder style).
    pub fn with_attribute(mut self, index: usize, buckets: AttributeBuckets) -> Result<Self> {
        if index >= self.per_attribute.len() {
            return Err(DataError::InvalidParameter(format!(
                "attribute index {index} out of range"
            )));
        }
        if buckets.domain_size() != self.per_attribute[index].domain_size() {
            return Err(DataError::InvalidParameter(
                "replacement bucketization does not cover the attribute domain".into(),
            ));
        }
        self.per_attribute[index] = buckets;
        Ok(self)
    }

    /// Bucket of raw value `v` of attribute `attr`.
    pub fn bucket_of(&self, attr: usize, v: u16) -> u16 {
        self.per_attribute[attr].bucket_of(v)
    }

    /// Number of buckets of attribute `attr` (`|bkt(x_j)|` used by the cost constraint, Eq. 6).
    pub fn bucket_count(&self, attr: usize) -> usize {
        self.per_attribute[attr].bucket_count()
    }

    /// Per-attribute bucketizations.
    pub fn per_attribute(&self) -> &[AttributeBuckets] {
        &self.per_attribute
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::numerical("AGEP", 17, 96), // 80 values
            Attribute::categorical("SEX", &["male", "female"]),
        ])
        .unwrap()
    }

    #[test]
    fn identity_keeps_every_value() {
        let b = AttributeBuckets::identity(5);
        assert_eq!(b.bucket_count(), 5);
        for v in 0..5u16 {
            assert_eq!(b.bucket_of(v), v);
        }
    }

    #[test]
    fn fixed_width_bins_age_in_decades() {
        // The paper buckets age into bins of 10 years: 17-26, 27-36, ...
        let b = AttributeBuckets::fixed_width(80, 10).unwrap();
        assert_eq!(b.bucket_count(), 8);
        assert_eq!(b.bucket_of(0), 0);
        assert_eq!(b.bucket_of(9), 0);
        assert_eq!(b.bucket_of(10), 1);
        assert_eq!(b.bucket_of(79), 7);
    }

    #[test]
    fn fixed_width_rejects_zero_width() {
        assert!(AttributeBuckets::fixed_width(10, 0).is_err());
    }

    #[test]
    fn explicit_requires_contiguous_buckets() {
        assert!(AttributeBuckets::explicit(vec![0, 0, 1, 2]).is_ok());
        assert!(AttributeBuckets::explicit(vec![0, 2]).is_err());
        assert!(AttributeBuckets::explicit(vec![]).is_err());
    }

    #[test]
    fn bucketizer_validates_domain_coverage() {
        let s = schema();
        let ok = Bucketizer::new(
            &s,
            vec![
                AttributeBuckets::fixed_width(80, 10).unwrap(),
                AttributeBuckets::identity(2),
            ],
        );
        assert!(ok.is_ok());
        let bad = Bucketizer::new(
            &s,
            vec![
                AttributeBuckets::identity(79),
                AttributeBuckets::identity(2),
            ],
        );
        assert!(bad.is_err());
        let wrong_len = Bucketizer::new(&s, vec![AttributeBuckets::identity(80)]);
        assert!(wrong_len.is_err());
    }

    #[test]
    fn with_attribute_replaces_single_entry() {
        let s = schema();
        let b = Bucketizer::identity(&s)
            .with_attribute(0, AttributeBuckets::fixed_width(80, 10).unwrap())
            .unwrap();
        assert_eq!(b.bucket_count(0), 8);
        assert_eq!(b.bucket_count(1), 2);
        assert!(b
            .clone()
            .with_attribute(5, AttributeBuckets::identity(2))
            .is_err());
    }
}
