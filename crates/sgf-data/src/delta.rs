//! Z-set-style dataset deltas (incremental seed-data updates).
//!
//! The paper's pipeline assumes a fixed input dataset, but long-lived serving
//! sessions see their seed data change: a few records arrive, a few are
//! retracted.  Following DBSP's Z-set formulation, a [`DatasetDelta`] is a
//! signed multiset of records — insertions with weight `+1` and deletions with
//! weight `-1` — validated against the schema up front so downstream consumers
//! (count merges, posting-list surgery, class moves) never see an
//! out-of-domain value.
//!
//! Applying a delta produces the *canonical final dataset*: the original
//! record order with each deletion removing the first remaining occurrence of
//! its record, and all insertions appended at the end in delta order.  Every
//! incremental consumer in the workspace maintains its state to be
//! **byte-identical** to a from-scratch rebuild on this canonical dataset,
//! which is what makes the incremental-vs-retrain equivalence provable.

use crate::error::{DataError, Result};
use crate::record::{Dataset, Record};
use crate::schema::Schema;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A signed multiset of record changes against one schema.
///
/// Deletions are matched *by value*: deleting a record removes the first
/// remaining occurrence of an identical record from the dataset, so duplicate
/// records are retracted one multiplicity at a time (Z-set semantics).  The
/// insertion order is part of the delta's identity — inserted records are
/// appended to the dataset in exactly this order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetDelta {
    schema: Arc<Schema>,
    inserts: Vec<Record>,
    deletes: Vec<Record>,
}

impl DatasetDelta {
    /// An empty delta against `schema`.
    pub fn new(schema: Arc<Schema>) -> Self {
        DatasetDelta {
            schema,
            inserts: Vec::new(),
            deletes: Vec::new(),
        }
    }

    /// Schema the delta was built against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Stage a record insertion (weight `+1`); the record is validated against
    /// the schema immediately.
    pub fn insert(&mut self, record: Record) -> Result<()> {
        self.schema.validate_values(record.values())?;
        self.inserts.push(record);
        Ok(())
    }

    /// Stage a record deletion (weight `-1`); the record is validated against
    /// the schema immediately.
    pub fn delete(&mut self, record: Record) -> Result<()> {
        self.schema.validate_values(record.values())?;
        self.deletes.push(record);
        Ok(())
    }

    /// Records inserted by this delta, in append order.
    pub fn inserts(&self) -> &[Record] {
        &self.inserts
    }

    /// Records deleted by this delta, in retraction order.
    pub fn deletes(&self) -> &[Record] {
        &self.deletes
    }

    /// Whether the delta stages no changes.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Total number of staged changes (`|Δ|`, counting multiplicity).
    pub fn change_count(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// Check that this delta targets a dataset with the same schema.
    pub fn validate_against(&self, schema: &Schema) -> Result<()> {
        if *schema != *self.schema {
            return Err(DataError::InvalidParameter(
                "delta schema does not match the dataset schema".to_string(),
            ));
        }
        Ok(())
    }

    /// Apply the delta to `dataset`, producing the canonical final dataset:
    /// surviving records keep their original relative order, then insertions
    /// are appended in delta order.  Fails if a deletion has no remaining
    /// occurrence to retract.
    pub fn apply(&self, dataset: &Dataset) -> Result<Dataset> {
        self.validate_against(dataset.schema())?;
        let survivors = apply_deletes(dataset.records(), &self.deletes)?;
        let mut records: Vec<Record> = survivors
            .into_iter()
            .map(|i| dataset.record(i).clone())
            .collect();
        records.extend(self.inserts.iter().cloned());
        Ok(Dataset::from_records_unchecked(
            dataset.schema_arc(),
            records,
        ))
    }
}

/// Resolve `deletes` against `records` by value, retracting the first
/// remaining occurrence of each deleted record.  Returns the indices of the
/// surviving records in ascending (original) order.
///
/// This is the shared matching rule for every incremental consumer: the index
/// stores use the complementary *deleted* index set to splice posting lists
/// and class member lists, and the model counts subtract exactly these
/// records.
pub fn apply_deletes(records: &[Record], deletes: &[Record]) -> Result<Vec<usize>> {
    let mut removed = vec![false; records.len()];
    for del in deletes {
        let found = records
            .iter()
            .enumerate()
            .position(|(i, r)| !removed[i] && r == del);
        match found {
            Some(i) => removed[i] = true,
            None => {
                return Err(DataError::InvalidParameter(format!(
                    "delta deletes a record with no remaining occurrence: {:?}",
                    del.values()
                )))
            }
        }
    }
    Ok((0..records.len()).filter(|&i| !removed[i]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::new(vec![
                Attribute::categorical_anon("A", 4),
                Attribute::categorical_anon("B", 3),
            ])
            .unwrap(),
        )
    }

    fn dataset(rows: &[[u16; 2]]) -> Dataset {
        let records = rows.iter().map(|r| Record::new(r.to_vec())).collect();
        Dataset::from_records_unchecked(schema(), records)
    }

    #[test]
    fn apply_appends_inserts_and_retracts_first_occurrences() {
        let d = dataset(&[[0, 0], [1, 1], [0, 0], [2, 2]]);
        let mut delta = DatasetDelta::new(schema());
        delta.delete(Record::new(vec![0, 0])).unwrap();
        delta.insert(Record::new(vec![3, 1])).unwrap();
        let out = delta.apply(&d).unwrap();
        let values: Vec<&[u16]> = out.records().iter().map(|r| r.values()).collect();
        assert_eq!(values, vec![&[1, 1][..], &[0, 0], &[2, 2], &[3, 1]]);
    }

    #[test]
    fn duplicate_deletes_retract_one_multiplicity_each() {
        let d = dataset(&[[0, 0], [0, 0], [1, 1]]);
        let mut delta = DatasetDelta::new(schema());
        delta.delete(Record::new(vec![0, 0])).unwrap();
        delta.delete(Record::new(vec![0, 0])).unwrap();
        let out = delta.apply(&d).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.record(0).values(), &[1, 1]);
    }

    #[test]
    fn deleting_a_missing_record_fails() {
        let d = dataset(&[[0, 0]]);
        let mut delta = DatasetDelta::new(schema());
        delta.delete(Record::new(vec![1, 1])).unwrap();
        assert!(delta.apply(&d).is_err());
        // One delete too many for the multiplicity present.
        let mut twice = DatasetDelta::new(schema());
        twice.delete(Record::new(vec![0, 0])).unwrap();
        twice.delete(Record::new(vec![0, 0])).unwrap();
        assert!(twice.apply(&d).is_err());
    }

    #[test]
    fn out_of_domain_records_are_rejected_at_staging() {
        let mut delta = DatasetDelta::new(schema());
        assert!(delta.insert(Record::new(vec![4, 0])).is_err());
        assert!(delta.delete(Record::new(vec![0, 3])).is_err());
        assert!(delta.insert(Record::new(vec![0])).is_err());
        assert!(delta.is_empty());
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let other = Arc::new(Schema::new(vec![Attribute::categorical_anon("X", 2)]).unwrap());
        let d = dataset(&[[0, 0]]);
        let mut delta = DatasetDelta::new(other);
        delta.insert(Record::new(vec![1])).unwrap();
        assert!(delta.apply(&d).is_err());
    }

    #[test]
    fn counts_and_emptiness() {
        let mut delta = DatasetDelta::new(schema());
        assert!(delta.is_empty());
        assert_eq!(delta.change_count(), 0);
        delta.insert(Record::new(vec![1, 1])).unwrap();
        delta.delete(Record::new(vec![0, 0])).unwrap();
        assert!(!delta.is_empty());
        assert_eq!(delta.change_count(), 2);
        assert_eq!(delta.inserts().len(), 1);
        assert_eq!(delta.deletes().len(), 1);
    }
}
