//! Disjoint dataset splits (Section 3 / Section 6.1).
//!
//! The pipeline samples the input dataset `D` into non-overlapping subsets:
//! `D_T` (structure learning), `D_P` (parameter learning), `D_S` (seeds for
//! synthesis) and a held-out test set used by the evaluation.  Keeping the
//! subsets disjoint is what allows the DP analysis of Section 3.5 to take the
//! *maximum* (rather than the sum) over the structure/parameter budgets.

use crate::error::{DataError, Result};
use crate::record::{Dataset, Record};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Fractions of the input dataset assigned to each disjoint role.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SplitSpec {
    /// Fraction used for structure learning (`D_T`).
    pub structure: f64,
    /// Fraction used for parameter learning (`D_P`).
    pub parameters: f64,
    /// Fraction used as synthesis seeds (`D_S`).
    pub seeds: f64,
    /// Fraction held out for evaluation (never seen by the pipeline).
    pub test: f64,
}

impl SplitSpec {
    /// The proportions used in the paper's evaluation setup (Section 6.1):
    /// roughly 280k/280k/735k records for D_T/D_P/D_S out of ~1.5M plus a
    /// ~100k test set, i.e. about 19%/19%/49%/13%.
    pub fn paper_defaults() -> Self {
        SplitSpec {
            structure: 0.19,
            parameters: 0.19,
            seeds: 0.49,
            test: 0.13,
        }
    }

    /// Validate that all fractions are non-negative and sum to at most 1.
    pub fn validate(&self) -> Result<()> {
        let parts = [self.structure, self.parameters, self.seeds, self.test];
        if parts.iter().any(|p| !(0.0..=1.0).contains(p) || p.is_nan()) {
            return Err(DataError::InvalidSplit(
                "all split fractions must lie in [0, 1]".to_string(),
            ));
        }
        let total: f64 = parts.iter().sum();
        if total > 1.0 + 1e-9 {
            return Err(DataError::InvalidSplit(format!(
                "split fractions sum to {total:.3} > 1"
            )));
        }
        Ok(())
    }
}

/// The disjoint subsets produced by [`split_dataset`].
#[derive(Debug, Clone)]
pub struct DataSplit {
    /// `D_T`: records used to learn the model structure.
    pub structure: Dataset,
    /// `D_P`: records used to learn the model parameters.
    pub parameters: Dataset,
    /// `D_S`: records used as synthesis seeds.
    pub seeds: Dataset,
    /// Held-out records for evaluation.
    pub test: Dataset,
}

/// Randomly partition `dataset` into the four disjoint subsets described by `spec`.
pub fn split_dataset<R: Rng + ?Sized>(
    dataset: &Dataset,
    spec: &SplitSpec,
    rng: &mut R,
) -> Result<DataSplit> {
    spec.validate()?;
    if dataset.is_empty() {
        return Err(DataError::EmptyDataset);
    }
    let n = dataset.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);

    let n_structure = (spec.structure * n as f64).floor() as usize;
    let n_parameters = (spec.parameters * n as f64).floor() as usize;
    let n_seeds = (spec.seeds * n as f64).floor() as usize;
    let n_test = (spec.test * n as f64).floor() as usize;
    let total = n_structure + n_parameters + n_seeds + n_test;
    if total > n {
        return Err(DataError::InvalidSplit(format!(
            "requested {total} records from a dataset of {n}"
        )));
    }

    let schema = dataset.schema_arc();
    let take = |range: std::ops::Range<usize>| -> Dataset {
        let records = idx[range]
            .iter()
            .map(|&i| dataset.record(i).clone())
            .collect();
        Dataset::from_records_unchecked(schema.clone(), records)
    };

    let mut offset = 0usize;
    let structure = take(offset..offset + n_structure);
    offset += n_structure;
    let parameters = take(offset..offset + n_parameters);
    offset += n_parameters;
    let seeds = take(offset..offset + n_seeds);
    offset += n_seeds;
    let test = take(offset..offset + n_test);

    Ok(DataSplit {
        structure,
        parameters,
        seeds,
        test,
    })
}

/// The disjoint role a record is assigned by the deterministic hash split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SplitRole {
    /// `D_T`: structure learning.
    Structure,
    /// `D_P`: parameter learning.
    Parameters,
    /// `D_S`: synthesis seeds.
    Seeds,
    /// Held-out evaluation records.
    Test,
    /// Not assigned to any subset (fractions summing below 1 leave a remainder).
    Unassigned,
}

/// FNV-1a over the record values, finished with the splitmix64 avalanche so
/// low-cardinality attribute values still spread over the full 64-bit range.
fn role_hash(seed: u64, values: &[u16]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for &v in values {
        h = (h ^ u64::from(v)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    // splitmix64 finalizer.
    h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// The role of `record` under the deterministic hash split.
///
/// Unlike [`split_dataset`]'s shuffle, the role is a pure function of the
/// record's *values* and the split seed — never of the record's position or of
/// the rest of the dataset.  That is what makes splits delta-maintainable:
/// deleting or inserting a record moves exactly that record in exactly one
/// subset, so an incremental update and a from-scratch re-split of the final
/// dataset agree byte-for-byte.  Identical records always share a role, which
/// keeps value-matched deletions unambiguous.
///
/// The record's hash is mapped to a unit-interval coordinate and compared to
/// the cumulative fractions of `spec` in declaration order
/// (structure, parameters, seeds, test); any remainder is [`SplitRole::Unassigned`].
pub fn split_role(spec: &SplitSpec, seed: u64, record: &Record) -> SplitRole {
    // 53 high bits give an exactly-representable coordinate in [0, 1).
    let unit = (role_hash(seed, record.values()) >> 11) as f64 / (1u64 << 53) as f64;
    let mut cut = spec.structure;
    if unit < cut {
        return SplitRole::Structure;
    }
    cut += spec.parameters;
    if unit < cut {
        return SplitRole::Parameters;
    }
    cut += spec.seeds;
    if unit < cut {
        return SplitRole::Seeds;
    }
    cut += spec.test;
    if unit < cut {
        return SplitRole::Test;
    }
    SplitRole::Unassigned
}

/// Partition `dataset` into the four disjoint subsets with the deterministic
/// hash split: each record's role comes from [`split_role`], and every subset
/// keeps its records in dataset order.
///
/// Subset sizes concentrate around the requested fractions (binomially) rather
/// than matching them exactly; in exchange the split commutes with dataset
/// deltas, which the incremental `update` path in `sgf-core` relies on.
pub fn split_dataset_by_hash(dataset: &Dataset, spec: &SplitSpec, seed: u64) -> Result<DataSplit> {
    spec.validate()?;
    if dataset.is_empty() {
        return Err(DataError::EmptyDataset);
    }
    let schema = dataset.schema_arc();
    let mut parts: [Vec<crate::record::Record>; 4] = Default::default();
    for record in dataset.records() {
        let slot = match split_role(spec, seed, record) {
            SplitRole::Structure => 0,
            SplitRole::Parameters => 1,
            SplitRole::Seeds => 2,
            SplitRole::Test => 3,
            SplitRole::Unassigned => continue,
        };
        parts[slot].push(record.clone());
    }
    let [structure, parameters, seeds, test] = parts;
    Ok(DataSplit {
        structure: Dataset::from_records_unchecked(schema.clone(), structure),
        parameters: Dataset::from_records_unchecked(schema.clone(), parameters),
        seeds: Dataset::from_records_unchecked(schema.clone(), seeds),
        test: Dataset::from_records_unchecked(schema, test),
    })
}

/// Split a dataset into a train/test pair (used by the ML evaluation).
pub fn train_test_split<R: Rng + ?Sized>(
    dataset: &Dataset,
    test_fraction: f64,
    rng: &mut R,
) -> Result<(Dataset, Dataset)> {
    if !(0.0..1.0).contains(&test_fraction) {
        return Err(DataError::InvalidSplit(format!(
            "test fraction {test_fraction} must lie in [0, 1)"
        )));
    }
    if dataset.is_empty() {
        return Err(DataError::EmptyDataset);
    }
    let n = dataset.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let n_test = (test_fraction * n as f64).round() as usize;
    let schema = dataset.schema_arc();
    let test_records = idx[..n_test]
        .iter()
        .map(|&i| dataset.record(i).clone())
        .collect();
    let train_records = idx[n_test..]
        .iter()
        .map(|&i| dataset.record(i).clone())
        .collect();
    Ok((
        Dataset::from_records_unchecked(schema.clone(), train_records),
        Dataset::from_records_unchecked(schema, test_records),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;
    use crate::schema::{Attribute, Schema};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashSet;
    use std::sync::Arc;

    fn dataset(n: usize) -> Dataset {
        let schema =
            Arc::new(Schema::new(vec![Attribute::numerical("ID", 0, (n as i64) - 1)]).unwrap());
        let records = (0..n).map(|i| Record::new(vec![i as u16])).collect();
        Dataset::from_records_unchecked(schema, records)
    }

    #[test]
    fn paper_defaults_are_valid() {
        assert!(SplitSpec::paper_defaults().validate().is_ok());
    }

    #[test]
    fn invalid_fractions_rejected() {
        let bad = SplitSpec {
            structure: 0.5,
            parameters: 0.5,
            seeds: 0.5,
            test: 0.0,
        };
        assert!(bad.validate().is_err());
        let nan = SplitSpec {
            structure: f64::NAN,
            parameters: 0.1,
            seeds: 0.1,
            test: 0.1,
        };
        assert!(nan.validate().is_err());
    }

    #[test]
    fn splits_are_disjoint_and_sized() {
        let d = dataset(1000);
        let mut rng = StdRng::seed_from_u64(3);
        let split = split_dataset(&d, &SplitSpec::paper_defaults(), &mut rng).unwrap();
        assert_eq!(split.structure.len(), 190);
        assert_eq!(split.parameters.len(), 190);
        assert_eq!(split.seeds.len(), 490);
        assert_eq!(split.test.len(), 130);

        let mut seen: HashSet<u16> = HashSet::new();
        for part in [
            &split.structure,
            &split.parameters,
            &split.seeds,
            &split.test,
        ] {
            for r in part.records() {
                assert!(seen.insert(r.get(0)), "record appears in two splits");
            }
        }
    }

    #[test]
    fn empty_dataset_rejected() {
        let d = dataset(5).truncated(0);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(split_dataset(&d, &SplitSpec::paper_defaults(), &mut rng).is_err());
    }

    #[test]
    fn hash_split_is_deterministic_and_order_preserving() {
        let d = dataset(1000);
        let spec = SplitSpec::paper_defaults();
        let a = split_dataset_by_hash(&d, &spec, 7).unwrap();
        let b = split_dataset_by_hash(&d, &spec, 7).unwrap();
        let mut seen: HashSet<u16> = HashSet::new();
        let mut total = 0usize;
        for (x, y) in [
            (&a.structure, &b.structure),
            (&a.parameters, &b.parameters),
            (&a.seeds, &b.seeds),
            (&a.test, &b.test),
        ] {
            assert_eq!(x.records(), y.records());
            total += x.len();
            let mut last = None;
            for r in x.records() {
                assert!(seen.insert(r.get(0)), "record appears in two splits");
                // Subset order must be dataset order (values are 0..n here).
                if let Some(prev) = last {
                    assert!(r.get(0) > prev);
                }
                last = Some(r.get(0));
            }
        }
        // Paper fractions sum to 1.0, so every record is assigned.
        assert_eq!(total, 1000);
        // Sizes concentrate near the requested fractions.
        assert!((a.seeds.len() as f64 - 490.0).abs() < 60.0);
        // A different seed shuffles the assignment.
        let c = split_dataset_by_hash(&d, &spec, 8).unwrap();
        assert_ne!(a.seeds.records(), c.seeds.records());
    }

    #[test]
    fn hash_split_roles_depend_only_on_record_values() {
        let d = dataset(50);
        let spec = SplitSpec::paper_defaults();
        for r in d.records() {
            assert_eq!(split_role(&spec, 3, r), split_role(&spec, 3, r));
        }
        // Fractions below 1 leave a remainder unassigned.
        let partial = SplitSpec {
            structure: 0.0,
            parameters: 0.0,
            seeds: 0.0,
            test: 0.0,
        };
        for r in d.records() {
            assert_eq!(split_role(&partial, 3, r), SplitRole::Unassigned);
        }
    }

    #[test]
    fn hash_split_commutes_with_record_changes() {
        use crate::delta::DatasetDelta;
        let d = dataset(400);
        let spec = SplitSpec::paper_defaults();
        let before = split_dataset_by_hash(&d, &spec, 11).unwrap();

        let mut delta = DatasetDelta::new(d.schema_arc());
        delta.delete(d.record(17).clone()).unwrap();
        delta.delete(d.record(230).clone()).unwrap();
        delta.insert(Record::new(vec![17])).unwrap();
        let final_dataset = delta.apply(&d).unwrap();
        let after = split_dataset_by_hash(&final_dataset, &spec, 11).unwrap();

        // Re-splitting the final dataset touches only the roles of the changed
        // records: every other subset is unchanged record-for-record.
        for (x, y) in [
            (&before.structure, &after.structure),
            (&before.parameters, &after.parameters),
            (&before.seeds, &after.seeds),
            (&before.test, &after.test),
        ] {
            let changed: HashSet<u16> = [17u16, 230].into_iter().collect();
            let xs: Vec<u16> = x
                .records()
                .iter()
                .map(|r| r.get(0))
                .filter(|v| !changed.contains(v))
                .collect();
            let ys: Vec<u16> = y
                .records()
                .iter()
                .map(|r| r.get(0))
                .filter(|v| !changed.contains(v))
                .collect();
            assert_eq!(xs, ys);
        }
    }

    #[test]
    fn train_test_split_partitions_everything() {
        let d = dataset(100);
        let mut rng = StdRng::seed_from_u64(9);
        let (train, test) = train_test_split(&d, 0.3, &mut rng).unwrap();
        assert_eq!(train.len() + test.len(), 100);
        assert_eq!(test.len(), 30);
        assert!(train_test_split(&d, 1.5, &mut rng).is_err());
    }
}
