//! Minimal CSV reader/writer for datasets.
//!
//! The paper's tool consumes a CSV file plus metadata describing the
//! attributes; here the [`Schema`] plays the role of the metadata files.  The
//! format is deliberately simple (comma-separated, no quoting of separators
//! inside values) because every attribute value is a short label or integer.

use crate::error::{DataError, Result};
use crate::record::{Dataset, Record};
use crate::schema::Schema;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;
use std::sync::Arc;

/// Serialize a dataset to CSV with a header row of attribute names.
pub fn write_csv<W: Write>(dataset: &Dataset, writer: &mut W) -> Result<()> {
    let schema = dataset.schema();
    let header: Vec<&str> = schema.attributes().iter().map(|a| a.name()).collect();
    writeln!(writer, "{}", header.join(","))?;
    let mut line = String::new();
    for record in dataset.records() {
        line.clear();
        for (i, &v) in record.values().iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&schema.attribute(i).render(v as usize)?);
        }
        writeln!(writer, "{line}")?;
    }
    Ok(())
}

/// Serialize a dataset to a CSV file on disk.
pub fn write_csv_file<P: AsRef<Path>>(dataset: &Dataset, path: P) -> Result<()> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_csv(dataset, &mut file)
}

/// Parse a CSV stream into a dataset conforming to `schema`.
///
/// The header row must list exactly the schema's attribute names, in order.
/// Rows with missing or unparsable values are rejected with a
/// [`DataError::MalformedCsv`] / [`DataError::UnparsableValue`]; the paper's
/// pre-processing step instead *drops* such rows, which callers can emulate
/// with [`read_csv_lossy`].
pub fn read_csv<R: Read>(schema: Arc<Schema>, reader: R) -> Result<Dataset> {
    read_csv_impl(schema, reader, false)
}

/// Like [`read_csv`] but silently skips rows with missing or invalid values,
/// mirroring the data-cleaning step of Section 4 ("we discard records with
/// missing or invalid values").
pub fn read_csv_lossy<R: Read>(schema: Arc<Schema>, reader: R) -> Result<Dataset> {
    read_csv_impl(schema, reader, true)
}

fn read_csv_impl<R: Read>(schema: Arc<Schema>, reader: R, lossy: bool) -> Result<Dataset> {
    let reader = BufReader::new(reader);
    let mut lines = reader.lines();
    let header = match lines.next() {
        Some(h) => h?,
        None => {
            return Err(DataError::MalformedCsv {
                line: 1,
                message: "missing header row".to_string(),
            })
        }
    };
    let header_fields: Vec<&str> = header.split(',').map(str::trim).collect();
    if header_fields.len() != schema.len()
        || header_fields
            .iter()
            .zip(schema.attributes())
            .any(|(h, a)| *h != a.name())
    {
        return Err(DataError::MalformedCsv {
            line: 1,
            message: format!(
                "header {:?} does not match schema attributes {:?}",
                header_fields,
                schema
                    .attributes()
                    .iter()
                    .map(|a| a.name())
                    .collect::<Vec<_>>()
            ),
        });
    }

    let mut dataset = Dataset::new(Arc::clone(&schema));
    for (line_no, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != schema.len() {
            if lossy {
                continue;
            }
            return Err(DataError::MalformedCsv {
                line: line_no + 2,
                message: format!("expected {} fields, got {}", schema.len(), fields.len()),
            });
        }
        let mut values = Vec::with_capacity(schema.len());
        let mut ok = true;
        for (i, raw) in fields.iter().enumerate() {
            match schema.attribute(i).parse(raw) {
                Ok(v) => values.push(v as u16),
                Err(e) => {
                    if lossy {
                        ok = false;
                        break;
                    }
                    return Err(e);
                }
            }
        }
        if ok {
            dataset.push_unchecked(Record::new(values));
        }
    }
    Ok(dataset)
}

/// Read a CSV file from disk.
pub fn read_csv_file<P: AsRef<Path>>(schema: Arc<Schema>, path: P) -> Result<Dataset> {
    let file = std::fs::File::open(path)?;
    read_csv(schema, file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn schema() -> Arc<Schema> {
        Arc::new(
            Schema::new(vec![
                Attribute::categorical("SEX", &["male", "female"]),
                Attribute::numerical("AGEP", 17, 96),
                Attribute::categorical("INCC", &["<=50K", ">50K"]),
            ])
            .unwrap(),
        )
    }

    fn dataset() -> Dataset {
        let mut d = Dataset::new(schema());
        d.push(Record::new(vec![0, 5, 1])).unwrap();
        d.push(Record::new(vec![1, 40, 0])).unwrap();
        d
    }

    #[test]
    fn roundtrip_preserves_records() {
        let d = dataset();
        let mut buf = Vec::new();
        write_csv(&d, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("SEX,AGEP,INCC\n"));
        assert!(text.contains("male,22,>50K"));
        let parsed = read_csv(schema(), &buf[..]).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed.records(), d.records());
    }

    #[test]
    fn header_mismatch_is_rejected() {
        let text = "SEX,AGE,INCC\nmale,22,>50K\n";
        let err = read_csv(schema(), text.as_bytes()).unwrap_err();
        assert!(matches!(err, DataError::MalformedCsv { line: 1, .. }));
    }

    #[test]
    fn missing_header_is_rejected() {
        let err = read_csv(schema(), "".as_bytes()).unwrap_err();
        assert!(matches!(err, DataError::MalformedCsv { .. }));
    }

    #[test]
    fn strict_parse_rejects_bad_rows() {
        let text = "SEX,AGEP,INCC\nmale,22,>50K\nmale,notanage,>50K\n";
        let err = read_csv(schema(), text.as_bytes()).unwrap_err();
        assert!(matches!(err, DataError::UnparsableValue { .. }));

        let text2 = "SEX,AGEP,INCC\nmale,22\n";
        let err2 = read_csv(schema(), text2.as_bytes()).unwrap_err();
        assert!(matches!(err2, DataError::MalformedCsv { line: 2, .. }));
    }

    #[test]
    fn lossy_parse_drops_bad_rows() {
        let text = "SEX,AGEP,INCC\nmale,22,>50K\nmale,notanage,>50K\nfemale,30,<=50K\nshort,row\n";
        let d = read_csv_lossy(schema(), text.as_bytes()).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.record(0).values(), &[0, 5, 1]);
        assert_eq!(d.record(1).values(), &[1, 13, 0]);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = "SEX,AGEP,INCC\n\nmale,22,>50K\n\n";
        let d = read_csv(schema(), text.as_bytes()).unwrap();
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn file_roundtrip() {
        let d = dataset();
        let dir = std::env::temp_dir().join("sgf-data-csv-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        write_csv_file(&d, &path).unwrap();
        let parsed = read_csv_file(schema(), &path).unwrap();
        assert_eq!(parsed.records(), d.records());
        std::fs::remove_file(&path).ok();
    }
}
