//! Attribute and schema definitions.
//!
//! The paper (Table 1) works on a pre-processed dataset where every attribute
//! is discrete: categorical attributes enumerate a label set, numerical
//! attributes enumerate an integer range.  A [`Record`](crate::record::Record)
//! therefore stores, for each attribute, an *index* into that attribute's
//! domain; the [`Schema`] owns the mapping between indices and human-readable
//! values.

use crate::error::{DataError, Result};
use serde::{Deserialize, Serialize};

/// The kind of an attribute after pre-processing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AttributeKind {
    /// A categorical attribute over an explicit label set.
    Categorical {
        /// The label of each value index.
        labels: Vec<String>,
    },
    /// A numerical (integer-valued) attribute over the inclusive range `[min, max]`.
    Numerical {
        /// Smallest representable value.
        min: i64,
        /// Largest representable value.
        max: i64,
    },
}

impl AttributeKind {
    /// Number of distinct values the attribute can take (`|x_j|` in the paper).
    pub fn cardinality(&self) -> usize {
        match self {
            AttributeKind::Categorical { labels } => labels.len(),
            AttributeKind::Numerical { min, max } => (max - min + 1).max(0) as usize,
        }
    }

    /// Whether the attribute is categorical.
    pub fn is_categorical(&self) -> bool {
        matches!(self, AttributeKind::Categorical { .. })
    }
}

/// A single attribute (column) of the dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attribute {
    name: String,
    kind: AttributeKind,
}

impl Attribute {
    /// Create a categorical attribute from a list of labels.
    pub fn categorical<S: Into<String>>(name: S, labels: &[&str]) -> Self {
        Attribute {
            name: name.into(),
            kind: AttributeKind::Categorical {
                labels: labels.iter().map(|s| s.to_string()).collect(),
            },
        }
    }

    /// Create a categorical attribute with anonymous labels `"0".."n-1"`.
    pub fn categorical_anon<S: Into<String>>(name: S, cardinality: usize) -> Self {
        let labels = (0..cardinality).map(|i| i.to_string()).collect();
        Attribute {
            name: name.into(),
            kind: AttributeKind::Categorical { labels },
        }
    }

    /// Create a numerical attribute over the inclusive integer range `[min, max]`.
    pub fn numerical<S: Into<String>>(name: S, min: i64, max: i64) -> Self {
        Attribute {
            name: name.into(),
            kind: AttributeKind::Numerical { min, max },
        }
    }

    /// Attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Attribute kind (categorical or numerical).
    pub fn kind(&self) -> &AttributeKind {
        &self.kind
    }

    /// Number of distinct values (`|x_j|`).
    pub fn cardinality(&self) -> usize {
        self.kind.cardinality()
    }

    /// Render a value index as a human-readable string.
    pub fn render(&self, value: usize) -> Result<String> {
        if value >= self.cardinality() {
            return Err(DataError::ValueOutOfDomain {
                attribute: self.name.clone(),
                value,
                cardinality: self.cardinality(),
            });
        }
        Ok(match &self.kind {
            AttributeKind::Categorical { labels } => labels[value].clone(),
            AttributeKind::Numerical { min, .. } => (min + value as i64).to_string(),
        })
    }

    /// Parse a raw string into a value index for this attribute.
    pub fn parse(&self, raw: &str) -> Result<usize> {
        match &self.kind {
            AttributeKind::Categorical { labels } => labels
                .iter()
                .position(|l| l == raw)
                .ok_or_else(|| DataError::UnparsableValue {
                    attribute: self.name.clone(),
                    raw: raw.to_string(),
                }),
            AttributeKind::Numerical { min, max } => {
                let v: i64 = raw.trim().parse().map_err(|_| DataError::UnparsableValue {
                    attribute: self.name.clone(),
                    raw: raw.to_string(),
                })?;
                if v < *min || v > *max {
                    return Err(DataError::UnparsableValue {
                        attribute: self.name.clone(),
                        raw: raw.to_string(),
                    });
                }
                Ok((v - min) as usize)
            }
        }
    }

    /// For numerical attributes, the integer value corresponding to a value index.
    pub fn numeric_value(&self, value: usize) -> Option<i64> {
        match &self.kind {
            AttributeKind::Numerical { min, .. } => Some(min + value as i64),
            AttributeKind::Categorical { .. } => None,
        }
    }
}

/// An ordered collection of attributes describing one dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    attributes: Vec<Attribute>,
}

impl Schema {
    /// Build a schema from attributes; attribute names must be unique and domains non-empty.
    pub fn new(attributes: Vec<Attribute>) -> Result<Self> {
        if attributes.is_empty() {
            return Err(DataError::EmptySchema);
        }
        for (i, a) in attributes.iter().enumerate() {
            if a.cardinality() == 0 {
                return Err(DataError::EmptySchema);
            }
            if attributes[..i].iter().any(|b| b.name() == a.name()) {
                return Err(DataError::DuplicateAttribute(a.name().to_string()));
            }
        }
        Ok(Schema { attributes })
    }

    /// Number of attributes (`m` in the paper).
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// Whether the schema has no attributes (never true for a validly constructed schema).
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// Attribute at position `i`.
    pub fn attribute(&self, i: usize) -> &Attribute {
        &self.attributes[i]
    }

    /// All attributes in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Index of the attribute with the given name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.attributes
            .iter()
            .position(|a| a.name() == name)
            .ok_or_else(|| DataError::UnknownAttribute(name.to_string()))
    }

    /// Cardinality of attribute `i`.
    pub fn cardinality(&self, i: usize) -> usize {
        self.attributes[i].cardinality()
    }

    /// Cardinalities of every attribute in order.
    pub fn cardinalities(&self) -> Vec<usize> {
        self.attributes.iter().map(|a| a.cardinality()).collect()
    }

    /// Product of all attribute cardinalities: the size of the record universe
    /// (about 5.4e11 for the ACS-13 schema of Table 2), computed saturating.
    pub fn universe_size(&self) -> u128 {
        self.attributes
            .iter()
            .fold(1u128, |acc, a| acc.saturating_mul(a.cardinality() as u128))
    }

    /// Validate that a raw value vector lies inside the schema domains.
    pub fn validate_values(&self, values: &[u16]) -> Result<()> {
        if values.len() != self.len() {
            return Err(DataError::ArityMismatch {
                expected: self.len(),
                got: values.len(),
            });
        }
        for (i, &v) in values.iter().enumerate() {
            if (v as usize) >= self.cardinality(i) {
                return Err(DataError::ValueOutOfDomain {
                    attribute: self.attribute(i).name().to_string(),
                    value: v as usize,
                    cardinality: self.cardinality(i),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_schema() -> Schema {
        Schema::new(vec![
            Attribute::categorical("SEX", &["male", "female"]),
            Attribute::numerical("AGEP", 17, 96),
            Attribute::categorical("INCC", &["<=50K", ">50K"]),
        ])
        .unwrap()
    }

    #[test]
    fn cardinalities_match_definition() {
        let s = small_schema();
        assert_eq!(s.cardinality(0), 2);
        assert_eq!(s.cardinality(1), 80);
        assert_eq!(s.cardinality(2), 2);
        assert_eq!(s.universe_size(), 2 * 80 * 2);
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = Schema::new(vec![
            Attribute::categorical("A", &["x"]),
            Attribute::categorical("A", &["y"]),
        ])
        .unwrap_err();
        assert_eq!(err, DataError::DuplicateAttribute("A".to_string()));
    }

    #[test]
    fn empty_schema_rejected() {
        assert_eq!(Schema::new(vec![]).unwrap_err(), DataError::EmptySchema);
        let err = Schema::new(vec![Attribute::categorical("A", &[])]).unwrap_err();
        assert_eq!(err, DataError::EmptySchema);
    }

    #[test]
    fn parse_and_render_roundtrip_categorical() {
        let a = Attribute::categorical("SEX", &["male", "female"]);
        assert_eq!(a.parse("female").unwrap(), 1);
        assert_eq!(a.render(1).unwrap(), "female");
        assert!(a.parse("other").is_err());
        assert!(a.render(2).is_err());
    }

    #[test]
    fn parse_and_render_roundtrip_numerical() {
        let a = Attribute::numerical("AGEP", 17, 96);
        assert_eq!(a.parse("17").unwrap(), 0);
        assert_eq!(a.parse("96").unwrap(), 79);
        assert_eq!(a.render(0).unwrap(), "17");
        assert_eq!(a.numeric_value(5), Some(22));
        assert!(a.parse("16").is_err());
        assert!(a.parse("abc").is_err());
    }

    #[test]
    fn index_of_resolves_names() {
        let s = small_schema();
        assert_eq!(s.index_of("INCC").unwrap(), 2);
        assert!(s.index_of("WKHP").is_err());
    }

    #[test]
    fn validate_values_checks_domains() {
        let s = small_schema();
        assert!(s.validate_values(&[0, 10, 1]).is_ok());
        assert!(matches!(
            s.validate_values(&[0, 10]),
            Err(DataError::ArityMismatch { .. })
        ));
        assert!(matches!(
            s.validate_values(&[2, 10, 1]),
            Err(DataError::ValueOutOfDomain { .. })
        ));
    }

    #[test]
    fn anon_categorical_labels() {
        let a = Attribute::categorical_anon("OCC", 25);
        assert_eq!(a.cardinality(), 25);
        assert_eq!(a.render(24).unwrap(), "24");
        assert_eq!(a.parse("13").unwrap(), 13);
    }
}
