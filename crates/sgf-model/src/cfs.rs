//! Correlation-based Feature Selection (CFS) for structure learning.
//!
//! For every attribute the learner greedily assembles the parent set that
//! maximizes the CFS merit score of Eq. 4,
//!
//! ```text
//! score(P_G(i)) = Σ_{j∈P} corr(x_i, x_j) / sqrt(|P| + Σ_{j≠k∈P} corr(x_j, x_k))
//! ```
//!
//! subject to two constraints: the dependency graph must stay acyclic, and the
//! complexity cost of the parent set — the number of joint parent
//! configurations, Eq. 6 — must not exceed `maxcost`.

use crate::correlation::CorrelationMatrix;
use crate::error::{ModelError, Result};
use crate::graph::DependencyGraph;
use serde::{Deserialize, Serialize};
use sgf_data::Bucketizer;

/// Configuration of the greedy CFS structure search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CfsConfig {
    /// Maximum allowed number of joint parent configurations per attribute
    /// (Eq. 6).  Parent-set costs are computed over *bucketized* domains.
    pub maxcost: u64,
    /// Hard cap on the number of parents per attribute (a practical guard on
    /// top of `maxcost`; the paper's constraint is the cost alone).
    pub max_parents: usize,
    /// Minimum merit improvement required to keep adding parents.
    pub min_improvement: f64,
}

impl Default for CfsConfig {
    fn default() -> Self {
        CfsConfig {
            maxcost: 300,
            max_parents: 4,
            min_improvement: 1e-6,
        }
    }
}

impl CfsConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.maxcost == 0 {
            return Err(ModelError::InvalidParameter(
                "maxcost must be at least 1".into(),
            ));
        }
        if self.max_parents == 0 {
            return Err(ModelError::InvalidParameter(
                "max_parents must be at least 1".into(),
            ));
        }
        if !self.min_improvement.is_finite() || self.min_improvement < 0.0 {
            return Err(ModelError::InvalidParameter(
                "min_improvement must be non-negative and finite".into(),
            ));
        }
        Ok(())
    }
}

/// The CFS merit score of a candidate parent set for `target` (Eq. 4).
/// An empty parent set scores 0.
pub fn merit_score(target: usize, parents: &[usize], corr: &CorrelationMatrix) -> f64 {
    if parents.is_empty() {
        return 0.0;
    }
    let relevance: f64 = parents.iter().map(|&j| corr.get(target, j)).sum();
    let mut redundancy = 0.0;
    for (a, &j) in parents.iter().enumerate() {
        for &k in &parents[a + 1..] {
            redundancy += 2.0 * corr.get(j, k); // Σ over ordered pairs j ≠ k
        }
    }
    let denom = (parents.len() as f64 + redundancy).max(f64::EPSILON).sqrt();
    relevance / denom
}

/// The complexity cost of a parent set: the number of joint configurations of
/// the bucketized parents (Eq. 6).
pub fn parent_set_cost(parents: &[usize], bucketizer: &Bucketizer) -> u64 {
    parents.iter().fold(1u64, |acc, &j| {
        acc.saturating_mul(bucketizer.bucket_count(j) as u64)
    })
}

/// Whether `to` is reachable from `from` along `children` edges, using
/// caller-provided scratch buffers (the allocation-free twin of
/// [`DependencyGraph`]'s internal cycle check — same boolean answer, since
/// reachability is traversal-order independent).
fn reaches_via(
    children: &[Vec<usize>],
    from: usize,
    to: usize,
    visited: &mut [bool],
    stack: &mut Vec<usize>,
) -> bool {
    if from == to {
        return true;
    }
    visited.fill(false);
    stack.clear();
    visited[from] = true;
    stack.push(from);
    while let Some(node) = stack.pop() {
        for &child in &children[node] {
            if child == to {
                return true;
            }
            if !visited[child] {
                visited[child] = true;
                stack.push(child);
            }
        }
    }
    false
}

/// Greedily select the parent set of every attribute, producing an acyclic
/// dependency graph.  Attributes are processed in a data-driven order (most
/// strongly correlated attribute first) so that highly predictable attributes
/// get first pick of parents before acyclicity constraints tighten.
///
/// The candidate loop is allocation-free (this runs on the incremental-update
/// hot path) but scores each trial set with the exact floating-point
/// operation sequence of [`merit_score`], so the selected graph is
/// bit-deterministic in the matrix regardless of which path computed it.
pub fn learn_structure(
    corr: &CorrelationMatrix,
    bucketizer: &Bucketizer,
    config: &CfsConfig,
) -> Result<DependencyGraph> {
    config.validate()?;
    let m = corr.len();
    if bucketizer.per_attribute().len() != m {
        return Err(ModelError::InvalidGraph(format!(
            "bucketizer covers {} attributes but the correlation matrix has {m}",
            bucketizer.per_attribute().len()
        )));
    }
    let mut graph = DependencyGraph::empty(m);

    // Process attributes by decreasing best available correlation.
    let mut order: Vec<usize> = (0..m).collect();
    let best_corr = |i: usize| -> f64 {
        (0..m)
            .filter(|&j| j != i)
            .map(|j| corr.get(i, j))
            .fold(0.0f64, f64::max)
    };
    // total_cmp: a NaN in the (noised) correlation matrix must not panic or
    // hand sort_by a non-total order; the index tie-break keeps the order
    // unique, so the downstream greedy parent selection is deterministic.
    order.sort_by(|&a, &b| best_corr(b).total_cmp(&best_corr(a)).then(a.cmp(&b)));

    // children[i] = attributes with i as parent; mirror of `graph` kept so
    // acyclicity checks reuse the scratch buffers below instead of
    // allocating per candidate.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); m];
    let mut visited = vec![false; m];
    let mut stack: Vec<usize> = Vec::with_capacity(m);

    for &target in &order {
        let mut parents: Vec<usize> = Vec::new();
        let mut current_score = 0.0f64;
        // Running left-folds over the accepted parents, maintained in exactly
        // the order `merit_score` / `parent_set_cost` would fold a trial set
        // `parents ++ [candidate]`: relevance prefix and cost prefix extend
        // associatively, so `prefix ⊕ candidate` is bit-identical to the
        // from-scratch fold.  (The redundancy pair sum does NOT decompose
        // that way — its candidate terms interleave with base terms — so it
        // is recomputed per candidate below, in original pair order.)
        let mut relevance_prefix = 0.0f64;
        let mut cost_prefix = 1u64;
        loop {
            if parents.len() >= config.max_parents {
                break;
            }
            // Find the admissible candidate that maximizes the merit.
            let mut best: Option<(usize, f64)> = None;
            for candidate in 0..m {
                if candidate == target || parents.contains(&candidate) {
                    continue;
                }
                // candidate -> target cycles iff target already reaches candidate.
                if reaches_via(&children, target, candidate, &mut visited, &mut stack) {
                    continue;
                }
                let cost = cost_prefix.saturating_mul(bucketizer.bucket_count(candidate) as u64);
                if cost > config.maxcost {
                    continue;
                }
                let relevance = relevance_prefix + corr.get(target, candidate);
                // merit_score's redundancy loop over `parents ++ [candidate]`,
                // with trial[a] inlined — same pairs, same addition order.
                let trial = |i: usize| {
                    if i < parents.len() {
                        parents[i]
                    } else {
                        candidate
                    }
                };
                let mut redundancy = 0.0;
                for a in 0..=parents.len() {
                    for b in (a + 1)..=parents.len() {
                        redundancy += 2.0 * corr.get(trial(a), trial(b));
                    }
                }
                let denom = ((parents.len() + 1) as f64 + redundancy)
                    .max(f64::EPSILON)
                    .sqrt();
                let score = relevance / denom;
                #[cfg(debug_assertions)]
                {
                    let mut full = parents.clone();
                    full.push(candidate);
                    debug_assert_eq!(
                        score.to_bits(),
                        merit_score(target, &full, corr).to_bits(),
                        "inlined merit diverged from merit_score for {full:?} -> {target}"
                    );
                }
                if best.is_none_or(|(_, s)| score > s) {
                    best = Some((candidate, score));
                }
            }
            match best {
                Some((candidate, score)) if score > current_score + config.min_improvement => {
                    graph.add_edge(candidate, target)?;
                    children[candidate].push(target);
                    relevance_prefix += corr.get(target, candidate);
                    cost_prefix =
                        cost_prefix.saturating_mul(bucketizer.bucket_count(candidate) as u64);
                    parents.push(candidate);
                    current_score = score;
                }
                _ => break,
            }
        }
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::correlation_matrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sgf_data::{Attribute, Dataset, Record, Schema};
    use std::sync::Arc;

    /// A, B strongly dependent; C mostly independent; D a noisy copy of A.
    fn dataset() -> Dataset {
        let schema = Arc::new(
            Schema::new(vec![
                Attribute::categorical_anon("A", 3),
                Attribute::categorical_anon("B", 3),
                Attribute::categorical_anon("C", 3),
                Attribute::categorical_anon("D", 3),
            ])
            .unwrap(),
        );
        let mut rng = StdRng::seed_from_u64(5);
        let records = (0..3000)
            .map(|_| {
                let a: u16 = rng.gen_range(0..3);
                let b = if rng.gen::<f64>() < 0.9 {
                    a
                } else {
                    rng.gen_range(0..3)
                };
                let c: u16 = rng.gen_range(0..3);
                let d = if rng.gen::<f64>() < 0.8 {
                    a
                } else {
                    rng.gen_range(0..3)
                };
                Record::new(vec![a, b, c, d])
            })
            .collect();
        Dataset::from_records_unchecked(schema, records)
    }

    #[test]
    fn merit_prefers_relevant_nonredundant_parents() {
        let d = dataset();
        let bkt = Bucketizer::identity(d.schema());
        let corr = correlation_matrix(&d, &bkt).unwrap();
        // For target B, parent {A} should beat parent {C}.
        assert!(merit_score(1, &[0], &corr) > merit_score(1, &[2], &corr));
        // Adding the redundant D to {A} should not dramatically improve the merit.
        let just_a = merit_score(1, &[0], &corr);
        let a_and_d = merit_score(1, &[0, 3], &corr);
        assert!(a_and_d < just_a + 0.2);
        assert_eq!(merit_score(1, &[], &corr), 0.0);
    }

    #[test]
    fn structure_learning_survives_nan_correlations() {
        // Regression: the ordering comparator used
        // `partial_cmp(..).expect("correlations are finite")`, which panicked
        // as soon as a degenerate (e.g. zero-entropy under heavy DP noise)
        // correlation produced a NaN.  The sort must stay total instead.
        let schema = Arc::new(
            Schema::new(vec![
                Attribute::categorical_anon("A", 3),
                Attribute::categorical_anon("B", 3),
                Attribute::categorical_anon("C", 3),
            ])
            .unwrap(),
        );
        let bkt = Bucketizer::identity(&schema);
        let nan = f64::NAN;
        let corr =
            CorrelationMatrix::from_raw(3, vec![1.0, nan, 0.3, nan, 1.0, 0.2, 0.3, 0.2, 1.0]);
        let graph = learn_structure(&corr, &bkt, &CfsConfig::default()).unwrap();
        assert_eq!(graph.len(), 3);
        // The NaN pair must not be selected as a parent edge in either
        // direction (its merit is NaN, which never beats a real score).
        assert!(!graph.parents(0).contains(&1));
        assert!(!graph.parents(1).contains(&0));
    }

    #[test]
    fn cost_is_product_of_bucket_counts() {
        let d = dataset();
        let bkt = Bucketizer::identity(d.schema());
        assert_eq!(parent_set_cost(&[0, 1], &bkt), 9);
        assert_eq!(parent_set_cost(&[], &bkt), 1);
    }

    #[test]
    fn learned_structure_is_acyclic_and_links_dependent_attributes() {
        let d = dataset();
        let bkt = Bucketizer::identity(d.schema());
        let corr = correlation_matrix(&d, &bkt).unwrap();
        let graph = learn_structure(&corr, &bkt, &CfsConfig::default()).unwrap();
        assert!(graph.topological_order().is_some());
        // A, B, D form a dependent cluster: B and D should have at least one
        // parent from the cluster (whichever direction the greedy pass chose).
        let cluster = [0usize, 1, 3];
        let linked = cluster
            .iter()
            .filter(|&&i| graph.parents(i).iter().any(|p| cluster.contains(p)))
            .count();
        assert!(
            linked >= 2,
            "expected the dependent cluster to be linked: {:?}",
            graph.parent_sets()
        );
        // C is independent noise: it should not acquire strongly-correlated parents.
        assert!(graph.parents(2).len() <= 1);
    }

    #[test]
    fn maxcost_limits_parent_sets() {
        let d = dataset();
        let bkt = Bucketizer::identity(d.schema());
        let corr = correlation_matrix(&d, &bkt).unwrap();
        let config = CfsConfig {
            maxcost: 3,
            ..CfsConfig::default()
        };
        let graph = learn_structure(&corr, &bkt, &config).unwrap();
        for i in 0..graph.len() {
            assert!(parent_set_cost(graph.parents(i), &bkt) <= 3);
        }
    }

    #[test]
    fn max_parents_cap_is_respected() {
        let d = dataset();
        let bkt = Bucketizer::identity(d.schema());
        let corr = correlation_matrix(&d, &bkt).unwrap();
        let config = CfsConfig {
            max_parents: 1,
            ..CfsConfig::default()
        };
        let graph = learn_structure(&corr, &bkt, &config).unwrap();
        assert!((0..graph.len()).all(|i| graph.parents(i).len() <= 1));
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(CfsConfig {
            maxcost: 0,
            ..CfsConfig::default()
        }
        .validate()
        .is_err());
        assert!(CfsConfig {
            max_parents: 0,
            ..CfsConfig::default()
        }
        .validate()
        .is_err());
        assert!(CfsConfig {
            min_improvement: f64::NAN,
            ..CfsConfig::default()
        }
        .validate()
        .is_err());
    }
}
