//! Error type for model construction and synthesis.

use std::fmt;

/// Errors produced while learning or using the generative model.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// The training dataset is empty.
    EmptyTrainingData,
    /// A parameter was outside its valid range.
    InvalidParameter(String),
    /// The dependency graph is inconsistent with the schema (wrong number of
    /// attributes, parent index out of range, or a cycle).
    InvalidGraph(String),
    /// A record does not conform to the model's schema.
    SchemaMismatch(String),
    /// Underlying dataset error.
    Data(sgf_data::DataError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyTrainingData => write!(f, "training dataset must not be empty"),
            ModelError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            ModelError::InvalidGraph(msg) => write!(f, "invalid dependency graph: {msg}"),
            ModelError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            ModelError::Data(err) => write!(f, "data error: {err}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Data(err) => Some(err),
            _ => None,
        }
    }
}

impl From<sgf_data::DataError> for ModelError {
    fn from(err: sgf_data::DataError) -> Self {
        ModelError::Data(err)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, ModelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(ModelError::EmptyTrainingData.to_string().contains("empty"));
        assert!(ModelError::InvalidGraph("cycle".into())
            .to_string()
            .contains("cycle"));
    }

    #[test]
    fn data_error_converts_and_chains() {
        use std::error::Error;
        let err: ModelError = sgf_data::DataError::EmptyDataset.into();
        assert!(matches!(err, ModelError::Data(_)));
        assert!(err.source().is_some());
        assert!(ModelError::EmptyTrainingData.source().is_none());
    }
}
