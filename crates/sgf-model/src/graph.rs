//! Dependency graphs between attributes.
//!
//! The generative model (Eq. 2) factorizes the joint distribution along a
//! directed acyclic graph `G` whose nodes are the attributes: an edge
//! `x_j -> x_i` means attribute `i` is predicted from (among others) attribute
//! `j`.  [`DependencyGraph`] stores the parent set `P_G(i)` of every attribute
//! and offers the acyclicity / topological-order machinery that both structure
//! learning and the synthesis re-sampling order σ rely on.

use crate::error::{ModelError, Result};
use serde::{Deserialize, Serialize};

/// A directed acyclic dependency graph over `m` attributes, stored as the
/// parent set of each attribute.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DependencyGraph {
    parents: Vec<Vec<usize>>,
}

impl DependencyGraph {
    /// The empty graph over `m` attributes (no dependencies — the marginal model).
    pub fn empty(m: usize) -> Self {
        DependencyGraph {
            parents: vec![Vec::new(); m],
        }
    }

    /// Build a graph from explicit parent sets; validates indices and acyclicity.
    pub fn from_parent_sets(parents: Vec<Vec<usize>>) -> Result<Self> {
        let g = DependencyGraph { parents };
        g.validate()?;
        Ok(g)
    }

    fn validate(&self) -> Result<()> {
        let m = self.parents.len();
        for (i, ps) in self.parents.iter().enumerate() {
            for &p in ps {
                if p >= m {
                    return Err(ModelError::InvalidGraph(format!(
                        "attribute {i} lists parent {p} but the graph has only {m} attributes"
                    )));
                }
                if p == i {
                    return Err(ModelError::InvalidGraph(format!(
                        "attribute {i} cannot be its own parent"
                    )));
                }
            }
        }
        if self.topological_order().is_none() {
            return Err(ModelError::InvalidGraph(
                "the dependency graph contains a cycle".into(),
            ));
        }
        Ok(())
    }

    /// Number of attributes (nodes).
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// Whether the graph has zero nodes.
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// The parent set `P_G(i)` of attribute `i`.
    pub fn parents(&self, i: usize) -> &[usize] {
        &self.parents[i]
    }

    /// All parent sets.
    pub fn parent_sets(&self) -> &[Vec<usize>] {
        &self.parents
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.parents.iter().map(Vec::len).sum()
    }

    /// Whether adding the edge `parent -> child` keeps the graph acyclic.
    pub fn can_add_edge(&self, parent: usize, child: usize) -> bool {
        if parent == child || parent >= self.len() || child >= self.len() {
            return false;
        }
        if self.parents[child].contains(&parent) {
            return true; // already present, nothing changes
        }
        // Adding parent -> child creates a cycle iff child is an ancestor of parent.
        !self.reaches(child, parent)
    }

    /// Add the edge `parent -> child`; returns an error if it would create a cycle.
    pub fn add_edge(&mut self, parent: usize, child: usize) -> Result<()> {
        if parent >= self.len() || child >= self.len() {
            return Err(ModelError::InvalidGraph(format!(
                "edge {parent} -> {child} references a node outside the graph"
            )));
        }
        if parent == child {
            return Err(ModelError::InvalidGraph(format!(
                "attribute {child} cannot be its own parent"
            )));
        }
        if self.parents[child].contains(&parent) {
            return Ok(());
        }
        if !self.can_add_edge(parent, child) {
            return Err(ModelError::InvalidGraph(format!(
                "edge {parent} -> {child} would create a cycle"
            )));
        }
        self.parents[child].push(parent);
        Ok(())
    }

    /// Whether `to` is reachable from `from` by following directed edges
    /// (parent -> child direction).
    fn reaches(&self, from: usize, to: usize) -> bool {
        if from == to {
            return true;
        }
        // children[i] = attributes that have i as parent.
        let mut stack = vec![from];
        let mut visited = vec![false; self.len()];
        visited[from] = true;
        while let Some(node) = stack.pop() {
            for (child, ps) in self.parents.iter().enumerate() {
                if ps.contains(&node) && !visited[child] {
                    if child == to {
                        return true;
                    }
                    visited[child] = true;
                    stack.push(child);
                }
            }
        }
        false
    }

    /// A topological order of the attributes (parents before children), or
    /// `None` if the graph has a cycle.  This is the re-sampling order σ of
    /// Section 3.2: `∀ j ∈ P_G(i): σ(j) < σ(i)`.
    pub fn topological_order(&self) -> Option<Vec<usize>> {
        let m = self.len();
        let mut in_degree: Vec<usize> = self.parents.iter().map(Vec::len).collect();
        // Process nodes with no unprocessed parents; prefer lower indices for determinism.
        let mut ready: Vec<usize> = (0..m).filter(|&i| in_degree[i] == 0).collect();
        ready.sort_unstable_by(|a, b| b.cmp(a)); // use as a stack popping smallest last
        let mut order = Vec::with_capacity(m);
        while let Some(node) = ready.pop() {
            order.push(node);
            for (child, ps) in self.parents.iter().enumerate() {
                if ps.contains(&node) {
                    in_degree[child] -= 1;
                    if in_degree[child] == 0 {
                        // Insert keeping the stack sorted descending so we pop the smallest index.
                        let pos = ready.partition_point(|&x| x > child);
                        ready.insert(pos, child);
                    }
                }
            }
        }
        if order.len() == m {
            Some(order)
        } else {
            None
        }
    }

    /// The Markov blanket factors of attribute `i`: `i` itself plus every
    /// attribute that lists `i` as a parent (its children).  Used to compute
    /// the full conditional `Pr{x_i | everything else}` for the model-accuracy
    /// experiments.
    pub fn children(&self, i: usize) -> Vec<usize> {
        (0..self.len())
            .filter(|&c| self.parents[c].contains(&i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_is_valid() {
        let g = DependencyGraph::empty(4);
        assert_eq!(g.len(), 4);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.topological_order().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn add_edge_and_parent_sets() {
        let mut g = DependencyGraph::empty(3);
        g.add_edge(0, 2).unwrap();
        g.add_edge(1, 2).unwrap();
        assert_eq!(g.parents(2), &[0, 1]);
        assert_eq!(g.edge_count(), 2);
        // Re-adding is a no-op.
        g.add_edge(0, 2).unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn cycles_are_rejected() {
        let mut g = DependencyGraph::empty(3);
        g.add_edge(0, 1).unwrap();
        g.add_edge(1, 2).unwrap();
        assert!(!g.can_add_edge(2, 0));
        assert!(g.add_edge(2, 0).is_err());
        assert!(g.add_edge(1, 1).is_err());
        assert!(g.add_edge(0, 9).is_err());
    }

    #[test]
    fn from_parent_sets_validates() {
        assert!(DependencyGraph::from_parent_sets(vec![vec![], vec![0], vec![1]]).is_ok());
        // Cycle 0 -> 1 -> 0.
        assert!(DependencyGraph::from_parent_sets(vec![vec![1], vec![0]]).is_err());
        // Out-of-range parent.
        assert!(DependencyGraph::from_parent_sets(vec![vec![5]]).is_err());
        // Self-loop.
        assert!(DependencyGraph::from_parent_sets(vec![vec![0]]).is_err());
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = DependencyGraph::from_parent_sets(vec![vec![2], vec![0, 2], vec![]]).unwrap();
        let order = g.topological_order().unwrap();
        let pos = |x: usize| order.iter().position(|&y| y == x).unwrap();
        assert!(pos(2) < pos(0));
        assert!(pos(0) < pos(1));
        assert!(pos(2) < pos(1));
    }

    #[test]
    fn children_inverts_parents() {
        let g = DependencyGraph::from_parent_sets(vec![vec![], vec![0], vec![0, 1]]).unwrap();
        assert_eq!(g.children(0), vec![1, 2]);
        assert_eq!(g.children(1), vec![2]);
        assert!(g.children(2).is_empty());
    }

    #[test]
    fn topological_order_is_deterministic() {
        let g =
            DependencyGraph::from_parent_sets(vec![vec![], vec![], vec![0, 1], vec![2]]).unwrap();
        assert_eq!(g.topological_order().unwrap(), vec![0, 1, 2, 3]);
    }
}
