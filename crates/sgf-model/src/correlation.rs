//! Pairwise attribute correlations (Section 3.3 / 3.3.1).
//!
//! Structure learning scores parent sets with the symmetrical uncertainty
//! coefficient between (discretized) attributes.  This module computes the
//! full correlation matrix either exactly or with differentially-private
//! noisy entropies (Eq. 8–10): every entropy query receives fresh Laplace
//! noise scaled by the sensitivity bound of Lemma 1, and the record count used
//! by that bound is itself randomized (Eq. 10).

use crate::counts::StructureCounts;
use crate::error::{ModelError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};
use sgf_data::{Bucketizer, Dataset};

/// Differential-privacy parameters for the correlation computation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorrelationDpConfig {
    /// Privacy parameter ε_H spent on *each* noisy entropy query (Eq. 8).
    pub epsilon_h: f64,
    /// Privacy parameter ε_{n_T} spent on the noisy record count (Eq. 10).
    pub epsilon_nt: f64,
}

impl CorrelationDpConfig {
    /// Validate the parameters.
    pub fn validate(&self) -> Result<()> {
        if !(self.epsilon_h.is_finite() && self.epsilon_h > 0.0) {
            return Err(ModelError::InvalidParameter(format!(
                "epsilon_h must be positive, got {}",
                self.epsilon_h
            )));
        }
        if !(self.epsilon_nt.is_finite() && self.epsilon_nt > 0.0) {
            return Err(ModelError::InvalidParameter(format!(
                "epsilon_nt must be positive, got {}",
                self.epsilon_nt
            )));
        }
        Ok(())
    }
}

/// Symmetric matrix of pairwise correlations between bucketized attributes,
/// each value clamped to `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrelationMatrix {
    m: usize,
    values: Vec<f64>,
    /// Number of noisy entropy queries issued (0 for the exact computation).
    entropy_queries: usize,
}

impl CorrelationMatrix {
    fn index(&self, i: usize, j: usize) -> usize {
        i * self.m + j
    }

    /// Correlation between attributes `i` and `j` (1.0 on the diagonal).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.values[self.index(i, j)]
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.m
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// Number of noisy entropy queries that were issued to build this matrix
    /// (0 when the exact entropies were used).  The structure-learning budget
    /// composes over exactly this count.
    pub fn entropy_query_count(&self) -> usize {
        self.entropy_queries
    }

    /// Number of entropy queries needed for `m` attributes: `m` single-attribute
    /// entropies plus `m(m-1)/2` pairwise joint entropies.
    pub fn queries_for(m: usize) -> usize {
        m + m * m.saturating_sub(1) / 2
    }

    /// Largest absolute entry-wise difference to `other` — the *drift
    /// statistic* of the incremental-update path: a freshly recomputed matrix
    /// is compared against the one the current structure was learned from,
    /// and full structure re-learning triggers only when the drift exceeds
    /// the configured threshold.  Matrices of different sizes drift
    /// infinitely.
    pub fn max_abs_diff(&self, other: &CorrelationMatrix) -> f64 {
        if self.m != other.m {
            return f64::INFINITY;
        }
        self.values
            .iter()
            .zip(other.values.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Crate-internal constructor for the count-based computation path
    /// (`StructureCounts::matrix`), which owns the invariant that `values` is
    /// a symmetric clamped `m x m` matrix.
    pub(crate) fn from_parts(
        m: usize,
        values: Vec<f64>,
        entropy_queries: usize,
    ) -> CorrelationMatrix {
        debug_assert_eq!(values.len(), m * m);
        CorrelationMatrix {
            m,
            values,
            entropy_queries,
        }
    }

    /// Build a matrix directly from raw row-major values — a test-only hook
    /// so consumers can inject degenerate (e.g. NaN) entries into their
    /// comparator regression tests.
    #[cfg(test)]
    pub(crate) fn from_raw(m: usize, values: Vec<f64>) -> CorrelationMatrix {
        assert_eq!(values.len(), m * m);
        CorrelationMatrix {
            m,
            values,
            entropy_queries: 0,
        }
    }
}

/// Compute the exact (non-private) correlation matrix over bucketized attributes.
pub fn correlation_matrix(dataset: &Dataset, bucketizer: &Bucketizer) -> Result<CorrelationMatrix> {
    compute_matrix(
        dataset,
        bucketizer,
        None,
        &mut rand::rngs::mock::StepRng::new(0, 1),
    )
}

/// Compute the correlation matrix with differentially-private noisy entropies.
pub fn noisy_correlation_matrix<R: Rng + ?Sized>(
    dataset: &Dataset,
    bucketizer: &Bucketizer,
    dp: &CorrelationDpConfig,
    rng: &mut R,
) -> Result<CorrelationMatrix> {
    dp.validate()?;
    compute_matrix(dataset, bucketizer, Some(dp), rng)
}

/// Both public entry points route through the summable sufficient statistics
/// of [`StructureCounts`]: the counts are fitted with one dataset pass and the
/// matrix is then a pure function of the counts.  This is what makes the
/// incremental-update path bit-identical by construction — a delta-merged
/// count table feeds the exact same computation a from-scratch fit would.
fn compute_matrix<R: Rng + ?Sized>(
    dataset: &Dataset,
    bucketizer: &Bucketizer,
    dp: Option<&CorrelationDpConfig>,
    rng: &mut R,
) -> Result<CorrelationMatrix> {
    if dataset.is_empty() {
        return Err(ModelError::EmptyTrainingData);
    }
    StructureCounts::fit(dataset, bucketizer)?.matrix(dp, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sgf_data::{Attribute, Record, Schema};
    use std::sync::Arc;

    /// Dataset where B is a copy of A and C is independent noise.
    fn correlated_dataset(n: usize) -> Dataset {
        let schema = Arc::new(
            Schema::new(vec![
                Attribute::categorical_anon("A", 4),
                Attribute::categorical_anon("B", 4),
                Attribute::categorical_anon("C", 4),
            ])
            .unwrap(),
        );
        let mut rng = StdRng::seed_from_u64(123);
        let records = (0..n)
            .map(|_| {
                let a: u16 = rng.gen_range(0..4);
                let c: u16 = rng.gen_range(0..4);
                Record::new(vec![a, a, c])
            })
            .collect();
        Dataset::from_records_unchecked(schema, records)
    }

    #[test]
    fn exact_matrix_detects_dependence() {
        let d = correlated_dataset(2000);
        let bkt = Bucketizer::identity(d.schema());
        let corr = correlation_matrix(&d, &bkt).unwrap();
        assert_eq!(corr.len(), 3);
        assert!((corr.get(0, 0) - 1.0).abs() < 1e-12);
        assert!(
            corr.get(0, 1) > 0.95,
            "copied attribute should be ~1: {}",
            corr.get(0, 1)
        );
        assert!(
            corr.get(0, 2) < 0.05,
            "independent attribute should be ~0: {}",
            corr.get(0, 2)
        );
        assert_eq!(corr.get(0, 1), corr.get(1, 0));
        assert_eq!(corr.entropy_query_count(), 0);
    }

    #[test]
    fn noisy_matrix_stays_in_range_and_counts_queries() {
        let d = correlated_dataset(2000);
        let bkt = Bucketizer::identity(d.schema());
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = CorrelationDpConfig {
            epsilon_h: 0.5,
            epsilon_nt: 0.1,
        };
        let corr = noisy_correlation_matrix(&d, &bkt, &cfg, &mut rng).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((0.0..=1.0).contains(&corr.get(i, j)));
            }
        }
        assert_eq!(
            corr.entropy_query_count(),
            CorrelationMatrix::queries_for(3)
        );
    }

    #[test]
    fn noisy_matrix_with_large_epsilon_tracks_exact() {
        let d = correlated_dataset(3000);
        let bkt = Bucketizer::identity(d.schema());
        let exact = correlation_matrix(&d, &bkt).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = CorrelationDpConfig {
            epsilon_h: 50.0,
            epsilon_nt: 50.0,
        };
        let noisy = noisy_correlation_matrix(&d, &bkt, &cfg, &mut rng).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((exact.get(i, j) - noisy.get(i, j)).abs() < 0.1);
            }
        }
    }

    #[test]
    fn invalid_dp_config_rejected() {
        let d = correlated_dataset(10);
        let bkt = Bucketizer::identity(d.schema());
        let mut rng = StdRng::seed_from_u64(4);
        let bad = CorrelationDpConfig {
            epsilon_h: 0.0,
            epsilon_nt: 1.0,
        };
        assert!(noisy_correlation_matrix(&d, &bkt, &bad, &mut rng).is_err());
    }

    #[test]
    fn empty_dataset_rejected() {
        let d = correlated_dataset(5).truncated(0);
        let bkt = Bucketizer::identity(d.schema());
        assert!(matches!(
            correlation_matrix(&d, &bkt),
            Err(ModelError::EmptyTrainingData)
        ));
    }

    #[test]
    fn query_count_formula() {
        assert_eq!(CorrelationMatrix::queries_for(11), 11 + 55);
        assert_eq!(CorrelationMatrix::queries_for(1), 1);
        assert_eq!(CorrelationMatrix::queries_for(0), 0);
    }
}
