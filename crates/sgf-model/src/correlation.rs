//! Pairwise attribute correlations (Section 3.3 / 3.3.1).
//!
//! Structure learning scores parent sets with the symmetrical uncertainty
//! coefficient between (discretized) attributes.  This module computes the
//! full correlation matrix either exactly or with differentially-private
//! noisy entropies (Eq. 8–10): every entropy query receives fresh Laplace
//! noise scaled by the sensitivity bound of Lemma 1, and the record count used
//! by that bound is itself randomized (Eq. 10).

use crate::error::{ModelError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};
use sgf_data::{Bucketizer, Dataset};
use sgf_stats::{
    entropy, entropy_sensitivity, joint_entropy, laplace_mechanism,
    symmetrical_uncertainty_from_entropies, Histogram, JointHistogram,
};

/// Differential-privacy parameters for the correlation computation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorrelationDpConfig {
    /// Privacy parameter ε_H spent on *each* noisy entropy query (Eq. 8).
    pub epsilon_h: f64,
    /// Privacy parameter ε_{n_T} spent on the noisy record count (Eq. 10).
    pub epsilon_nt: f64,
}

impl CorrelationDpConfig {
    /// Validate the parameters.
    pub fn validate(&self) -> Result<()> {
        if !(self.epsilon_h.is_finite() && self.epsilon_h > 0.0) {
            return Err(ModelError::InvalidParameter(format!(
                "epsilon_h must be positive, got {}",
                self.epsilon_h
            )));
        }
        if !(self.epsilon_nt.is_finite() && self.epsilon_nt > 0.0) {
            return Err(ModelError::InvalidParameter(format!(
                "epsilon_nt must be positive, got {}",
                self.epsilon_nt
            )));
        }
        Ok(())
    }
}

/// Symmetric matrix of pairwise correlations between bucketized attributes,
/// each value clamped to `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorrelationMatrix {
    m: usize,
    values: Vec<f64>,
    /// Number of noisy entropy queries issued (0 for the exact computation).
    entropy_queries: usize,
}

impl CorrelationMatrix {
    fn index(&self, i: usize, j: usize) -> usize {
        i * self.m + j
    }

    /// Correlation between attributes `i` and `j` (1.0 on the diagonal).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.values[self.index(i, j)]
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.m
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// Number of noisy entropy queries that were issued to build this matrix
    /// (0 when the exact entropies were used).  The structure-learning budget
    /// composes over exactly this count.
    pub fn entropy_query_count(&self) -> usize {
        self.entropy_queries
    }

    /// Number of entropy queries needed for `m` attributes: `m` single-attribute
    /// entropies plus `m(m-1)/2` pairwise joint entropies.
    pub fn queries_for(m: usize) -> usize {
        m + m * m.saturating_sub(1) / 2
    }

    /// Build a matrix directly from raw row-major values — a test-only hook
    /// so consumers can inject degenerate (e.g. NaN) entries into their
    /// comparator regression tests.
    #[cfg(test)]
    pub(crate) fn from_raw(m: usize, values: Vec<f64>) -> CorrelationMatrix {
        assert_eq!(values.len(), m * m);
        CorrelationMatrix {
            m,
            values,
            entropy_queries: 0,
        }
    }
}

/// Compute the exact (non-private) correlation matrix over bucketized attributes.
pub fn correlation_matrix(dataset: &Dataset, bucketizer: &Bucketizer) -> Result<CorrelationMatrix> {
    compute_matrix(
        dataset,
        bucketizer,
        None,
        &mut rand::rngs::mock::StepRng::new(0, 1),
    )
}

/// Compute the correlation matrix with differentially-private noisy entropies.
pub fn noisy_correlation_matrix<R: Rng + ?Sized>(
    dataset: &Dataset,
    bucketizer: &Bucketizer,
    dp: &CorrelationDpConfig,
    rng: &mut R,
) -> Result<CorrelationMatrix> {
    dp.validate()?;
    compute_matrix(dataset, bucketizer, Some(dp), rng)
}

fn compute_matrix<R: Rng + ?Sized>(
    dataset: &Dataset,
    bucketizer: &Bucketizer,
    dp: Option<&CorrelationDpConfig>,
    rng: &mut R,
) -> Result<CorrelationMatrix> {
    if dataset.is_empty() {
        return Err(ModelError::EmptyTrainingData);
    }
    let m = dataset.schema().len();
    let n = dataset.len() as u64;

    // Sensitivity of each entropy query.  Under DP the record count itself is
    // randomized before being used inside the sensitivity bound (Eq. 10).
    let mut entropy_queries = 0usize;
    let sensitivity = match dp {
        None => 0.0,
        Some(cfg) => {
            let noisy_n = laplace_mechanism(n as f64, 1.0, cfg.epsilon_nt, rng).max(2.0);
            entropy_sensitivity(noisy_n.round() as u64)
        }
    };

    let mut single = Vec::with_capacity(m);
    for attr in 0..m {
        let h = entropy(&Histogram::from_column_bucketized(
            dataset, attr, bucketizer,
        ));
        let h = match dp {
            None => h,
            Some(cfg) => {
                entropy_queries += 1;
                laplace_mechanism(h, sensitivity, cfg.epsilon_h, rng).max(0.0)
            }
        };
        single.push(h);
    }

    let mut values = vec![0.0; m * m];
    for i in 0..m {
        values[i * m + i] = 1.0;
        for j in (i + 1)..m {
            let joint = JointHistogram::from_pairs(
                bucketizer.bucket_count(i),
                bucketizer.bucket_count(j),
                dataset.records().iter().map(|r| {
                    (
                        bucketizer.bucket_of(i, r.get(i)),
                        bucketizer.bucket_of(j, r.get(j)),
                    )
                }),
            );
            let h_ij = joint_entropy(&joint);
            let h_ij = match dp {
                None => h_ij,
                Some(cfg) => {
                    entropy_queries += 1;
                    laplace_mechanism(h_ij, sensitivity, cfg.epsilon_h, rng).max(0.0)
                }
            };
            let corr = symmetrical_uncertainty_from_entropies(single[i], single[j], h_ij);
            values[i * m + j] = corr;
            values[j * m + i] = corr;
        }
    }

    Ok(CorrelationMatrix {
        m,
        values,
        entropy_queries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sgf_data::{Attribute, Record, Schema};
    use std::sync::Arc;

    /// Dataset where B is a copy of A and C is independent noise.
    fn correlated_dataset(n: usize) -> Dataset {
        let schema = Arc::new(
            Schema::new(vec![
                Attribute::categorical_anon("A", 4),
                Attribute::categorical_anon("B", 4),
                Attribute::categorical_anon("C", 4),
            ])
            .unwrap(),
        );
        let mut rng = StdRng::seed_from_u64(123);
        let records = (0..n)
            .map(|_| {
                let a: u16 = rng.gen_range(0..4);
                let c: u16 = rng.gen_range(0..4);
                Record::new(vec![a, a, c])
            })
            .collect();
        Dataset::from_records_unchecked(schema, records)
    }

    #[test]
    fn exact_matrix_detects_dependence() {
        let d = correlated_dataset(2000);
        let bkt = Bucketizer::identity(d.schema());
        let corr = correlation_matrix(&d, &bkt).unwrap();
        assert_eq!(corr.len(), 3);
        assert!((corr.get(0, 0) - 1.0).abs() < 1e-12);
        assert!(
            corr.get(0, 1) > 0.95,
            "copied attribute should be ~1: {}",
            corr.get(0, 1)
        );
        assert!(
            corr.get(0, 2) < 0.05,
            "independent attribute should be ~0: {}",
            corr.get(0, 2)
        );
        assert_eq!(corr.get(0, 1), corr.get(1, 0));
        assert_eq!(corr.entropy_query_count(), 0);
    }

    #[test]
    fn noisy_matrix_stays_in_range_and_counts_queries() {
        let d = correlated_dataset(2000);
        let bkt = Bucketizer::identity(d.schema());
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = CorrelationDpConfig {
            epsilon_h: 0.5,
            epsilon_nt: 0.1,
        };
        let corr = noisy_correlation_matrix(&d, &bkt, &cfg, &mut rng).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((0.0..=1.0).contains(&corr.get(i, j)));
            }
        }
        assert_eq!(
            corr.entropy_query_count(),
            CorrelationMatrix::queries_for(3)
        );
    }

    #[test]
    fn noisy_matrix_with_large_epsilon_tracks_exact() {
        let d = correlated_dataset(3000);
        let bkt = Bucketizer::identity(d.schema());
        let exact = correlation_matrix(&d, &bkt).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = CorrelationDpConfig {
            epsilon_h: 50.0,
            epsilon_nt: 50.0,
        };
        let noisy = noisy_correlation_matrix(&d, &bkt, &cfg, &mut rng).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((exact.get(i, j) - noisy.get(i, j)).abs() < 0.1);
            }
        }
    }

    #[test]
    fn invalid_dp_config_rejected() {
        let d = correlated_dataset(10);
        let bkt = Bucketizer::identity(d.schema());
        let mut rng = StdRng::seed_from_u64(4);
        let bad = CorrelationDpConfig {
            epsilon_h: 0.0,
            epsilon_nt: 1.0,
        };
        assert!(noisy_correlation_matrix(&d, &bkt, &bad, &mut rng).is_err());
    }

    #[test]
    fn empty_dataset_rejected() {
        let d = correlated_dataset(5).truncated(0);
        let bkt = Bucketizer::identity(d.schema());
        assert!(matches!(
            correlation_matrix(&d, &bkt),
            Err(ModelError::EmptyTrainingData)
        ));
    }

    #[test]
    fn query_count_formula() {
        assert_eq!(CorrelationMatrix::queries_for(11), 11 + 55);
        assert_eq!(CorrelationMatrix::queries_for(1), 1);
        assert_eq!(CorrelationMatrix::queries_for(0), 0);
    }
}
