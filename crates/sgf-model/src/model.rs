//! The generative-model abstraction shared by the plausible-deniability
//! mechanism, plus the Bayesian-network model built from a learned structure
//! and CPT store.
//!
//! The mechanism of Section 2 only needs two operations from a model `M`:
//! transform a seed into a candidate synthetic (`generate`) and evaluate
//! `Pr{y = M(d)}` for arbitrary records (`probability`).  Everything else —
//! how the model was learned, whether it is differentially private — is
//! intentionally opaque, which is what lets the framework decouple utility
//! from privacy.

use crate::graph::DependencyGraph;
use crate::parameters::CptStore;
use rand::RngCore;
use sgf_data::{Record, Schema};
use std::sync::Arc;

/// A probabilistic generative model `M` that turns a seed record into a
/// synthetic record (Section 2).
pub trait GenerativeModel: Send + Sync {
    /// Schema of the records the model produces.
    fn schema(&self) -> &Schema;

    /// Generate one candidate synthetic record from `seed`.
    fn generate(&self, seed: &Record, rng: &mut dyn RngCore) -> Record;

    /// The probability `Pr{y = M(seed)}` that the model transforms `seed`
    /// into exactly the record `y`.
    fn probability(&self, seed: &Record, y: &Record) -> f64;

    /// Whether the output distribution actually depends on the seed.  For
    /// seed-independent models (e.g. the marginal baseline) the privacy test
    /// trivially passes because every record is an equally plausible seed.
    fn is_seed_dependent(&self) -> bool {
        true
    }

    /// Attributes on which a seed must agree with a candidate *exactly* for
    /// the generation probability to be non-zero: `Some(attrs)` guarantees
    /// `probability(d, y) > 0` implies `d[a] == y[a]` for every `a` in
    /// `attrs`.  `None` (the default) makes no such guarantee.
    ///
    /// This is the hook indexed seed stores use to prune the
    /// plausible-deniability test: records disagreeing with the candidate on
    /// any listed attribute can be skipped without evaluating the model.  The
    /// seed-based synthesizer returns its kept attributes (the first `m - ω`
    /// of the dependency order, copied verbatim from the seed).
    fn exact_match_attributes(&self) -> Option<&[usize]> {
        None
    }

    /// Attributes whose projection fully determines the generation
    /// likelihood: `Some(attrs)` guarantees that any two seeds agreeing on
    /// every attribute in `attrs` satisfy `probability(d1, y) ==
    /// probability(d2, y)` for **every** candidate `y`.  `None` (the default)
    /// makes no such guarantee.
    ///
    /// This generalizes [`exact_match_attributes`]: where that hook lets a
    /// store *skip* provably non-plausible records, this one lets a
    /// partition-aware store *collapse* the seed dataset into
    /// likelihood-equivalence classes — one γ-partition check per class,
    /// counted with multiplicity — so the plausible-deniability test scales
    /// with the number of distinct classes rather than `|D_S|`.  The
    /// seed-based synthesizer returns its kept attributes (the generation
    /// probability factorizes over the re-sampled attributes of `y` alone
    /// once the kept projection agrees); seed-independent models (e.g. the
    /// marginal baseline) return the empty set — every seed is equivalent.
    ///
    /// [`exact_match_attributes`]: GenerativeModel::exact_match_attributes
    fn likelihood_attributes(&self) -> Option<&[usize]> {
        None
    }
}

/// References to a model are models themselves, so `&dyn GenerativeModel`
/// plugs into any generic mechanism or session without re-wrapping.
impl<M: GenerativeModel + ?Sized> GenerativeModel for &M {
    fn schema(&self) -> &Schema {
        (**self).schema()
    }
    fn generate(&self, seed: &Record, rng: &mut dyn RngCore) -> Record {
        (**self).generate(seed, rng)
    }
    fn probability(&self, seed: &Record, y: &Record) -> f64 {
        (**self).probability(seed, y)
    }
    fn is_seed_dependent(&self) -> bool {
        (**self).is_seed_dependent()
    }
    fn exact_match_attributes(&self) -> Option<&[usize]> {
        (**self).exact_match_attributes()
    }
    fn likelihood_attributes(&self) -> Option<&[usize]> {
        (**self).likelihood_attributes()
    }
}

/// Boxed models (including boxed trait objects) are models.
impl<M: GenerativeModel + ?Sized> GenerativeModel for Box<M> {
    fn schema(&self) -> &Schema {
        (**self).schema()
    }
    fn generate(&self, seed: &Record, rng: &mut dyn RngCore) -> Record {
        (**self).generate(seed, rng)
    }
    fn probability(&self, seed: &Record, y: &Record) -> f64 {
        (**self).probability(seed, y)
    }
    fn is_seed_dependent(&self) -> bool {
        (**self).is_seed_dependent()
    }
    fn exact_match_attributes(&self) -> Option<&[usize]> {
        (**self).exact_match_attributes()
    }
    fn likelihood_attributes(&self) -> Option<&[usize]> {
        (**self).likelihood_attributes()
    }
}

/// Shared models are models, so long-lived services can hand the same trained
/// model to many sessions.
impl<M: GenerativeModel + ?Sized> GenerativeModel for Arc<M> {
    fn schema(&self) -> &Schema {
        (**self).schema()
    }
    fn generate(&self, seed: &Record, rng: &mut dyn RngCore) -> Record {
        (**self).generate(seed, rng)
    }
    fn probability(&self, seed: &Record, y: &Record) -> f64 {
        (**self).probability(seed, y)
    }
    fn is_seed_dependent(&self) -> bool {
        (**self).is_seed_dependent()
    }
    fn exact_match_attributes(&self) -> Option<&[usize]> {
        (**self).exact_match_attributes()
    }
    fn likelihood_attributes(&self) -> Option<&[usize]> {
        (**self).likelihood_attributes()
    }
}

/// The Bayesian-network generative model of Section 3: a dependency graph plus
/// conditional probability tables.  This type offers whole-record operations
/// (ancestral sampling, likelihood, most-likely-value prediction) used by the
/// evaluation; the seed-based synthesizer of Section 3.2 lives in
/// [`crate::synthesis::SeedSynthesizer`].
#[derive(Debug, Clone)]
pub struct BayesNetModel {
    cpts: Arc<CptStore>,
}

impl BayesNetModel {
    /// Wrap a learned CPT store.
    pub fn new(cpts: Arc<CptStore>) -> Self {
        BayesNetModel { cpts }
    }

    /// The underlying CPT store.
    pub fn cpts(&self) -> &Arc<CptStore> {
        &self.cpts
    }

    /// The model schema.
    pub fn schema(&self) -> &Schema {
        self.cpts.schema()
    }

    /// The dependency graph.
    pub fn graph(&self) -> &DependencyGraph {
        self.cpts.graph()
    }

    /// Ancestral sampling: draw a full record from the joint distribution of
    /// Eq. 2 (no seed involved).
    pub fn sample_record<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> Record {
        let order = self
            .graph()
            .topological_order()
            .expect("a learned structure is always acyclic");
        let m = self.schema().len();
        let mut values = vec![0u16; m];
        for &attr in &order {
            values[attr] = self.cpts.sample_value(attr, |p| values[p], rng);
        }
        Record::new(values)
    }

    /// Log-likelihood (natural log) of a full record under the factorized
    /// joint distribution of Eq. 2.  Returns `f64::NEG_INFINITY` if any factor
    /// has probability zero.
    pub fn record_log_likelihood(&self, record: &Record) -> f64 {
        let mut ll = 0.0;
        for attr in 0..self.schema().len() {
            let p = self
                .cpts
                .conditional_probability(attr, record.get(attr), |j| record.get(j));
            if p <= 0.0 {
                return f64::NEG_INFINITY;
            }
            ll += p.ln();
        }
        ll
    }

    /// The most likely value of attribute `attr` given all the *other*
    /// attribute values of `record` (the probe used for Figures 1 and 2).
    ///
    /// The full conditional is proportional to the product of the factors in
    /// which `attr` appears: its own CPT entry and the CPT entries of its
    /// children (the Markov blanket of the attribute).
    pub fn predict_attribute(&self, record: &Record, attr: usize) -> u16 {
        let card = self.schema().cardinality(attr);
        let children = self.graph().children(attr);
        let mut best = (0u16, f64::NEG_INFINITY);
        for value in 0..card as u16 {
            let value_of = |j: usize| if j == attr { value } else { record.get(j) };
            let mut log_score = {
                let p = self.cpts.conditional_probability(attr, value, value_of);
                if p <= 0.0 {
                    f64::NEG_INFINITY
                } else {
                    p.ln()
                }
            };
            for &child in &children {
                if log_score == f64::NEG_INFINITY {
                    break;
                }
                let p = self
                    .cpts
                    .conditional_probability(child, record.get(child), value_of);
                if p <= 0.0 {
                    log_score = f64::NEG_INFINITY;
                } else {
                    log_score += p.ln();
                }
            }
            if log_score > best.1 {
                best = (value, log_score);
            }
        }
        best.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parameters::ParameterConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sgf_data::{Attribute, Bucketizer, Dataset, Schema as DataSchema};
    use std::sync::Arc as StdArc;

    /// A -> B (B copies A with prob 0.95), C independent coin.
    fn model(n: usize) -> BayesNetModel {
        let schema = StdArc::new(
            DataSchema::new(vec![
                Attribute::categorical_anon("A", 3),
                Attribute::categorical_anon("B", 3),
                Attribute::categorical_anon("C", 2),
            ])
            .unwrap(),
        );
        let mut rng = StdRng::seed_from_u64(1);
        let records = (0..n)
            .map(|_| {
                let a: u16 = rng.gen_range(0..3);
                let b = if rng.gen::<f64>() < 0.95 {
                    a
                } else {
                    rng.gen_range(0..3)
                };
                let c: u16 = rng.gen_range(0..2);
                Record::new(vec![a, b, c])
            })
            .collect();
        let data = Dataset::from_records_unchecked(schema, records);
        let graph = DependencyGraph::from_parent_sets(vec![vec![], vec![0], vec![]]).unwrap();
        let bkt = Bucketizer::identity(data.schema());
        let cpts = CptStore::learn(&data, &bkt, &graph, ParameterConfig::default()).unwrap();
        BayesNetModel::new(Arc::new(cpts))
    }

    #[test]
    fn ancestral_samples_respect_dependence() {
        let m = model(5000);
        let mut rng = StdRng::seed_from_u64(2);
        let mut agree = 0usize;
        let n = 2000;
        for _ in 0..n {
            let r = m.sample_record(&mut rng);
            assert!(r.get(0) < 3 && r.get(1) < 3 && r.get(2) < 2);
            if r.get(0) == r.get(1) {
                agree += 1;
            }
        }
        assert!(
            agree as f64 / n as f64 > 0.8,
            "A and B should usually agree"
        );
    }

    #[test]
    fn log_likelihood_prefers_consistent_records() {
        let m = model(5000);
        let consistent = Record::new(vec![1, 1, 0]);
        let inconsistent = Record::new(vec![1, 2, 0]);
        assert!(m.record_log_likelihood(&consistent) > m.record_log_likelihood(&inconsistent));
    }

    #[test]
    fn predict_attribute_uses_markov_blanket() {
        let m = model(5000);
        // Predicting B from A=2 should give 2 (its parent drives it)...
        assert_eq!(m.predict_attribute(&Record::new(vec![2, 0, 0]), 1), 2);
        // ...and predicting A from B=1 should give 1 (information flows back
        // through the child factor).
        assert_eq!(m.predict_attribute(&Record::new(vec![0, 1, 0]), 0), 1);
    }

    #[test]
    fn schema_and_graph_accessors() {
        let m = model(100);
        assert_eq!(m.schema().len(), 3);
        assert_eq!(m.graph().parents(1), &[0]);
        assert_eq!(m.cpts().training_records(), 100);
    }
}
