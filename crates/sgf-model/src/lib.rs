//! # sgf-model
//!
//! The privacy-preserving generative model of Section 3 of *Plausible
//! Deniability for Privacy-Preserving Data Synthesis* (VLDB 2017):
//!
//! * [`graph`] — dependency DAGs between attributes (Eq. 2);
//! * [`correlation`] — symmetrical-uncertainty correlation matrices, exact or
//!   with DP noisy entropies (Section 3.3.1);
//! * [`cfs`] — Correlation-based Feature Selection with the merit score of
//!   Eq. 4 under the acyclicity and `maxcost` (Eq. 6) constraints;
//! * [`structure`] — end-to-end (privacy-preserving) structure learning;
//! * [`parameters`] — Dirichlet-multinomial CPTs with DP noisy counts (Eq. 14),
//!   materialized lazily with per-configuration deterministic noise;
//! * [`model`] — the [`GenerativeModel`] abstraction plus the Bayesian-network
//!   model (ancestral sampling, likelihood, most-likely-value prediction);
//! * [`synthesis`] — the seed-based synthesizer with re-sampling order σ and
//!   ω re-sampled attributes (Section 3.2);
//! * [`marginal`] — the independent-marginals baseline.

pub mod cfs;
pub mod correlation;
pub mod counts;
pub mod error;
pub mod graph;
pub mod marginal;
pub mod model;
pub mod parameters;
pub mod structure;
pub mod synthesis;

pub use cfs::{learn_structure, merit_score, parent_set_cost, CfsConfig};
pub use correlation::{
    correlation_matrix, noisy_correlation_matrix, CorrelationDpConfig, CorrelationMatrix,
};
pub use counts::StructureCounts;
pub use error::{ModelError, Result};
pub use graph::DependencyGraph;
pub use marginal::{MarginalConfig, MarginalCounts, MarginalModel};
pub use model::{BayesNetModel, GenerativeModel};
pub use parameters::{CptCounts, CptStore, ParameterConfig};
pub use structure::{
    learn_dependency_structure, learn_structure_from_counts, structure_from_correlations,
    LearnedStructure, StructureConfig,
};
pub use synthesis::{OmegaSpec, SeedSynthesizer};
