//! Seed-based synthesis (Section 3.2).
//!
//! A synthetic record is produced from a real *seed* record by keeping the
//! first `m - ω` attributes (in the dependency order σ) and re-sampling the
//! remaining `ω` attributes from their conditional distributions, each new
//! value conditioning on the mix of kept (seed) values and already re-sampled
//! values (Eq. 3).  The same factorization gives the exact generation
//! probability `Pr{y = M(d)}` that the privacy test needs.

use crate::error::{ModelError, Result};
use crate::model::GenerativeModel;
use crate::parameters::CptStore;
use rand::Rng;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use sgf_data::{Record, Schema};
use std::sync::Arc;

/// How the number of re-sampled attributes ω is chosen for each candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OmegaSpec {
    /// Always re-sample exactly this many attributes.
    Fixed(usize),
    /// Draw ω uniformly from the inclusive range for every candidate
    /// (the paper's `ω ∈R [lo - hi]` configurations).
    UniformRange {
        /// Smallest ω (inclusive).
        lo: usize,
        /// Largest ω (inclusive).
        hi: usize,
    },
}

impl OmegaSpec {
    /// Validate against the number of attributes `m`.
    pub fn validate(&self, m: usize) -> Result<()> {
        let (lo, hi) = match *self {
            OmegaSpec::Fixed(w) => (w, w),
            OmegaSpec::UniformRange { lo, hi } => (lo, hi),
        };
        if lo == 0 || hi < lo || hi > m {
            return Err(ModelError::InvalidParameter(format!(
                "omega specification {self:?} is invalid for {m} attributes"
            )));
        }
        Ok(())
    }

    /// Sample a concrete ω.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        match *self {
            OmegaSpec::Fixed(w) => w,
            OmegaSpec::UniformRange { lo, hi } => rng.gen_range(lo..=hi),
        }
    }

    /// A short human-readable label matching the paper's notation
    /// (`ω = 10`, `ω ∈R [5 - 11]`).
    pub fn label(&self) -> String {
        match *self {
            OmegaSpec::Fixed(w) => format!("omega = {w}"),
            OmegaSpec::UniformRange { lo, hi } => format!("omega in R[{lo}-{hi}]"),
        }
    }
}

/// The seed-based synthesizer of Section 3.2 with a *fixed* ω.
///
/// The plausible-deniability mechanism needs `Pr{y = M(d)}` to be well defined
/// for the exact model that produced `y`; when ω is itself randomized
/// (`OmegaSpec::UniformRange`), the pipeline draws ω per candidate and builds
/// the corresponding fixed-ω synthesizer for that candidate's privacy test.
#[derive(Debug, Clone)]
pub struct SeedSynthesizer {
    cpts: Arc<CptStore>,
    /// Re-sampling order σ (topological order of the dependency graph).
    sigma: Vec<usize>,
    /// Number of re-sampled attributes.
    omega: usize,
}

impl SeedSynthesizer {
    /// Create a synthesizer that re-samples the last `omega` attributes of the
    /// dependency order.
    pub fn new(cpts: Arc<CptStore>, omega: usize) -> Result<Self> {
        let m = cpts.schema().len();
        OmegaSpec::Fixed(omega).validate(m)?;
        let sigma = cpts
            .graph()
            .topological_order()
            .ok_or_else(|| ModelError::InvalidGraph("dependency graph contains a cycle".into()))?;
        Ok(SeedSynthesizer { cpts, sigma, omega })
    }

    /// The number of re-sampled attributes ω.
    pub fn omega(&self) -> usize {
        self.omega
    }

    /// The re-sampling order σ.
    pub fn sigma(&self) -> &[usize] {
        &self.sigma
    }

    /// The underlying CPT store.
    pub fn cpts(&self) -> &Arc<CptStore> {
        &self.cpts
    }

    /// Attributes that are copied from the seed (the first `m - ω` in σ order).
    pub fn kept_attributes(&self) -> &[usize] {
        &self.sigma[..self.sigma.len() - self.omega]
    }

    /// Attributes that are re-sampled (the last `ω` in σ order).
    pub fn resampled_attributes(&self) -> &[usize] {
        &self.sigma[self.sigma.len() - self.omega..]
    }
}

impl GenerativeModel for SeedSynthesizer {
    fn schema(&self) -> &Schema {
        self.cpts.schema()
    }

    fn generate(&self, seed: &Record, rng: &mut dyn RngCore) -> Record {
        let mut y = seed.clone();
        for &attr in self.resampled_attributes() {
            let value = self.cpts.sample_value(attr, |j| y.get(j), rng);
            y.set(attr, value);
        }
        y
    }

    fn probability(&self, seed: &Record, y: &Record) -> f64 {
        // The kept attributes are copied verbatim, so any mismatch there means
        // this seed could not have produced y at all.
        for &attr in self.kept_attributes() {
            if seed.get(attr) != y.get(attr) {
                return 0.0;
            }
        }
        // Each re-sampled attribute contributes its conditional probability
        // given the (kept or already re-sampled) values — all of which equal
        // the candidate's values because kept attributes agree with the seed.
        let mut probability = 1.0;
        for &attr in self.resampled_attributes() {
            probability *= self
                .cpts
                .conditional_probability(attr, y.get(attr), |j| y.get(j));
            if probability == 0.0 {
                return 0.0;
            }
        }
        probability
    }

    fn exact_match_attributes(&self) -> Option<&[usize]> {
        // A candidate is reachable only from seeds agreeing with it on every
        // kept attribute (they are copied verbatim), which is what lets an
        // indexed seed store prune the plausible-deniability test.
        Some(self.kept_attributes())
    }

    fn likelihood_attributes(&self) -> Option<&[usize]> {
        // `probability` reads the seed only on the kept attributes: when they
        // all agree with `y` the result is a product of conditionals of `y`
        // alone, and when any disagrees it is zero.  Two seeds with the same
        // kept projection therefore have identical `Pr{y = M(d)}` for every
        // candidate, which lets a partition-aware seed store collapse them
        // into one likelihood-equivalence class.
        Some(self.kept_attributes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DependencyGraph;
    use crate::parameters::ParameterConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sgf_data::{Attribute, Bucketizer, Dataset, Schema as DataSchema};
    use std::sync::Arc as StdArc;

    fn cpts(n: usize) -> Arc<CptStore> {
        let schema = StdArc::new(
            DataSchema::new(vec![
                Attribute::categorical_anon("A", 3),
                Attribute::categorical_anon("B", 3),
                Attribute::categorical_anon("C", 4),
            ])
            .unwrap(),
        );
        let mut rng = StdRng::seed_from_u64(31);
        let records = (0..n)
            .map(|_| {
                let a: u16 = rng.gen_range(0..3);
                let b = if rng.gen::<f64>() < 0.9 {
                    a
                } else {
                    rng.gen_range(0..3)
                };
                let c: u16 = rng.gen_range(0..4);
                Record::new(vec![a, b, c])
            })
            .collect();
        let data = Dataset::from_records_unchecked(schema, records);
        let graph = DependencyGraph::from_parent_sets(vec![vec![], vec![0], vec![]]).unwrap();
        let bkt = Bucketizer::identity(data.schema());
        Arc::new(CptStore::learn(&data, &bkt, &graph, ParameterConfig::default()).unwrap())
    }

    #[test]
    fn omega_spec_validation_and_sampling() {
        assert!(OmegaSpec::Fixed(3).validate(5).is_ok());
        assert!(OmegaSpec::Fixed(0).validate(5).is_err());
        assert!(OmegaSpec::Fixed(6).validate(5).is_err());
        assert!(OmegaSpec::UniformRange { lo: 2, hi: 4 }.validate(5).is_ok());
        assert!(OmegaSpec::UniformRange { lo: 4, hi: 2 }
            .validate(5)
            .is_err());
        let mut rng = StdRng::seed_from_u64(1);
        let spec = OmegaSpec::UniformRange { lo: 2, hi: 4 };
        for _ in 0..100 {
            let w = spec.sample(&mut rng);
            assert!((2..=4).contains(&w));
        }
        assert_eq!(OmegaSpec::Fixed(9).label(), "omega = 9");
        assert_eq!(
            OmegaSpec::UniformRange { lo: 5, hi: 11 }.label(),
            "omega in R[5-11]"
        );
    }

    #[test]
    fn kept_attributes_are_copied_from_seed() {
        let synth = SeedSynthesizer::new(cpts(3000), 1).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let seed = Record::new(vec![2, 2, 3]);
        for _ in 0..50 {
            let y = synth.generate(&seed, &mut rng);
            for &attr in synth.kept_attributes() {
                assert_eq!(y.get(attr), seed.get(attr), "kept attribute {attr} changed");
            }
        }
    }

    #[test]
    fn probability_is_zero_when_kept_attributes_differ() {
        let synth = SeedSynthesizer::new(cpts(3000), 1).unwrap();
        let seed = Record::new(vec![2, 2, 3]);
        // Find a kept attribute and flip it in the candidate.
        let kept = synth.kept_attributes()[0];
        let mut y = seed.clone();
        y.set(kept, (seed.get(kept) + 1) % 3);
        assert_eq!(synth.probability(&seed, &y), 0.0);
    }

    #[test]
    fn probability_matches_empirical_generation_frequency() {
        let store = cpts(5000);
        let synth = SeedSynthesizer::new(store, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let seed = Record::new(vec![1, 0, 0]);
        // Empirical frequency of generating one specific candidate.
        let mut target_count = 0usize;
        let n = 20_000;
        let candidate = {
            // Use one generated record as the target so it has non-trivial probability.
            synth.generate(&seed, &mut rng)
        };
        for _ in 0..n {
            if synth.generate(&seed, &mut rng) == candidate {
                target_count += 1;
            }
        }
        let empirical = target_count as f64 / n as f64;
        let analytic = synth.probability(&seed, &candidate);
        assert!(
            (empirical - analytic).abs() < 0.03,
            "empirical {empirical} vs analytic {analytic}"
        );
    }

    #[test]
    fn full_resampling_ignores_seed_values() {
        let store = cpts(3000);
        let synth = SeedSynthesizer::new(store, 3).unwrap();
        assert!(synth.kept_attributes().is_empty());
        let seed_a = Record::new(vec![0, 0, 0]);
        let seed_b = Record::new(vec![2, 2, 3]);
        let y = Record::new(vec![1, 1, 2]);
        // With every attribute re-sampled, the generation probability may still
        // depend on the seed only through nothing at all — it must be equal for
        // both seeds.
        assert!((synth.probability(&seed_a, &y) - synth.probability(&seed_b, &y)).abs() < 1e-15);
    }

    #[test]
    fn exact_match_attributes_are_the_kept_attributes() {
        let synth = SeedSynthesizer::new(cpts(500), 1).unwrap();
        assert_eq!(
            synth.exact_match_attributes().unwrap(),
            synth.kept_attributes()
        );
        // Full re-sampling keeps nothing: the guarantee is the empty set.
        let full = SeedSynthesizer::new(cpts(500), 3).unwrap();
        assert_eq!(full.exact_match_attributes().unwrap(), &[] as &[usize]);
    }

    #[test]
    fn invalid_omega_rejected() {
        assert!(SeedSynthesizer::new(cpts(100), 0).is_err());
        assert!(SeedSynthesizer::new(cpts(100), 4).is_err());
    }

    #[test]
    fn probabilities_sum_to_one_over_candidates() {
        // With omega = 1 the candidate space given a seed is the domain of the
        // single re-sampled attribute; probabilities must sum to 1.
        let store = cpts(3000);
        let synth = SeedSynthesizer::new(store, 1).unwrap();
        let resampled = synth.resampled_attributes()[0];
        let seed = Record::new(vec![1, 1, 2]);
        let card = synth.schema().cardinality(resampled);
        let mut total = 0.0;
        for v in 0..card as u16 {
            let mut y = seed.clone();
            y.set(resampled, v);
            total += synth.probability(&seed, &y);
        }
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }
}
