//! Summable sufficient statistics for structure learning.
//!
//! The correlation matrix of Section 3.3 is a pure function of the bucketized
//! per-attribute histograms, the pairwise joint histograms, and the record
//! count — all of which are Z-set summable: inserting or deleting one record
//! touches exactly `m` single-attribute bins and `m(m-1)/2` joint cells.
//! [`StructureCounts`] maintains those counts so an incremental update costs
//! `O(|Δ| · m²)` instead of a full pass over `D_T`, and the matrix derived
//! from merged counts is **bit-identical** to the one a from-scratch
//! computation would produce: both paths evaluate the same counts through
//! entropy routines with identical floating-point operation sequences, in the
//! same order (including the Laplace draws of the DP variant, whose draw count
//! depends only on `m`) — the counts path borrowing its bins allocation-free
//! via [`sgf_stats::entropy_from_counts`].

use crate::correlation::{CorrelationDpConfig, CorrelationMatrix};
use crate::error::{ModelError, Result};
use rand::Rng;
use sgf_data::{Bucketizer, Dataset, Record};
use sgf_stats::{
    entropy_from_counts, entropy_sensitivity, laplace_mechanism,
    symmetrical_uncertainty_from_entropies,
};

/// Bucketized single- and pairwise-count statistics of a structure-learning
/// subset, maintainable under ±record deltas.
#[derive(Debug, Clone, PartialEq)]
pub struct StructureCounts {
    m: usize,
    records: u64,
    /// `bucket_counts[attr][bucket]` over `bucketizer.bucket_count(attr)` bins.
    bucket_counts: Vec<Vec<u64>>,
    /// Row-major `bucket_count(i) x bucket_count(j)` cells for each pair
    /// `i < j`, in [`pair_index`](Self::pair_index) order.
    joint_counts: Vec<Vec<u64>>,
}

impl StructureCounts {
    /// Index of the pair `i < j` in the flattened upper-triangle order used
    /// by `joint_counts`.
    fn pair_index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.m);
        i * self.m - i * (i + 1) / 2 + (j - i - 1)
    }

    /// All-zero counts for `m` attributes under `bucketizer`.
    pub fn empty(bucketizer: &Bucketizer) -> Self {
        let m = bucketizer.per_attribute().len();
        let bucket_counts = (0..m)
            .map(|attr| vec![0u64; bucketizer.bucket_count(attr)])
            .collect();
        let mut joint_counts = Vec::with_capacity(m * m.saturating_sub(1) / 2);
        for i in 0..m {
            for j in (i + 1)..m {
                joint_counts.push(vec![
                    0u64;
                    bucketizer.bucket_count(i) * bucketizer.bucket_count(j)
                ]);
            }
        }
        StructureCounts {
            m,
            records: 0,
            bucket_counts,
            joint_counts,
        }
    }

    /// Fit the counts with one pass over `dataset`.
    pub fn fit(dataset: &Dataset, bucketizer: &Bucketizer) -> Result<StructureCounts> {
        let mut counts = StructureCounts::empty(bucketizer);
        if dataset.schema().len() != counts.m {
            return Err(ModelError::InvalidParameter(format!(
                "bucketizer covers {} attributes but the dataset schema has {}",
                counts.m,
                dataset.schema().len()
            )));
        }
        for record in dataset.records() {
            counts.add_record(record, bucketizer);
        }
        Ok(counts)
    }

    /// Number of records currently counted.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Number of attributes.
    pub fn attribute_count(&self) -> usize {
        self.m
    }

    fn add_record(&mut self, record: &Record, bucketizer: &Bucketizer) {
        let buckets: Vec<usize> = (0..self.m)
            .map(|attr| bucketizer.bucket_of(attr, record.get(attr)) as usize)
            .collect();
        for (attr, &b) in buckets.iter().enumerate() {
            self.bucket_counts[attr][b] += 1;
        }
        for i in 0..self.m {
            for j in (i + 1)..self.m {
                let cols = self.bucket_counts[j].len();
                let pair = self.pair_index(i, j);
                self.joint_counts[pair][buckets[i] * cols + buckets[j]] += 1;
            }
        }
        self.records += 1;
    }

    fn remove_record(&mut self, record: &Record, bucketizer: &Bucketizer) -> Result<()> {
        let underflow = || {
            ModelError::InvalidParameter(format!(
                "delta removes a record the structure counts never saw: {:?}",
                record.values()
            ))
        };
        let buckets: Vec<usize> = (0..self.m)
            .map(|attr| bucketizer.bucket_of(attr, record.get(attr)) as usize)
            .collect();
        self.records = self.records.checked_sub(1).ok_or_else(underflow)?;
        for (attr, &b) in buckets.iter().enumerate() {
            let cell = &mut self.bucket_counts[attr][b];
            *cell = cell.checked_sub(1).ok_or_else(underflow)?;
        }
        for i in 0..self.m {
            for j in (i + 1)..self.m {
                let cols = self.bucket_counts[j].len();
                let pair = self.pair_index(i, j);
                let cell = &mut self.joint_counts[pair][buckets[i] * cols + buckets[j]];
                *cell = cell.checked_sub(1).ok_or_else(underflow)?;
            }
        }
        Ok(())
    }

    /// Merge a record delta: subtract `deletes`, then add `inserts`.  Cost is
    /// `O(|Δ| · m²)`; the result equals [`Self::fit`] on the post-delta
    /// dataset exactly (count addition is commutative).
    pub fn apply_delta(
        &mut self,
        deletes: &[Record],
        inserts: &[Record],
        bucketizer: &Bucketizer,
    ) -> Result<()> {
        for record in deletes {
            self.remove_record(record, bucketizer)?;
        }
        for record in inserts {
            self.add_record(record, bucketizer);
        }
        Ok(())
    }

    /// Compute the correlation matrix from the counts — exactly the Eq. 5 /
    /// Eq. 8–10 computation of `correlation_matrix` / `noisy_correlation_matrix`,
    /// issuing the identical sequence of entropy evaluations and (under DP)
    /// Laplace draws, so counts fitted from a dataset yield a bit-identical
    /// matrix to the dataset-based path.
    pub fn matrix<R: Rng + ?Sized>(
        &self,
        dp: Option<&CorrelationDpConfig>,
        rng: &mut R,
    ) -> Result<CorrelationMatrix> {
        if self.records == 0 {
            return Err(ModelError::EmptyTrainingData);
        }
        let m = self.m;

        let mut entropy_queries = 0usize;
        let sensitivity = match dp {
            None => 0.0,
            Some(cfg) => {
                let noisy_n =
                    laplace_mechanism(self.records as f64, 1.0, cfg.epsilon_nt, rng).max(2.0);
                entropy_sensitivity(noisy_n.round() as u64)
            }
        };

        let mut single = Vec::with_capacity(m);
        for attr in 0..m {
            let h = entropy_from_counts(&self.bucket_counts[attr]);
            let h = match dp {
                None => h,
                Some(cfg) => {
                    entropy_queries += 1;
                    laplace_mechanism(h, sensitivity, cfg.epsilon_h, rng).max(0.0)
                }
            };
            single.push(h);
        }

        let mut values = vec![0.0; m * m];
        for i in 0..m {
            values[i * m + i] = 1.0;
            for j in (i + 1)..m {
                let h_ij = entropy_from_counts(&self.joint_counts[self.pair_index(i, j)]);
                let h_ij = match dp {
                    None => h_ij,
                    Some(cfg) => {
                        entropy_queries += 1;
                        laplace_mechanism(h_ij, sensitivity, cfg.epsilon_h, rng).max(0.0)
                    }
                };
                let corr = symmetrical_uncertainty_from_entropies(single[i], single[j], h_ij);
                values[i * m + j] = corr;
                values[j * m + i] = corr;
            }
        }

        Ok(CorrelationMatrix::from_parts(m, values, entropy_queries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::{correlation_matrix, noisy_correlation_matrix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sgf_data::acs::{acs_bucketizer, acs_schema, generate_acs};

    #[test]
    fn fitted_counts_reproduce_the_dataset_matrix_bit_for_bit() {
        let data = generate_acs(1200, 5);
        let bkt = acs_bucketizer(&acs_schema());
        let counts = StructureCounts::fit(&data, &bkt).unwrap();
        assert_eq!(counts.records(), 1200);
        let direct = correlation_matrix(&data, &bkt).unwrap();
        let from_counts = counts
            .matrix(None, &mut rand::rngs::mock::StepRng::new(0, 1))
            .unwrap();
        assert_eq!(direct, from_counts);
    }

    #[test]
    fn noisy_matrix_from_counts_matches_dataset_path_given_the_same_rng() {
        let data = generate_acs(800, 9);
        let bkt = acs_bucketizer(&acs_schema());
        let cfg = CorrelationDpConfig {
            epsilon_h: 0.5,
            epsilon_nt: 0.1,
        };
        let mut rng_a = StdRng::seed_from_u64(42);
        let direct = noisy_correlation_matrix(&data, &bkt, &cfg, &mut rng_a).unwrap();
        let counts = StructureCounts::fit(&data, &bkt).unwrap();
        let mut rng_b = StdRng::seed_from_u64(42);
        let from_counts = counts.matrix(Some(&cfg), &mut rng_b).unwrap();
        assert_eq!(direct, from_counts);
    }

    #[test]
    fn delta_merge_equals_refit_on_the_final_dataset() {
        let data = generate_acs(600, 11);
        let bkt = acs_bucketizer(&acs_schema());
        let mut counts = StructureCounts::fit(&data, &bkt).unwrap();

        let extra = generate_acs(10, 77);
        let deletes: Vec<Record> = data.records()[..7].to_vec();
        let inserts: Vec<Record> = extra.records().to_vec();
        counts.apply_delta(&deletes, &inserts, &bkt).unwrap();

        let mut final_records: Vec<Record> = data.records()[7..].to_vec();
        final_records.extend(inserts.iter().cloned());
        let final_dataset = Dataset::from_records_unchecked(data.schema_arc(), final_records);
        let refit = StructureCounts::fit(&final_dataset, &bkt).unwrap();
        assert_eq!(counts, refit);
    }

    #[test]
    fn removing_an_unseen_record_fails() {
        let data = generate_acs(50, 1);
        let bkt = acs_bucketizer(&acs_schema());
        let empty = Dataset::from_records_unchecked(data.schema_arc(), Vec::new());
        let mut counts = StructureCounts::fit(&empty, &bkt).unwrap();
        assert!(counts.apply_delta(&data.records()[..1], &[], &bkt).is_err());
    }

    #[test]
    fn empty_counts_reject_matrix_computation() {
        let bkt = acs_bucketizer(&acs_schema());
        let counts = StructureCounts::empty(&bkt);
        assert!(matches!(
            counts.matrix(None, &mut rand::rngs::mock::StepRng::new(0, 1)),
            Err(ModelError::EmptyTrainingData)
        ));
    }
}
