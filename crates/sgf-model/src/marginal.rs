//! The marginal-synthesis baseline (Section 3.2, "Baseline: Marginal Synthesis").
//!
//! The baseline assumes full independence between attributes: each attribute
//! value of a synthetic record is sampled from that attribute's (optionally
//! differentially-private) marginal distribution, regardless of the seed.
//! This is the `marginals` column/series of every table and figure in the
//! evaluation.

use crate::error::{ModelError, Result};
use crate::model::GenerativeModel;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use sgf_data::{Dataset, Record, Schema};
use sgf_stats::{
    advanced_composition, configuration_rng, dirichlet_posterior_mean, sample_categorical,
    DpBudget, Histogram, Laplace,
};
use std::sync::Arc;

/// Configuration for learning the marginal model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MarginalConfig {
    /// Total Dirichlet prior mass per attribute, spread uniformly across its
    /// values (each cell receives `alpha / |x_i|`).
    pub alpha: f64,
    /// Per-count privacy parameter; `None` learns exact marginals.
    pub epsilon_p: Option<f64>,
    /// Global seed for the deterministic per-attribute noise.
    pub global_seed: u64,
    /// Slack δ for advanced composition across attributes.
    pub delta_slack: f64,
}

impl Default for MarginalConfig {
    fn default() -> Self {
        MarginalConfig {
            alpha: 1.0,
            epsilon_p: None,
            global_seed: 0,
            delta_slack: 1e-9,
        }
    }
}

/// Summable per-attribute value counts — the sufficient statistics of the
/// marginal model.  A record delta touches exactly `m` bins, so incremental
/// maintenance is `O(|Δ| · m)`; re-deriving the model from merged counts is
/// bit-identical to a from-scratch [`MarginalModel::learn`] because the noise
/// comes from per-attribute seeded RNGs, not from a shared stream.
#[derive(Debug, Clone, PartialEq)]
pub struct MarginalCounts {
    schema: Arc<Schema>,
    /// `counts[attr][value]` over the attribute's full (unbucketized) domain.
    counts: Vec<Vec<u64>>,
    records: usize,
}

impl MarginalCounts {
    /// Fit the counts with one pass over `dataset`.
    pub fn fit(dataset: &Dataset) -> Self {
        let schema = dataset.schema_arc();
        let counts = (0..schema.len())
            .map(|attr| Histogram::from_column(dataset, attr).counts().to_vec())
            .collect();
        MarginalCounts {
            schema,
            counts,
            records: dataset.len(),
        }
    }

    /// Number of records currently counted.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Merge a record delta: subtract `deletes`, then add `inserts`.  The
    /// result equals [`Self::fit`] on the post-delta dataset exactly.
    pub fn apply_delta(&mut self, deletes: &[Record], inserts: &[Record]) -> Result<()> {
        for record in deletes {
            let underflow = || {
                ModelError::InvalidParameter(format!(
                    "delta removes a record the marginal counts never saw: {:?}",
                    record.values()
                ))
            };
            self.records = self.records.checked_sub(1).ok_or_else(underflow)?;
            for (attr, bins) in self.counts.iter_mut().enumerate() {
                let cell = &mut bins[record.get(attr) as usize];
                *cell = cell.checked_sub(1).ok_or_else(underflow)?;
            }
        }
        for record in inserts {
            self.records += 1;
            for (attr, bins) in self.counts.iter_mut().enumerate() {
                bins[record.get(attr) as usize] += 1;
            }
        }
        Ok(())
    }
}

/// A seed-independent synthesizer sampling every attribute from its marginal.
#[derive(Debug, Clone, PartialEq)]
pub struct MarginalModel {
    schema: Arc<Schema>,
    marginals: Vec<Vec<f64>>,
    budget: DpBudget,
}

impl MarginalModel {
    /// Learn (possibly noisy) marginals from a dataset.
    pub fn learn(dataset: &Dataset, config: MarginalConfig) -> Result<Self> {
        Self::from_counts(&MarginalCounts::fit(dataset), config)
    }

    /// Derive the model from (possibly delta-merged) sufficient statistics.
    /// Bit-identical to [`Self::learn`] on a dataset with the same counts.
    pub fn from_counts(source: &MarginalCounts, config: MarginalConfig) -> Result<Self> {
        if source.records == 0 {
            return Err(ModelError::EmptyTrainingData);
        }
        if !(config.alpha.is_finite() && config.alpha > 0.0) {
            return Err(ModelError::InvalidParameter(format!(
                "Dirichlet alpha must be positive, got {}",
                config.alpha
            )));
        }
        if let Some(eps) = config.epsilon_p {
            if !(eps.is_finite() && eps > 0.0) {
                return Err(ModelError::InvalidParameter(format!(
                    "epsilon_p must be positive, got {eps}"
                )));
            }
        }
        let schema = Arc::clone(&source.schema);
        let mut marginals = Vec::with_capacity(schema.len());
        for (attr, bins) in source.counts.iter().enumerate() {
            let mut counts: Vec<f64> = bins.iter().map(|&c| c as f64).collect();
            if let Some(eps) = config.epsilon_p {
                let mut rng = configuration_rng(config.global_seed, "sgf-marginals", attr, 0);
                let lap = Laplace::for_mechanism(1.0, eps);
                for c in counts.iter_mut() {
                    *c = (*c + lap.sample(&mut rng)).max(0.0);
                }
            }
            let alphas = vec![config.alpha / counts.len() as f64; counts.len()];
            marginals.push(dirichlet_posterior_mean(&alphas, &counts));
        }
        let budget = match config.epsilon_p {
            None => DpBudget::pure(0.0),
            Some(eps) => advanced_composition(eps, 0.0, schema.len() as u64, config.delta_slack),
        };
        Ok(MarginalModel {
            schema,
            marginals,
            budget,
        })
    }

    /// The marginal distribution of attribute `attr`.
    pub fn marginal(&self, attr: usize) -> &[f64] {
        &self.marginals[attr]
    }

    /// Differential-privacy budget spent learning the marginals.
    pub fn budget(&self) -> DpBudget {
        self.budget
    }

    /// Generate a full dataset of `n` independent marginal samples.
    pub fn sample_dataset<R: rand::Rng>(&self, n: usize, rng: &mut R) -> Dataset {
        let dummy_seed = Record::new(vec![0u16; self.schema.len()]);
        let records = (0..n).map(|_| self.generate(&dummy_seed, rng)).collect();
        Dataset::from_records_unchecked(Arc::clone(&self.schema), records)
    }
}

impl GenerativeModel for MarginalModel {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn generate(&self, _seed: &Record, rng: &mut dyn RngCore) -> Record {
        let values = self
            .marginals
            .iter()
            .map(|dist| sample_categorical(dist, rng) as u16)
            .collect();
        Record::new(values)
    }

    fn probability(&self, _seed: &Record, y: &Record) -> f64 {
        self.marginals
            .iter()
            .enumerate()
            .map(|(attr, dist)| dist[y.get(attr) as usize])
            .product()
    }

    fn is_seed_dependent(&self) -> bool {
        false
    }

    fn likelihood_attributes(&self) -> Option<&[usize]> {
        // Seed-independent model: every seed has the same generation
        // probability for every candidate, so the empty projection already
        // determines the likelihood — all seeds fall into one equivalence
        // class of a partition-aware store.
        Some(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sgf_data::{Attribute, Schema as DataSchema};
    use std::sync::Arc as StdArc;

    fn dataset(n: usize) -> Dataset {
        let schema = StdArc::new(
            DataSchema::new(vec![
                Attribute::categorical_anon("A", 3),
                Attribute::categorical_anon("B", 2),
            ])
            .unwrap(),
        );
        let mut rng = StdRng::seed_from_u64(55);
        let records = (0..n)
            .map(|_| {
                let a: u16 = if rng.gen::<f64>() < 0.6 {
                    0
                } else {
                    rng.gen_range(1..3)
                };
                Record::new(vec![a, a % 2])
            })
            .collect();
        Dataset::from_records_unchecked(schema, records)
    }

    #[test]
    fn marginals_match_empirical_frequencies() {
        let d = dataset(5000);
        let model = MarginalModel::learn(&d, MarginalConfig::default()).unwrap();
        assert!((model.marginal(0)[0] - 0.6).abs() < 0.05);
        assert!((model.marginal(0).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(model.budget().epsilon, 0.0);
    }

    #[test]
    fn generation_is_seed_independent() {
        let d = dataset(2000);
        let model = MarginalModel::learn(&d, MarginalConfig::default()).unwrap();
        assert!(!model.is_seed_dependent());
        let y = Record::new(vec![1, 1]);
        let p_a = model.probability(&Record::new(vec![0, 0]), &y);
        let p_b = model.probability(&Record::new(vec![2, 1]), &y);
        assert_eq!(p_a, p_b);
        // Probability factorizes over attributes.
        assert!((p_a - model.marginal(0)[1] * model.marginal(1)[1]).abs() < 1e-15);
    }

    #[test]
    fn noisy_marginals_are_valid_and_deterministic() {
        let d = dataset(2000);
        let config = MarginalConfig {
            epsilon_p: Some(0.5),
            global_seed: 3,
            ..MarginalConfig::default()
        };
        let a = MarginalModel::learn(&d, config).unwrap();
        let b = MarginalModel::learn(&d, config).unwrap();
        for attr in 0..2 {
            assert_eq!(a.marginal(attr), b.marginal(attr));
            assert!((a.marginal(attr).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        assert!(a.budget().epsilon > 0.0);
    }

    #[test]
    fn sample_dataset_has_requested_size_and_valid_records() {
        let d = dataset(2000);
        let model = MarginalModel::learn(&d, MarginalConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let synthetic = model.sample_dataset(500, &mut rng);
        assert_eq!(synthetic.len(), 500);
        for r in synthetic.records() {
            synthetic.schema().validate_values(r.values()).unwrap();
        }
        // Marginal sampling breaks the A/B correlation present in the input.
        let agree = synthetic
            .records()
            .iter()
            .filter(|r| (r.get(0) % 2) == r.get(1))
            .count() as f64
            / 500.0;
        assert!(agree < 0.9);
    }

    #[test]
    fn delta_merged_counts_rebuild_the_same_model() {
        let d = dataset(1000);
        let mut counts = MarginalCounts::fit(&d);
        let deletes: Vec<Record> = d.records()[..5].to_vec();
        let inserts = vec![Record::new(vec![2, 0]), Record::new(vec![1, 1])];
        counts.apply_delta(&deletes, &inserts).unwrap();

        let mut final_records: Vec<Record> = d.records()[5..].to_vec();
        final_records.extend(inserts.iter().cloned());
        let final_dataset = Dataset::from_records_unchecked(d.schema_arc(), final_records);
        assert_eq!(counts, MarginalCounts::fit(&final_dataset));
        assert_eq!(counts.records(), 997);

        let config = MarginalConfig {
            epsilon_p: Some(0.4),
            global_seed: 12,
            ..MarginalConfig::default()
        };
        let incremental = MarginalModel::from_counts(&counts, config).unwrap();
        let fresh = MarginalModel::learn(&final_dataset, config).unwrap();
        assert_eq!(incremental, fresh);

        // Underflow (removing a record that was never counted) is rejected.
        let phantom = vec![Record::new(vec![2, 1]); 2000];
        assert!(counts.apply_delta(&phantom, &[]).is_err());
    }

    #[test]
    fn invalid_configs_rejected() {
        let d = dataset(100);
        assert!(MarginalModel::learn(
            &d,
            MarginalConfig {
                alpha: 0.0,
                ..MarginalConfig::default()
            }
        )
        .is_err());
        assert!(MarginalModel::learn(
            &d,
            MarginalConfig {
                epsilon_p: Some(0.0),
                ..MarginalConfig::default()
            }
        )
        .is_err());
        assert!(MarginalModel::learn(&d.truncated(0), MarginalConfig::default()).is_err());
    }
}
