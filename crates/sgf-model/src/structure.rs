//! Privacy-preserving structure learning (Section 3.3 / 3.3.1).
//!
//! Combines the correlation computation (exact or with noisy entropies) with
//! the greedy CFS parent-set search, and reports the differential-privacy
//! budget actually spent: the `q` noisy entropy queries compose with the
//! advanced composition theorem and the noisy record count adds sequentially
//! (Section 3.5).

use crate::cfs::{learn_structure, CfsConfig};
use crate::correlation::{
    correlation_matrix, noisy_correlation_matrix, CorrelationDpConfig, CorrelationMatrix,
};
use crate::counts::StructureCounts;
use crate::error::Result;
use crate::graph::DependencyGraph;
use rand::Rng;
use serde::{Deserialize, Serialize};
use sgf_data::{Bucketizer, Dataset};
use sgf_stats::{advanced_composition, sequential_composition, DpBudget};

/// Configuration of the full structure-learning step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StructureConfig {
    /// Greedy CFS search parameters (maxcost, parent cap, ...).
    pub cfs: CfsConfig,
    /// Differential-privacy parameters; `None` learns the exact ("un-noised") structure.
    pub dp: Option<CorrelationDpConfig>,
    /// Slack δ used when composing the noisy entropy queries with the advanced theorem.
    pub delta_slack: f64,
}

impl Default for StructureConfig {
    fn default() -> Self {
        StructureConfig {
            cfs: CfsConfig::default(),
            dp: None,
            delta_slack: 1e-9,
        }
    }
}

impl StructureConfig {
    /// Non-private structure learning with default CFS parameters.
    pub fn exact() -> Self {
        Self::default()
    }

    /// Differentially-private structure learning with the given per-query budgets.
    pub fn private(epsilon_h: f64, epsilon_nt: f64) -> Self {
        StructureConfig {
            cfs: CfsConfig::default(),
            dp: Some(CorrelationDpConfig {
                epsilon_h,
                epsilon_nt,
            }),
            delta_slack: 1e-9,
        }
    }
}

/// The outcome of structure learning.
#[derive(Debug, Clone)]
pub struct LearnedStructure {
    /// The learned dependency graph G̃.
    pub graph: DependencyGraph,
    /// The (possibly noisy) correlation matrix the graph was derived from.
    pub correlations: CorrelationMatrix,
    /// Total (ε, δ) spent on D_T; zero for the exact computation.
    pub budget: DpBudget,
}

impl LearnedStructure {
    /// Per-attribute dependency weight: the summed correlation mass of the
    /// learned graph edges incident to each attribute.
    ///
    /// Attributes the structure learner wired most strongly into the graph
    /// carry the most identifying information about a record, so indexed seed
    /// stores use these weights to rank attributes when choosing which
    /// posting lists to intersect first (the "highest-selectivity" order).
    pub fn attribute_weights(&self) -> Vec<f64> {
        let m = self.graph.len();
        let mut weights = vec![0.0; m];
        for child in 0..m {
            for &parent in self.graph.parents(child) {
                let c = self.correlations.get(parent, child);
                weights[child] += c;
                weights[parent] += c;
            }
        }
        weights
    }
}

/// Learn the dependency structure from the structure-learning subset `D_T`.
pub fn learn_dependency_structure<R: Rng + ?Sized>(
    dataset: &Dataset,
    bucketizer: &Bucketizer,
    config: &StructureConfig,
    rng: &mut R,
) -> Result<LearnedStructure> {
    let correlations = match &config.dp {
        None => correlation_matrix(dataset, bucketizer)?,
        Some(dp) => noisy_correlation_matrix(dataset, bucketizer, dp, rng)?,
    };
    structure_from_correlations(correlations, bucketizer, config)
}

/// Learn the dependency structure from delta-maintained sufficient statistics
/// (the incremental-update re-learn path).
///
/// Feeding counts fitted from a dataset and an identically-seeded `rng`
/// produces a [`LearnedStructure`] bit-identical to
/// [`learn_dependency_structure`] on that dataset: the matrix computation and
/// its DP noise draws are shared, and the CFS search plus budget accounting
/// below are deterministic in the matrix.
pub fn learn_structure_from_counts<R: Rng + ?Sized>(
    counts: &StructureCounts,
    bucketizer: &Bucketizer,
    config: &StructureConfig,
    rng: &mut R,
) -> Result<LearnedStructure> {
    if let Some(dp) = &config.dp {
        dp.validate()?;
    }
    let correlations = counts.matrix(config.dp.as_ref(), rng)?;
    structure_from_correlations(correlations, bucketizer, config)
}

/// The deterministic tail of structure learning: CFS search over a computed
/// correlation matrix plus the composition-theorem budget accounting.
///
/// Exposed so incremental updates can split the relearn at the matrix: a
/// caller that derives the matrix via [`StructureCounts::matrix`], finds its
/// drift below threshold, and keeps the old structure never pays for the CFS
/// search.  `structure_from_correlations(matrix, ...)` on the same matrix is
/// bit-identical to the tail of [`learn_structure_from_counts`] /
/// [`learn_dependency_structure`].
///
/// [`StructureCounts::matrix`]: crate::counts::StructureCounts::matrix
pub fn structure_from_correlations(
    correlations: CorrelationMatrix,
    bucketizer: &Bucketizer,
    config: &StructureConfig,
) -> Result<LearnedStructure> {
    let graph = learn_structure(&correlations, bucketizer, &config.cfs)?;
    let budget = match &config.dp {
        None => DpBudget::pure(0.0),
        Some(dp) => {
            let entropies = advanced_composition(
                dp.epsilon_h,
                0.0,
                correlations.entropy_query_count() as u64,
                config.delta_slack,
            );
            sequential_composition(&[entropies, DpBudget::pure(dp.epsilon_nt)])
        }
    };
    Ok(LearnedStructure {
        graph,
        correlations,
        budget,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sgf_data::acs::{acs_bucketizer, acs_schema, generate_acs};

    #[test]
    fn exact_structure_on_acs_links_income_to_predictors() {
        let data = generate_acs(4000, 3);
        let bkt = acs_bucketizer(&acs_schema());
        let mut rng = StdRng::seed_from_u64(0);
        let learned =
            learn_dependency_structure(&data, &bkt, &StructureConfig::exact(), &mut rng).unwrap();
        assert!(learned.graph.topological_order().is_some());
        assert_eq!(learned.budget.epsilon, 0.0);
        // Some dependencies must have been discovered on this correlated data.
        assert!(
            learned.graph.edge_count() >= 4,
            "edges: {}",
            learned.graph.edge_count()
        );
    }

    #[test]
    fn attribute_weights_follow_graph_edges() {
        let data = generate_acs(4000, 7);
        let bkt = acs_bucketizer(&acs_schema());
        let mut rng = StdRng::seed_from_u64(2);
        let learned =
            learn_dependency_structure(&data, &bkt, &StructureConfig::exact(), &mut rng).unwrap();
        let weights = learned.attribute_weights();
        assert_eq!(weights.len(), learned.graph.len());
        // Every attribute with at least one incident edge has positive weight;
        // isolated attributes have exactly zero.
        for (attr, &weight) in weights.iter().enumerate() {
            let incident = !learned.graph.parents(attr).is_empty()
                || (0..learned.graph.len()).any(|c| learned.graph.parents(c).contains(&attr));
            if incident {
                assert!(weight > 0.0, "attribute {attr} has incident edges");
            } else {
                assert_eq!(weight, 0.0);
            }
        }
    }

    #[test]
    fn count_based_relearn_matches_the_dataset_path_bit_for_bit() {
        let data = generate_acs(1500, 4);
        let bkt = acs_bucketizer(&acs_schema());
        for config in [StructureConfig::exact(), StructureConfig::private(0.5, 0.1)] {
            let mut rng_a = StdRng::seed_from_u64(21);
            let direct = learn_dependency_structure(&data, &bkt, &config, &mut rng_a).unwrap();
            let counts = StructureCounts::fit(&data, &bkt).unwrap();
            let mut rng_b = StdRng::seed_from_u64(21);
            let relearned =
                learn_structure_from_counts(&counts, &bkt, &config, &mut rng_b).unwrap();
            assert_eq!(direct.graph, relearned.graph);
            assert_eq!(direct.correlations, relearned.correlations);
            assert_eq!(direct.budget, relearned.budget);
        }
    }

    #[test]
    fn private_structure_reports_positive_budget() {
        let data = generate_acs(2000, 5);
        let bkt = acs_bucketizer(&acs_schema());
        let mut rng = StdRng::seed_from_u64(1);
        let learned = learn_dependency_structure(
            &data,
            &bkt,
            &StructureConfig::private(0.05, 0.01),
            &mut rng,
        )
        .unwrap();
        assert!(learned.graph.topological_order().is_some());
        assert!(learned.budget.epsilon > 0.0);
        assert!(learned.budget.delta > 0.0 && learned.budget.delta < 1e-6);
    }

    #[test]
    fn noisier_structure_can_differ_from_exact() {
        let data = generate_acs(2000, 7);
        let bkt = acs_bucketizer(&acs_schema());
        let mut rng = StdRng::seed_from_u64(2);
        let exact =
            learn_dependency_structure(&data, &bkt, &StructureConfig::exact(), &mut rng).unwrap();
        let noisy = learn_dependency_structure(
            &data,
            &bkt,
            &StructureConfig::private(0.001, 0.001),
            &mut rng,
        )
        .unwrap();
        // Not asserting inequality of graphs (they *may* coincide), but both must be valid DAGs.
        assert!(exact.graph.topological_order().is_some());
        assert!(noisy.graph.topological_order().is_some());
    }

    #[test]
    fn respects_maxcost_on_acs() {
        let data = generate_acs(2000, 9);
        let schema = acs_schema();
        let bkt = acs_bucketizer(&schema);
        let mut rng = StdRng::seed_from_u64(3);
        let mut config = StructureConfig::exact();
        config.cfs.maxcost = 60;
        let learned = learn_dependency_structure(&data, &bkt, &config, &mut rng).unwrap();
        for i in 0..learned.graph.len() {
            assert!(crate::cfs::parent_set_cost(learned.graph.parents(i), &bkt) <= 60);
        }
    }
}
