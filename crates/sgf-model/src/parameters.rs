//! Privacy-preserving parameter learning (Section 3.4 / 3.4.1).
//!
//! For every attribute `i` and every joint configuration `c` of its
//! (bucketized) parents, the model holds a multinomial distribution over the
//! values of `i`.  Learning places a symmetric Dirichlet prior over those
//! multinomials and updates it with the counts `n^c_i` observed in `D_P`
//! (Eq. 11–13).  Under differential privacy each count receives Laplace noise
//! with sensitivity 1 and is clamped at zero (Eq. 14).
//!
//! Tables are materialized lazily per configuration — exactly like the paper's
//! tool (Section 5) — and the noise drawn for a configuration comes from an
//! RNG seeded by a deterministic hash of that configuration, so concurrent
//! workers observe identical noisy parameters.

use crate::error::{ModelError, Result};
use crate::graph::DependencyGraph;
use parking_lot::RwLock;
use rand::Rng;
use serde::{Deserialize, Serialize};
use sgf_data::{Bucketizer, Dataset, Schema};
use sgf_stats::{
    advanced_composition, configuration_rng, dirichlet_posterior_mean, sample_dirichlet, DpBudget,
    Laplace,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Configuration of parameter learning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParameterConfig {
    /// Total Dirichlet prior mass per configuration (the `α` of Eq. 11),
    /// spread uniformly across the attribute's values: each cell receives
    /// `alpha / |x_i|`.  Keeping the *total* fixed means the prior stays
    /// negligible relative to the data even for wide attributes.
    pub alpha: f64,
    /// Per-count privacy parameter ε_p (Eq. 14); `None` learns exact parameters.
    pub epsilon_p: Option<f64>,
    /// Whether to *sample* the multinomial parameters from the Dirichlet
    /// posterior (Eq. 12) rather than take the posterior mean (Eq. 13).  The
    /// paper samples "to increase the variety of data samples".
    pub sample_parameters: bool,
    /// Global seed mixed into the per-configuration RNG hash.
    pub global_seed: u64,
    /// Slack δ used when composing the per-attribute budgets.
    pub delta_slack: f64,
}

impl Default for ParameterConfig {
    fn default() -> Self {
        ParameterConfig {
            alpha: 1.0,
            epsilon_p: None,
            sample_parameters: false,
            global_seed: 0,
            delta_slack: 1e-9,
        }
    }
}

impl ParameterConfig {
    /// Validate the configuration.
    pub fn validate(&self) -> Result<()> {
        if !(self.alpha.is_finite() && self.alpha > 0.0) {
            return Err(ModelError::InvalidParameter(format!(
                "Dirichlet alpha must be positive, got {}",
                self.alpha
            )));
        }
        if let Some(eps) = self.epsilon_p {
            if !(eps.is_finite() && eps > 0.0) {
                return Err(ModelError::InvalidParameter(format!(
                    "epsilon_p must be positive, got {eps}"
                )));
            }
        }
        if !(self.delta_slack > 0.0 && self.delta_slack < 1.0) {
            return Err(ModelError::InvalidParameter(
                "delta_slack must lie in (0, 1)".into(),
            ));
        }
        Ok(())
    }
}

/// Per-attribute layout of the conditional probability tables.
#[derive(Debug, Clone, PartialEq, Eq)]
struct AttributeTable {
    /// Strides used to turn parent bucket values into a configuration index.
    parent_strides: Vec<u64>,
    /// Parents of the attribute (copied from the graph for locality).
    parents: Vec<usize>,
    /// Number of joint parent configurations (`#c`).
    configurations: u64,
    /// Cardinality of the attribute itself.
    cardinality: usize,
    /// Raw counts, indexed `config * cardinality + value`.
    counts: Vec<u32>,
}

/// The learned conditional-probability store: counts from `D_P` plus lazily
/// materialized (noisy) probability tables.
pub struct CptStore {
    schema: Arc<Schema>,
    bucketizer: Bucketizer,
    graph: DependencyGraph,
    config: ParameterConfig,
    tables: Vec<AttributeTable>,
    /// Lazily materialized conditionals per attribute.  A BTreeMap (R2,
    /// ordered-iteration discipline): lookups dominate, but diagnostics such
    /// as [`CptStore::cached_configurations`] traverse the cache, and on the
    /// synthesis decision path every traversal must have one canonical order.
    cache: Vec<RwLock<BTreeMap<u64, Arc<Vec<f64>>>>>,
    budget: DpBudget,
    training_records: usize,
}

/// Equality compares the learned state (schema, bucketizer, graph, config,
/// raw counts, budget, record count) and deliberately ignores the lazy
/// conditional cache: cached entries are deterministic materializations of
/// that state, so two equal stores always expose identical conditionals no
/// matter which entries happen to be cached.
impl PartialEq for CptStore {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema
            && self.bucketizer == other.bucketizer
            && self.graph == other.graph
            && self.config == other.config
            && self.tables == other.tables
            && self.budget == other.budget
            && self.training_records == other.training_records
    }
}

impl std::fmt::Debug for CptStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CptStore")
            .field("attributes", &self.schema.len())
            .field("training_records", &self.training_records)
            .field("budget", &self.budget)
            .finish()
    }
}

/// Summable CPT sufficient statistics: the raw contingency counts of every
/// attribute's conditional table, separated from the (noise, prior, cache)
/// machinery of [`CptStore`] so a seed-data delta is an `O(|Δ| · m)` count
/// merge instead of a full pass over `D_P`.  The table *layout* is a pure
/// function of the dependency graph and bucketizer, so merged counts only
/// stay meaningful while the graph is unchanged — a structure re-learn must
/// re-fit from the dataset instead.
#[derive(Debug, Clone, PartialEq)]
pub struct CptCounts {
    schema: Arc<Schema>,
    tables: Vec<AttributeTable>,
    records: usize,
}

impl CptCounts {
    /// Number of records currently counted.
    pub fn records(&self) -> usize {
        self.records
    }

    fn cell_of(
        table: &AttributeTable,
        bucketizer: &Bucketizer,
        record: &sgf_data::Record,
        attr: usize,
    ) -> usize {
        let mut config_idx: u64 = 0;
        for (&p, &stride) in table.parents.iter().zip(table.parent_strides.iter()) {
            config_idx += stride * bucketizer.bucket_of(p, record.get(p)) as u64;
        }
        config_idx as usize * table.cardinality + record.get(attr) as usize
    }

    /// Merge a record delta: subtract `deletes`, then add `inserts`.  The
    /// result equals [`CptStore::fit_counts`] on the post-delta dataset
    /// exactly (counting is commutative; additions saturate identically to
    /// the learning pass).
    pub fn apply_delta(
        &mut self,
        deletes: &[sgf_data::Record],
        inserts: &[sgf_data::Record],
        bucketizer: &Bucketizer,
    ) -> Result<()> {
        for record in deletes {
            let underflow = || {
                ModelError::InvalidParameter(format!(
                    "delta removes a record the CPT counts never saw: {:?}",
                    record.values()
                ))
            };
            self.records = self.records.checked_sub(1).ok_or_else(underflow)?;
            for attr in 0..self.tables.len() {
                let cell = Self::cell_of(&self.tables[attr], bucketizer, record, attr);
                let count = &mut self.tables[attr].counts[cell];
                *count = count.checked_sub(1).ok_or_else(underflow)?;
            }
        }
        for record in inserts {
            self.records += 1;
            for attr in 0..self.tables.len() {
                let cell = Self::cell_of(&self.tables[attr], bucketizer, record, attr);
                let count = &mut self.tables[attr].counts[cell];
                *count = count.saturating_add(1);
            }
        }
        Ok(())
    }
}

impl CptStore {
    /// Learn the CPT counts from the parameter-learning subset `D_P`.
    pub fn learn(
        dataset: &Dataset,
        bucketizer: &Bucketizer,
        graph: &DependencyGraph,
        config: ParameterConfig,
    ) -> Result<Self> {
        config.validate()?;
        let counts = Self::fit_counts(dataset, bucketizer, graph)?;
        Self::from_counts(counts, bucketizer, graph, config)
    }

    /// Fit the summable sufficient statistics (contingency counts) with one
    /// pass over `dataset`, laying the tables out for `graph`'s parent sets.
    pub fn fit_counts(
        dataset: &Dataset,
        bucketizer: &Bucketizer,
        graph: &DependencyGraph,
    ) -> Result<CptCounts> {
        if dataset.is_empty() {
            return Err(ModelError::EmptyTrainingData);
        }
        let schema = dataset.schema_arc();
        if graph.len() != schema.len() {
            return Err(ModelError::InvalidGraph(format!(
                "graph has {} nodes but the schema has {} attributes",
                graph.len(),
                schema.len()
            )));
        }

        let mut tables = Vec::with_capacity(schema.len());
        for attr in 0..schema.len() {
            let parents = graph.parents(attr).to_vec();
            let mut strides = Vec::with_capacity(parents.len());
            let mut configurations: u64 = 1;
            for &p in &parents {
                strides.push(configurations);
                configurations = configurations.saturating_mul(bucketizer.bucket_count(p) as u64);
            }
            let cardinality = schema.cardinality(attr);
            let cells = (configurations as usize).saturating_mul(cardinality);
            tables.push(AttributeTable {
                parent_strides: strides,
                parents,
                configurations,
                cardinality,
                counts: vec![0u32; cells],
            });
        }

        for record in dataset.records() {
            for (attr, table) in tables.iter_mut().enumerate() {
                let mut config_idx: u64 = 0;
                for (&p, &stride) in table.parents.iter().zip(table.parent_strides.iter()) {
                    config_idx += stride * bucketizer.bucket_of(p, record.get(p)) as u64;
                }
                let cell = config_idx as usize * table.cardinality + record.get(attr) as usize;
                table.counts[cell] = table.counts[cell].saturating_add(1);
            }
        }

        Ok(CptCounts {
            schema,
            tables,
            records: dataset.len(),
        })
    }

    /// Assemble a store from (possibly delta-merged) sufficient statistics.
    /// The conditional cache starts empty; because noise is materialized
    /// lazily from per-configuration seeded RNGs, a store built from merged
    /// counts exposes conditionals bit-identical to a from-scratch
    /// [`Self::learn`] on a dataset with the same counts.
    pub fn from_counts(
        counts: CptCounts,
        bucketizer: &Bucketizer,
        graph: &DependencyGraph,
        config: ParameterConfig,
    ) -> Result<Self> {
        config.validate()?;
        if counts.records == 0 {
            return Err(ModelError::EmptyTrainingData);
        }
        let CptCounts {
            schema,
            tables,
            records,
        } = counts;
        if graph.len() != schema.len() {
            return Err(ModelError::InvalidGraph(format!(
                "graph has {} nodes but the schema has {} attributes",
                graph.len(),
                schema.len()
            )));
        }

        // Privacy cost: the noisy count vector of one attribute has L1
        // sensitivity 1 across *all* configurations, so each attribute costs
        // ε_p and the m attributes compose with the advanced theorem.
        let budget = match config.epsilon_p {
            None => DpBudget::pure(0.0),
            Some(eps) => advanced_composition(eps, 0.0, schema.len() as u64, config.delta_slack),
        };

        let cache = (0..schema.len())
            .map(|_| RwLock::new(BTreeMap::new()))
            .collect();
        Ok(CptStore {
            schema,
            bucketizer: bucketizer.clone(),
            graph: graph.clone(),
            config,
            tables,
            cache,
            budget,
            training_records: records,
        })
    }

    /// Apply a record delta to this store's counts, returning a new store
    /// with an empty conditional cache.  Only valid while the dependency
    /// graph is unchanged; a structure re-learn must go through
    /// [`Self::learn`] on the new `D_P` instead.
    pub fn apply_delta(
        &self,
        deletes: &[sgf_data::Record],
        inserts: &[sgf_data::Record],
    ) -> Result<Self> {
        let mut counts = CptCounts {
            schema: Arc::clone(&self.schema),
            tables: self.tables.clone(),
            records: self.training_records,
        };
        counts.apply_delta(deletes, inserts, &self.bucketizer)?;
        Self::from_counts(counts, &self.bucketizer, &self.graph, self.config)
    }

    /// Raw contingency counts of attribute `attr` (`config * cardinality + value`
    /// cell layout) — exposed so equivalence tests can compare stores
    /// byte-for-byte.
    pub fn table_counts(&self, attr: usize) -> &[u32] {
        &self.tables[attr].counts
    }

    /// The schema the store was learned over.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Shared handle to the schema.
    pub fn schema_arc(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    /// The dependency graph whose parent sets index the tables.
    pub fn graph(&self) -> &DependencyGraph {
        &self.graph
    }

    /// The bucketizer used for parent configurations.
    pub fn bucketizer(&self) -> &Bucketizer {
        &self.bucketizer
    }

    /// Differential-privacy budget spent on `D_P` (zero when `epsilon_p` is `None`).
    pub fn budget(&self) -> DpBudget {
        self.budget
    }

    /// Number of records the counts were estimated from.
    pub fn training_records(&self) -> usize {
        self.training_records
    }

    /// Number of joint parent configurations of attribute `attr`.
    pub fn configurations(&self, attr: usize) -> u64 {
        self.tables[attr].configurations
    }

    /// Configuration index of attribute `attr` for a full assignment of values,
    /// reading parent values through the accessor (value index per attribute).
    pub fn configuration_index<F: Fn(usize) -> u16>(&self, attr: usize, value_of: F) -> u64 {
        let table = &self.tables[attr];
        let mut idx: u64 = 0;
        for (&p, &stride) in table.parents.iter().zip(table.parent_strides.iter()) {
            idx += stride * self.bucketizer.bucket_of(p, value_of(p)) as u64;
        }
        idx
    }

    /// The (possibly noisy, possibly sampled) conditional distribution
    /// `Pr{x_attr | configuration}` — materialized lazily and cached.
    pub fn conditional(&self, attr: usize, configuration: u64) -> Arc<Vec<f64>> {
        if let Some(hit) = self.cache[attr].read().get(&configuration) {
            return Arc::clone(hit);
        }
        let computed = Arc::new(self.materialize(attr, configuration));
        let mut guard = self.cache[attr].write();
        Arc::clone(guard.entry(configuration).or_insert(computed))
    }

    fn materialize(&self, attr: usize, configuration: u64) -> Vec<f64> {
        let table = &self.tables[attr];
        let card = table.cardinality;
        let start =
            (configuration as usize).min(table.configurations.saturating_sub(1) as usize) * card;
        let raw: Vec<f64> = table.counts[start..start + card]
            .iter()
            .map(|&c| c as f64)
            .collect();

        // Per-configuration deterministic RNG: identical noise for identical
        // configurations, regardless of which worker asks first.
        let mut rng = configuration_rng(
            self.config.global_seed,
            "sgf-parameters",
            attr,
            configuration,
        );

        let noisy: Vec<f64> = match self.config.epsilon_p {
            None => raw,
            Some(eps) => {
                let lap = Laplace::for_mechanism(1.0, eps);
                raw.iter()
                    .map(|&c| (c + lap.sample(&mut rng)).max(0.0))
                    .collect()
            }
        };

        let alphas = vec![self.config.alpha / card as f64; card];
        if self.config.sample_parameters {
            let posterior: Vec<f64> = alphas
                .iter()
                .zip(noisy.iter())
                .map(|(&a, &n)| a + n)
                .collect();
            sample_dirichlet(&posterior, &mut rng)
        } else {
            dirichlet_posterior_mean(&alphas, &noisy)
        }
    }

    /// Conditional probability of `value` for attribute `attr` given the full
    /// assignment provided by `value_of`.
    pub fn conditional_probability<F: Fn(usize) -> u16>(
        &self,
        attr: usize,
        value: u16,
        value_of: F,
    ) -> f64 {
        let config = self.configuration_index(attr, &value_of);
        self.conditional(attr, config)[value as usize]
    }

    /// Sample a value of attribute `attr` given the assignment provided by `value_of`.
    pub fn sample_value<F: Fn(usize) -> u16, R: Rng + ?Sized>(
        &self,
        attr: usize,
        value_of: F,
        rng: &mut R,
    ) -> u16 {
        let config = self.configuration_index(attr, &value_of);
        let dist = self.conditional(attr, config);
        sgf_stats::sample_categorical(&dist, rng) as u16
    }

    /// Number of CPT cells materialized so far (for diagnostics/benchmarks).
    pub fn cached_configurations(&self) -> usize {
        self.cache.iter().map(|c| c.read().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sgf_data::{Attribute, Record};
    use std::sync::Arc as StdArc;

    /// Two attributes: A uniform over 3 values, B = A with 90% probability.
    fn dataset(n: usize) -> Dataset {
        let schema = StdArc::new(
            sgf_data::Schema::new(vec![
                Attribute::categorical_anon("A", 3),
                Attribute::categorical_anon("B", 3),
            ])
            .unwrap(),
        );
        let mut rng = StdRng::seed_from_u64(77);
        let records = (0..n)
            .map(|_| {
                let a: u16 = rng.gen_range(0..3);
                let b = if rng.gen::<f64>() < 0.9 {
                    a
                } else {
                    rng.gen_range(0..3)
                };
                Record::new(vec![a, b])
            })
            .collect();
        Dataset::from_records_unchecked(schema, records)
    }

    fn graph() -> DependencyGraph {
        DependencyGraph::from_parent_sets(vec![vec![], vec![0]]).unwrap()
    }

    #[test]
    fn exact_conditionals_reflect_counts() {
        let d = dataset(5000);
        let bkt = Bucketizer::identity(d.schema());
        let store = CptStore::learn(&d, &bkt, &graph(), ParameterConfig::default()).unwrap();
        // B | A=1 should put ~0.9 mass on value 1 (Dirichlet(1) prior shrinks slightly).
        let config = store.configuration_index(1, |attr| if attr == 0 { 1 } else { 0 });
        let dist = store.conditional(1, config);
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(dist[1] > 0.8, "P(B=1 | A=1) = {}", dist[1]);
        // A has no parents: a single configuration, roughly uniform.
        assert_eq!(store.configurations(0), 1);
        let marginal = store.conditional(0, 0);
        assert!(marginal.iter().all(|&p| (p - 1.0 / 3.0).abs() < 0.05));
    }

    #[test]
    fn unseen_configuration_falls_back_to_prior() {
        // Build a graph where B has parent A, but only A=0 appears in data.
        let schema = StdArc::new(
            sgf_data::Schema::new(vec![
                Attribute::categorical_anon("A", 3),
                Attribute::categorical_anon("B", 2),
            ])
            .unwrap(),
        );
        let records = (0..100).map(|_| Record::new(vec![0, 1])).collect();
        let d = Dataset::from_records_unchecked(schema, records);
        let bkt = Bucketizer::identity(d.schema());
        let store = CptStore::learn(&d, &bkt, &graph(), ParameterConfig::default()).unwrap();
        // Configuration A=2 was never observed: the posterior is the flat prior.
        let config = store.configuration_index(1, |attr| if attr == 0 { 2 } else { 0 });
        let dist = store.conditional(1, config);
        assert!((dist[0] - 0.5).abs() < 1e-9 && (dist[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn noisy_parameters_are_valid_distributions() {
        let d = dataset(2000);
        let bkt = Bucketizer::identity(d.schema());
        let config = ParameterConfig {
            epsilon_p: Some(0.5),
            ..ParameterConfig::default()
        };
        let store = CptStore::learn(&d, &bkt, &graph(), config).unwrap();
        for c in 0..store.configurations(1) {
            let dist = store.conditional(1, c);
            assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(dist.iter().all(|&p| p >= 0.0));
        }
        assert!(store.budget().epsilon > 0.0);
    }

    #[test]
    fn noise_is_deterministic_per_configuration() {
        let d = dataset(2000);
        let bkt = Bucketizer::identity(d.schema());
        let config = ParameterConfig {
            epsilon_p: Some(0.2),
            sample_parameters: true,
            global_seed: 99,
            ..ParameterConfig::default()
        };
        let store_a = CptStore::learn(&d, &bkt, &graph(), config).unwrap();
        let store_b = CptStore::learn(&d, &bkt, &graph(), config).unwrap();
        for c in 0..store_a.configurations(1) {
            assert_eq!(*store_a.conditional(1, c), *store_b.conditional(1, c));
        }
        // A different global seed gives different noise.
        let other = ParameterConfig {
            global_seed: 100,
            ..config
        };
        let store_c = CptStore::learn(&d, &bkt, &graph(), other).unwrap();
        let diff = (0..store_a.configurations(1))
            .any(|c| *store_a.conditional(1, c) != *store_c.conditional(1, c));
        assert!(diff);
    }

    #[test]
    fn identically_seeded_runs_produce_identical_tables() {
        // Determinism regression (R2): two stores learned from the same data
        // with the same seed must expose byte-identical conditionals even when
        // their caches are populated in different orders.  With the old
        // HashMap cache the *values* already agreed, but any future code that
        // iterates the cache would have observed a random order; the BTreeMap
        // makes the traversal canonical.
        let d = dataset(2000);
        let bkt = Bucketizer::identity(d.schema());
        let config = ParameterConfig {
            epsilon_p: Some(0.3),
            sample_parameters: true,
            global_seed: 41,
            ..ParameterConfig::default()
        };
        let store_a = CptStore::learn(&d, &bkt, &graph(), config).unwrap();
        let store_b = CptStore::learn(&d, &bkt, &graph(), config).unwrap();
        // Populate a forward, b backward.
        let configs: Vec<u64> = (0..store_a.configurations(1)).collect();
        for &c in &configs {
            let _ = store_a.conditional(1, c);
        }
        for &c in configs.iter().rev() {
            let _ = store_b.conditional(1, c);
        }
        assert_eq!(
            store_a.cached_configurations(),
            store_b.cached_configurations()
        );
        for &c in &configs {
            assert_eq!(*store_a.conditional(1, c), *store_b.conditional(1, c));
        }
    }

    #[test]
    fn sampling_and_probability_agree() {
        let d = dataset(5000);
        let bkt = Bucketizer::identity(d.schema());
        let store = CptStore::learn(&d, &bkt, &graph(), ParameterConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut hits = 0usize;
        let n = 5000;
        for _ in 0..n {
            let sampled = store.sample_value(1, |attr| if attr == 0 { 2 } else { 0 }, &mut rng);
            if sampled == 2 {
                hits += 1;
            }
        }
        let p = store.conditional_probability(1, 2, |attr| if attr == 0 { 2 } else { 0 });
        assert!((hits as f64 / n as f64 - p).abs() < 0.03);
    }

    #[test]
    fn delta_merged_counts_rebuild_the_same_store() {
        let d = dataset(1000);
        let bkt = Bucketizer::identity(d.schema());
        let config = ParameterConfig {
            epsilon_p: Some(0.3),
            sample_parameters: true,
            global_seed: 7,
            ..ParameterConfig::default()
        };
        let store = CptStore::learn(&d, &bkt, &graph(), config).unwrap();
        // Warm the cache to show it does not leak into the delta result.
        let _ = store.conditional(1, 0);

        let deletes: Vec<Record> = d.records()[..4].to_vec();
        let inserts = vec![Record::new(vec![2, 2]), Record::new(vec![0, 1])];
        let updated = store.apply_delta(&deletes, &inserts).unwrap();

        let mut final_records: Vec<Record> = d.records()[4..].to_vec();
        final_records.extend(inserts.iter().cloned());
        let final_dataset = Dataset::from_records_unchecked(d.schema_arc(), final_records);
        let fresh = CptStore::learn(&final_dataset, &bkt, &graph(), config).unwrap();

        assert_eq!(updated, fresh);
        assert_eq!(updated.training_records(), 998);
        for attr in 0..2 {
            assert_eq!(updated.table_counts(attr), fresh.table_counts(attr));
            for c in 0..updated.configurations(attr) {
                assert_eq!(*updated.conditional(attr, c), *fresh.conditional(attr, c));
            }
        }

        // Deleting a record that was never counted underflows and is rejected.
        let phantom = vec![Record::new(vec![2, 0]); 2000];
        assert!(updated.apply_delta(&phantom, &[]).is_err());
    }

    #[test]
    fn invalid_inputs_rejected() {
        let d = dataset(10);
        let bkt = Bucketizer::identity(d.schema());
        let bad_alpha = ParameterConfig {
            alpha: 0.0,
            ..ParameterConfig::default()
        };
        assert!(CptStore::learn(&d, &bkt, &graph(), bad_alpha).is_err());
        let bad_eps = ParameterConfig {
            epsilon_p: Some(-1.0),
            ..ParameterConfig::default()
        };
        assert!(CptStore::learn(&d, &bkt, &graph(), bad_eps).is_err());
        let empty = d.truncated(0);
        assert!(CptStore::learn(&empty, &bkt, &graph(), ParameterConfig::default()).is_err());
        let wrong_graph = DependencyGraph::empty(5);
        assert!(CptStore::learn(&d, &bkt, &wrong_graph, ParameterConfig::default()).is_err());
    }

    #[test]
    fn cache_grows_lazily() {
        let d = dataset(500);
        let bkt = Bucketizer::identity(d.schema());
        let store = CptStore::learn(&d, &bkt, &graph(), ParameterConfig::default()).unwrap();
        assert_eq!(store.cached_configurations(), 0);
        let _ = store.conditional(1, 0);
        let _ = store.conditional(1, 0);
        assert_eq!(store.cached_configurations(), 1);
        let _ = store.conditional(1, 1);
        assert_eq!(store.cached_configurations(), 2);
    }
}
