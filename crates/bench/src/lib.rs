//! Shared experiment context for the table/figure reproduction binaries and
//! the criterion benchmarks.
//!
//! Every binary accepts an optional positional argument `scale` (default 1):
//! the synthetic-ACS population size and the number of released synthetics are
//! multiplied by it, so `cargo run --release -p bench --bin table3 -- 4` runs
//! a 4x larger experiment.  The defaults are sized for a single-core machine.

pub mod track;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sgf_core::{
    BudgetLedger, GenerateRequest, PipelineConfig, PrivacyTestConfig, SynthesisEngine,
    SynthesisPipeline, TrainedModels,
};
use sgf_data::acs::{acs_bucketizer, acs_schema, generate_acs};
use sgf_data::{split_dataset, Bucketizer, DataSplit, Dataset, SplitSpec};
use sgf_model::OmegaSpec;

/// Base population size at scale 1.
pub const BASE_POPULATION: usize = 12_000;
/// Base number of synthetics released per ω setting at scale 1.
pub const BASE_SYNTHETICS: usize = 1_500;

/// Whether smoke mode is active (`SGF_SMOKE=1`, set by `scripts/repro.sh`):
/// every binary runs the full code path at a fraction of the full-scale
/// parameters, so the whole artifact suite finishes in CI-friendly time.
pub fn smoke_mode() -> bool {
    std::env::var("SGF_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Population size at scale 1 (reduced in smoke mode).
pub fn base_population() -> usize {
    if smoke_mode() {
        3_000
    } else {
        BASE_POPULATION
    }
}

/// Synthetics per ω setting at scale 1 (reduced in smoke mode).
pub fn base_synthetics() -> usize {
    if smoke_mode() {
        120
    } else {
        BASE_SYNTHETICS
    }
}

/// Parse the scale factor from the command line (first positional argument).
pub fn scale_from_args() -> usize {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&s| s > 0)
        .unwrap_or(1)
}

/// Everything the experiment binaries need: the split population, the trained
/// models, and synthetic datasets for the paper's ω settings.
pub struct ExperimentContext {
    /// The generated ACS-like population.
    pub population: Dataset,
    /// The bucketizer used for structure learning.
    pub bucketizer: Bucketizer,
    /// The disjoint split of the population.
    pub split: DataSplit,
    /// The trained models (structure, CPTs, marginals).
    pub models: TrainedModels,
    /// Labelled synthetic datasets, one per ω setting (plus the marginals).
    pub synthetic_sets: Vec<(String, Dataset)>,
    /// The pipeline configuration that produced them.
    pub config: PipelineConfig,
    /// Cumulative privacy ledger over every ω request served by the session.
    pub ledger: BudgetLedger,
}

/// The ω settings used throughout the evaluation section.
pub fn paper_omegas() -> Vec<OmegaSpec> {
    vec![
        OmegaSpec::Fixed(11),
        OmegaSpec::Fixed(10),
        OmegaSpec::Fixed(9),
        OmegaSpec::UniformRange { lo: 9, hi: 11 },
        OmegaSpec::UniformRange { lo: 5, hi: 11 },
    ]
}

/// Default pipeline configuration used by the experiments: k = 50, γ = 4,
/// ε0 = 1, randomized privacy test, early-termination knobs as in Section 6.5.
pub fn experiment_pipeline_config(target: usize, seed: u64) -> PipelineConfig {
    let mut config = PipelineConfig::paper_defaults(target);
    config.privacy_test =
        PrivacyTestConfig::randomized(50, 4.0, 1.0).with_limits(Some(100), Some(5_000));
    config.max_candidate_factor = 12;
    config.seed = seed;
    config
}

/// Build the full experiment context at the given scale: train one session,
/// then serve one `generate` request per ω setting from the same models.
pub fn build_context(scale: usize, seed: u64) -> ExperimentContext {
    let population = generate_acs(base_population() * scale, seed);
    let bucketizer = acs_bucketizer(&acs_schema());

    let target = base_synthetics() * scale;
    let config = experiment_pipeline_config(target, seed);
    let session = SynthesisEngine::from_config(config)
        .train(&population, &bucketizer)
        .expect("model learning on the generated population succeeds");

    let mut synthetic_sets = Vec::new();
    // Marginal baseline dataset of the same size.
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
    let marginal_data = session.models().marginal.sample_dataset(target, &mut rng);
    synthetic_sets.push(("marginals".to_string(), marginal_data));

    for omega in paper_omegas() {
        let report = session
            .generate(
                &GenerateRequest::new(target)
                    .with_omega(omega)
                    .with_seed(seed),
            )
            .expect("synthesis succeeds");
        synthetic_sets.push((omega.label(), report.synthetics));
    }

    let (split, models, ledger) = session.into_parts();
    ExperimentContext {
        population,
        bucketizer,
        split,
        models,
        synthetic_sets,
        config,
        ledger,
    }
}

/// A smaller context for the criterion benches (fast to learn, no synthesis).
pub fn small_models(seed: u64) -> (DataSplit, Bucketizer, TrainedModels) {
    let population = generate_acs(6_000, seed);
    let bucketizer = acs_bucketizer(&acs_schema());
    let mut rng = StdRng::seed_from_u64(seed);
    let split = split_dataset(&population, &SplitSpec::paper_defaults(), &mut rng)
        .expect("population is non-empty");
    let config = experiment_pipeline_config(100, seed);
    let models = SynthesisPipeline::new(config)
        .learn_models(&split, &bucketizer)
        .expect("model learning succeeds");
    (split, bucketizer, models)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_models_learn() {
        let (split, _bkt, models) = small_models(5);
        assert!(!split.seeds.is_empty());
        assert!(models.structure.graph.topological_order().is_some());
    }

    #[test]
    fn paper_omegas_cover_the_evaluation_settings() {
        let omegas = paper_omegas();
        assert_eq!(omegas.len(), 5);
        assert!(omegas.contains(&OmegaSpec::Fixed(9)));
    }
}
