//! Figure 2: per-attribute model accuracy of the generative model, a random
//! forest, the marginals, and random guessing.

use bench::{build_context, scale_from_args};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sgf_data::acs::SHORT_NAMES;
use sgf_eval::{model_accuracy, percent, TextTable};
use sgf_ml::ForestConfig;

fn main() {
    let scale = scale_from_args();
    let recorder = bench::track::SeriesRecorder::new("fig2", scale);
    let ctx = build_context(scale, 102);
    let mut rng = StdRng::seed_from_u64(11);
    let forest_config = ForestConfig {
        trees: 10,
        ..ForestConfig::default()
    };
    let acc = model_accuracy(
        &ctx.models.bayes_net,
        &ctx.models.marginal,
        &ctx.split.parameters,
        &ctx.split.test,
        300 * scale,
        &forest_config,
        &mut rng,
    );
    let mut table = TextTable::new(&[
        "Attribute",
        "Generative",
        "Random Forest",
        "Marginals",
        "Random",
    ]);
    for (i, name) in SHORT_NAMES.iter().enumerate() {
        table.add_row(&[
            name.to_string(),
            percent(acc.generative[i]),
            percent(acc.random_forest[i]),
            percent(acc.marginals[i]),
            percent(acc.random[i]),
        ]);
    }
    println!("Figure 2: Model accuracy per attribute (scale {scale})\n");
    println!("{}", table.render());
    recorder.finish();
}
