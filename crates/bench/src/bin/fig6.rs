//! Figure 6: percentage of candidate synthetics passing the privacy test for
//! various k and ω (γ = 2).

use bench::{scale_from_args, small_models};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sgf_eval::{pass_rate_sweep, percent, PassRateConfig, TextTable};
use std::sync::Arc;

fn main() {
    let scale = scale_from_args();
    let recorder = bench::track::SeriesRecorder::new("fig6", scale);
    let (split, _bucketizer, models) = small_models(106);
    let cpts = Arc::clone(&models.cpts);
    let mut rng = StdRng::seed_from_u64(106);

    let config = PassRateConfig {
        candidates_per_point: 100 * scale,
        k_values: vec![10, 25, 50, 100, 150, 250],
        ..PassRateConfig::default()
    };
    let series = pass_rate_sweep(&cpts, &split.seeds, &config, &mut rng);

    let mut header: Vec<String> = vec!["omega \\ k".to_string()];
    header.extend(config.k_values.iter().map(|k| k.to_string()));
    let mut table = TextTable::new(&header);
    for s in &series {
        let mut row = vec![s.omega.label()];
        row.extend(s.pass_rates.iter().map(|&r| percent(r)));
        table.add_row(&row);
    }
    println!(
        "Figure 6: Percentage of candidates passing the privacy test (gamma = 2, scale {scale})\n"
    );
    println!("{}", table.render());
    recorder.finish();
}
