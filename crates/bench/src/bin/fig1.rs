//! Figure 1: relative improvement of model accuracy over the marginals for
//! the un-noised, (ε=1)-DP, and (ε=0.1)-DP generative models.

use bench::{build_context, scale_from_args};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sgf_data::acs::SHORT_NAMES;
use sgf_eval::model_accuracy::{generative_model_accuracy, marginal_accuracy};
use sgf_eval::TextTable;
use sgf_model::{BayesNetModel, CptStore, ParameterConfig, StructureConfig};
use sgf_stats::{calibrate_epsilon_h, calibrate_epsilon_p};
use std::sync::Arc;

fn private_model(ctx: &bench::ExperimentContext, epsilon: f64, seed: u64) -> BayesNetModel {
    let m = ctx.population.schema().len();
    let eps_h = calibrate_epsilon_h(m, 0.01, 1e-9, epsilon).max(1e-4);
    let eps_p = calibrate_epsilon_p(m, 1e-9, epsilon).max(1e-4);
    let mut rng = StdRng::seed_from_u64(seed);
    let structure = sgf_model::learn_dependency_structure(
        &ctx.split.structure,
        &ctx.bucketizer,
        &StructureConfig::private(eps_h, 0.01),
        &mut rng,
    )
    .expect("structure learning succeeds");
    let cpts = CptStore::learn(
        &ctx.split.parameters,
        &ctx.bucketizer,
        &structure.graph,
        ParameterConfig {
            epsilon_p: Some(eps_p),
            global_seed: seed,
            ..ParameterConfig::default()
        },
    )
    .expect("parameter learning succeeds");
    BayesNetModel::new(Arc::new(cpts))
}

fn main() {
    let scale = scale_from_args();
    let recorder = bench::track::SeriesRecorder::new("fig1", scale);
    let ctx = build_context(scale, 101);
    let probes = 300 * scale;
    let repetitions = 3usize; // the paper averages 20 private models; reduced for wall-clock

    let mut rng = StdRng::seed_from_u64(7);
    let marg = marginal_accuracy(&ctx.models.marginal, &ctx.split.test);
    let exact = generative_model_accuracy(&ctx.models.bayes_net, &ctx.split.test, probes, &mut rng);

    let mut avg = |epsilon: f64| -> Vec<f64> {
        let mut acc = vec![0.0; ctx.population.schema().len()];
        for rep in 0..repetitions {
            let model = private_model(&ctx, epsilon, 1000 + rep as u64);
            let a = generative_model_accuracy(&model, &ctx.split.test, probes, &mut rng);
            for (s, v) in acc.iter_mut().zip(a) {
                *s += v / repetitions as f64;
            }
        }
        acc
    };
    let eps1 = avg(1.0);
    let eps01 = avg(0.1);

    let improvement = |gen: &[f64]| -> Vec<f64> {
        gen.iter()
            .zip(marg.iter())
            .map(|(&g, &m)| if m > 0.0 { (g - m) / m } else { 0.0 })
            .collect()
    };

    let mut table = TextTable::new(&["Attribute", "No Noise", "eps = 1", "eps = 0.1"]);
    let no_noise = improvement(&exact);
    let i1 = improvement(&eps1);
    let i01 = improvement(&eps01);
    for (i, name) in SHORT_NAMES.iter().enumerate() {
        table.add_row(&[
            name.to_string(),
            format!("{:+.1}%", 100.0 * no_noise[i]),
            format!("{:+.1}%", 100.0 * i1[i]),
            format!("{:+.1}%", 100.0 * i01[i]),
        ]);
    }
    println!("Figure 1: Relative improvement of model accuracy over marginals (scale {scale})\n");
    println!("{}", table.render());
    recorder.finish();
}
