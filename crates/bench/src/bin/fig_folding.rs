//! `fig_folding`: request folding + shared class-match cache — the served
//! requests × concurrency throughput curve behind the serve-layer fold path.
//!
//! Two parts:
//!
//! 1. **Equivalence gate (deterministic).**  Two sessions trained from the
//!    same seed, one with the class-match cache enabled and one without,
//!    answer the same seeded requests; the releases must be byte-identical
//!    and the cached session must report a non-zero hit rate.  These points
//!    carry the deterministic `class_cache_hits` / `class_cache_misses`
//!    counters and are regression-gated by `sgf-bench-track compare`.
//! 2. **Folding sweep (noisy).**  Each variant is served through
//!    `sgf_serve::serve` — cache on with `max_fold = 8` versus cache off
//!    with folding disabled — and hit by 1–8 concurrent same-session
//!    clients.  Throughput and the `serve.folds` / `serve.folded_requests`
//!    deltas at > 1 client depend on thread timing, so those points are
//!    marked noisy and exempt from gating; the mechanism-counter totals
//!    remain deterministic (misses count distinct cached projections and
//!    per-request lookup counts are scheduling-independent).

use bench::track::{BenchPoint, SeriesRecorder};
use bench::{base_population, scale_from_args, smoke_mode};
use sgf_core::{GenerateRequest, PrivacyTestConfig, SynthesisEngine, SynthesisSession};
use sgf_data::acs::{acs_bucketizer, acs_schema, generate_acs};
use sgf_eval::TextTable;
use sgf_model::OmegaSpec;
use sgf_serve::{serve, Client, GenerateCall, ServeConfig, SessionEntry};
use std::time::Instant;

/// Concurrent same-session clients in the folding sweep.
const CONCURRENCY: [usize; 4] = [1, 2, 4, 8];

/// Train one variant of the shared session; `cache` toggles the class-match
/// probability cache, everything else (data, split, seed) is identical.
fn train_variant(population_scale: usize, cache: bool) -> SynthesisSession {
    let population = generate_acs(base_population() * population_scale, 117);
    let bucketizer = acs_bucketizer(&acs_schema());
    SynthesisEngine::builder()
        .privacy_test(
            PrivacyTestConfig::randomized(20, 4.0, 1.0).with_limits(Some(40), Some(2_000)),
        )
        .omega(OmegaSpec::Fixed(9))
        .max_candidate_factor(30)
        .class_cache(cache)
        .seed(117)
        .train(&population, &bucketizer)
        .expect("model learning on the generated population succeeds")
}

fn main() {
    let scale = scale_from_args();
    let target = if smoke_mode() { 12 } else { 25 };
    let serial_requests: u64 = 6;
    let per_client = if smoke_mode() { 4 } else { 16 };

    let cached = train_variant(scale, true);
    let cold = train_variant(scale, false);

    // Part 1: byte-identical equivalence + deterministic cache counters.
    let mut recorder = SeriesRecorder::new("fig_folding", scale);
    let mut table = TextTable::new(&[
        "Request seed",
        "Released",
        "Cache hits",
        "Cache misses",
        "Partition tests",
    ]);
    let (mut hits, mut misses, mut released, mut candidates) = (0u64, 0u64, 0u64, 0u64);
    for seed in 0..serial_requests {
        let request = GenerateRequest::new(target).with_seed(seed);
        let warm = cached.generate(&request).expect("cached release succeeds");
        let base = cold.generate(&request).expect("uncached release succeeds");
        assert_eq!(
            warm.synthetics.records(),
            base.synthetics.records(),
            "class cache changed the released records at seed {seed}"
        );
        assert_eq!(warm.stats.released, base.stats.released);
        assert_eq!(warm.stats.candidates, base.stats.candidates);
        assert_eq!(
            base.stats.class_cache_hits + base.stats.class_cache_misses,
            0,
            "uncached session consulted the class cache"
        );
        hits += warm.stats.class_cache_hits as u64;
        misses += warm.stats.class_cache_misses as u64;
        released += warm.stats.released as u64;
        candidates += warm.stats.candidates as u64;
        table.add_row(&[
            seed.to_string(),
            warm.stats.released.to_string(),
            warm.stats.class_cache_hits.to_string(),
            warm.stats.class_cache_misses.to_string(),
            warm.stats.partition_tests.to_string(),
        ]);
    }
    assert!(
        hits > 0,
        "class cache never hit across {serial_requests} requests"
    );
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    recorder.add(
        BenchPoint::new("serial")
            .counter("requests", serial_requests)
            .counter("released", released)
            .counter("candidates", candidates)
            .counter("cache_hits", hits)
            .counter("cache_misses", misses),
    );
    println!("Request folding: class-match cache equivalence (omega = 9, k = 20, scale {scale})\n");
    println!("{}", table.render());
    println!(
        "fig_folding: byte-identical releases with class cache on vs off \
         ({serial_requests} request seeds, cache hit rate {:.1}%)\n",
        100.0 * hit_rate
    );

    // Part 2: the served folding curve — concurrency sweep per variant.
    let mut table = TextTable::new(&[
        "Variant",
        "Clients",
        "Released",
        "Folds",
        "Folded reqs",
        "Wall (s)",
        "Throughput (req/s)",
    ]);
    for (tag, session, max_fold) in [("on", &cached, 8usize), ("off", &cold, 1usize)] {
        let config = ServeConfig {
            workers: 2,
            queue_capacity: 64,
            max_fold: Some(max_fold),
            ..ServeConfig::default()
        };
        let name = format!("folding-{tag}");
        let handle = serve(
            config,
            vec![SessionEntry::new(session.clone()).named(&name)],
        )
        .expect("server binds an ephemeral port");
        let addr = handle.addr();
        for &clients in &CONCURRENCY {
            let before = sgf_metrics::global().snapshot();
            let started = Instant::now();
            let served: usize = std::thread::scope(|scope| {
                let name = &name;
                let workers: Vec<_> = (0..clients)
                    .map(|client_idx| {
                        scope.spawn(move || {
                            let mut client =
                                Client::connect(addr).expect("client connects to the sweep server");
                            let mut served = 0usize;
                            for turn in 0..per_client {
                                let seed = 1_000 + (clients * 100 + client_idx * 10 + turn) as u64;
                                let call = GenerateCall::new(target)
                                    .with_session(name)
                                    .with_request(GenerateRequest::new(target).with_seed(seed));
                                let release =
                                    client.generate(&call).expect("sweep generate succeeds");
                                assert!(!release.records.is_empty(), "empty sweep release");
                                served += release.records.len();
                            }
                            served
                        })
                    })
                    .collect();
                workers
                    .into_iter()
                    .map(|worker| worker.join().expect("sweep client thread completes"))
                    .sum()
            });
            let seconds = started.elapsed().as_secs_f64();
            let profile = sgf_metrics::global().snapshot().delta(&before);
            let folds = profile.counter("serve.folds");
            let folded = profile.counter("serve.folded_requests");
            let requests = (clients * per_client) as u64;
            let throughput = requests as f64 / seconds.max(1e-9);
            table.add_row(&[
                tag.to_string(),
                clients.to_string(),
                served.to_string(),
                folds.to_string(),
                folded.to_string(),
                format!("{seconds:.2}"),
                format!("{throughput:.1}"),
            ]);
            let mut point = BenchPoint::new(format!("{tag}_c{clients:02}"))
                .counter("concurrency", clients as u64)
                .counter("requests", requests)
                .counter("released", served as u64)
                .counter("folds", folds)
                .counter("folded_requests", folded)
                .value("wall_seconds", seconds)
                .value("throughput_rps", throughput);
            if clients > 1 {
                point = point.noisy();
            }
            recorder.add(point);
        }
        let mut client = Client::connect(addr).expect("shutdown client connects");
        client.shutdown().expect("server accepts shutdown");
        handle.join().expect("server drains and joins");
    }
    println!("Request folding: served concurrency sweep ({per_client} requests per client)\n");
    println!("{}", table.render());
    recorder.finish();
}
