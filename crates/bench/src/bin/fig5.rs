//! Figure 5: synthetic-generation performance (model learning + synthesis
//! time against the number of synthetics produced), ω = 9, k = 50, γ = 4.

use bench::{experiment_pipeline_config, scale_from_args, BASE_POPULATION};
use sgf_data::acs::{acs_bucketizer, acs_schema, generate_acs};
use sgf_eval::{performance_curve, TextTable};
use sgf_model::OmegaSpec;

fn main() {
    let scale = scale_from_args();
    let population = generate_acs(BASE_POPULATION * scale, 105);
    let bucketizer = acs_bucketizer(&acs_schema());
    let mut config = experiment_pipeline_config(1, 105);
    config.omega = OmegaSpec::Fixed(9);

    let sizes: Vec<usize> = [250, 500, 1000, 2000].iter().map(|s| s * scale).collect();
    let points =
        performance_curve(&population, &bucketizer, &config, &sizes).expect("pipeline runs");

    let mut table = TextTable::new(&[
        "Requested",
        "Released",
        "Candidates",
        "Model learning (s)",
        "Synthesis (s)",
    ]);
    for p in &points {
        table.add_row(&[
            p.requested.to_string(),
            p.released.to_string(),
            p.candidates.to_string(),
            format!("{:.2}", p.model_learning.as_secs_f64()),
            format!("{:.2}", p.synthesis.as_secs_f64()),
        ]);
    }
    println!("Figure 5: Synthetic generation performance (omega = 9, k = 50, gamma = 4, scale {scale})\n");
    println!("{}", table.render());
}
