//! Figure 5: synthetic-generation performance (model learning + synthesis
//! time against the number of synthetics produced), ω = 9, k = 50, γ = 4.

use bench::{base_population, experiment_pipeline_config, scale_from_args, smoke_mode};
use sgf_data::acs::{acs_bucketizer, acs_schema, generate_acs};
use sgf_eval::{performance_curve, TextTable};
use sgf_model::OmegaSpec;

fn main() {
    let scale = scale_from_args();
    let population = generate_acs(base_population() * scale, 105);
    let bucketizer = acs_bucketizer(&acs_schema());
    let mut config = experiment_pipeline_config(1, 105);
    config.omega = OmegaSpec::Fixed(9);

    // Smoke mode shrinks the curve alongside the population so the artifact
    // smoke suite is not dominated by this one binary.
    let base_sizes: [usize; 4] = if smoke_mode() {
        [25, 50, 100, 200]
    } else {
        [250, 500, 1000, 2000]
    };
    let sizes: Vec<usize> = base_sizes.iter().map(|s| s * scale).collect();
    let points =
        performance_curve(&population, &bucketizer, &config, &sizes).expect("pipeline runs");

    let mut table = TextTable::new(&[
        "Requested",
        "Released",
        "Candidates",
        "Model learning (s)",
        "Synthesis (s)",
    ]);
    for p in &points {
        table.add_row(&[
            p.requested.to_string(),
            p.released.to_string(),
            p.candidates.to_string(),
            format!("{:.2}", p.model_learning.as_secs_f64()),
            format!("{:.2}", p.synthesis.as_secs_f64()),
        ]);
    }
    println!("Figure 5: Synthetic generation performance (omega = 9, k = 50, gamma = 4, scale {scale})\n");
    println!("{}", table.render());
}
