//! Figure 5: synthetic-generation performance (model learning + synthesis
//! time against the number of synthetics produced), ω = 9, k = 50, γ = 4 —
//! plus the worker-scaling sweep (series `fig5_workers`) that tracks parallel
//! release throughput at 1–32 workers.

use bench::track::{BenchPoint, SeriesRecorder};
use bench::{base_population, experiment_pipeline_config, scale_from_args, smoke_mode};
use sgf_core::{GenerateRequest, SynthesisEngine};
use sgf_data::acs::{acs_bucketizer, acs_schema, generate_acs};
use sgf_eval::{performance_curve, TextTable};
use sgf_model::OmegaSpec;

/// Worker counts of the scaling sweep.
const WORKER_COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 32];

fn main() {
    let scale = scale_from_args();
    let population = generate_acs(base_population() * scale, 105);
    let bucketizer = acs_bucketizer(&acs_schema());
    let mut config = experiment_pipeline_config(1, 105);
    config.omega = OmegaSpec::Fixed(9);

    // Smoke mode shrinks the curve alongside the population so the artifact
    // smoke suite is not dominated by this one binary.
    let base_sizes: [usize; 4] = if smoke_mode() {
        [25, 50, 100, 200]
    } else {
        [250, 500, 1000, 2000]
    };
    let sizes: Vec<usize> = base_sizes.iter().map(|s| s * scale).collect();

    let mut recorder = SeriesRecorder::new("fig5", scale);
    let points =
        performance_curve(&population, &bucketizer, &config, &sizes).expect("pipeline runs");

    let mut table = TextTable::new(&[
        "Requested",
        "Released",
        "Candidates",
        "Model learning (s)",
        "Synthesis (s)",
    ]);
    for p in &points {
        table.add_row(&[
            p.requested.to_string(),
            p.released.to_string(),
            p.candidates.to_string(),
            format!("{:.2}", p.model_learning.as_secs_f64()),
            format!("{:.2}", p.synthesis.as_secs_f64()),
        ]);
        recorder.add(
            BenchPoint::new(format!("n{:04}", p.requested))
                .counter("requested", p.requested as u64)
                .counter("released", p.released as u64)
                .counter("candidates", p.candidates as u64)
                .value("model_learning_seconds", p.model_learning.as_secs_f64())
                .value("synthesis_seconds", p.synthesis.as_secs_f64()),
        );
    }
    println!("Figure 5: Synthetic generation performance (omega = 9, k = 50, gamma = 4, scale {scale})\n");
    println!("{}", table.render());
    recorder.finish();

    // Worker-scaling sweep: the same request served at 1-32 workers from one
    // trained session.  The released records are deterministic at every
    // worker count (rank selection), but proposal counters at >1 workers
    // depend on thread timing, so those points are marked noisy and exempt
    // from regression gating.
    let mut recorder = SeriesRecorder::new("fig5_workers", scale);
    let target = base_sizes[1] * scale;
    let session = SynthesisEngine::from_config(config)
        .train(&population, &bucketizer)
        .expect("model learning on the generated population succeeds");

    let mut table = TextTable::new(&[
        "Workers",
        "Released",
        "Candidates",
        "Synthesis (s)",
        "Throughput (rec/s)",
    ]);
    for &workers in &WORKER_COUNTS {
        // The selection-lock / outranked-pass deltas around each request are
        // the contention profile: shared-heap acquisitions per release and
        // wasted passing proposals at this worker count.
        let before = sgf_metrics::global().snapshot();
        let report = session
            .generate(
                &GenerateRequest::new(target)
                    .with_omega(OmegaSpec::Fixed(9))
                    .with_seed(105)
                    .with_workers(workers),
            )
            .expect("parallel release succeeds");
        let profile = sgf_metrics::global().snapshot().delta(&before);
        let seconds = report.synthesis.as_secs_f64();
        let throughput = report.stats.released as f64 / seconds.max(1e-9);
        table.add_row(&[
            workers.to_string(),
            report.stats.released.to_string(),
            report.stats.candidates.to_string(),
            format!("{seconds:.2}"),
            format!("{throughput:.0}"),
        ]);
        let mut point = BenchPoint::new(format!("w{workers:02}"))
            .counter("workers", workers as u64)
            .counter("released", report.stats.released as u64)
            .counter("candidates", report.stats.candidates as u64)
            .counter("records_examined", report.stats.records_examined as u64)
            .counter(
                "selection_locks",
                profile.counter("core.mechanism.selection_locks"),
            )
            .counter(
                "outranked_passes",
                profile.counter("core.mechanism.outranked_passes"),
            )
            .value("synthesis_seconds", seconds)
            .value("throughput_rps", throughput);
        if workers > 1 {
            point = point.noisy();
        }
        recorder.add(point);
    }
    println!("Figure 5 (cont.): worker scaling, {target} synthetics per request\n");
    println!("{}", table.render());
    recorder.finish();
}
