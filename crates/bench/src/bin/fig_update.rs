//! `fig_update`: incremental session updates — the equivalence gate and the
//! update-vs-retrain cost curve behind `SynthesisSession::update`.
//!
//! Two parts:
//!
//! 1. **Equivalence gate (deterministic).**  One session is trained, a small
//!    mixed delta (10 inserts, 5 deletes) is folded in with `update`, and a
//!    second session is trained from scratch on the canonical post-delta
//!    dataset.  Every split subset, the learned structure, the CPTs, the
//!    marginals, both sufficient-statistic stores, the posting lists, the
//!    equivalence classes, and the releases of identically-seeded requests
//!    must be byte-identical.  The confirmation line is grepped by
//!    `scripts/repro.sh`, and the point's counters are regression-gated by
//!    `sgf-bench-track compare`.
//! 2. **Cost curve (time-domain).**  Wall clocks of a from-scratch retrain
//!    versus the O(|Δ|) incremental fold-in of a 10-record ingest, at the
//!    paper-scale session (32,000 ACS draws hash-split to ~15,680 seeds at
//!    scale 1).  At full (non-smoke) scale the update must be ≥ 100x faster —
//!    the payoff of delta-maintainable stores and summable model counts.  The
//!    deferred store splice that the first request of the new epoch pays is
//!    reported as its own row so the amortized cost stays visible.

use bench::track::{BenchPoint, SeriesRecorder};
use bench::{scale_from_args, smoke_mode};
use sgf_core::{GenerateRequest, PrivacyTestConfig, SynthesisEngine, SynthesisSession};
use sgf_data::acs::{acs_bucketizer, acs_schema, generate_acs};
use sgf_data::{Bucketizer, Dataset, DatasetDelta};
use sgf_eval::TextTable;
use sgf_model::OmegaSpec;
use std::time::Instant;

/// Records retracted / ingested by the equivalence-gate delta.
const DELETES: usize = 5;
const INSERTS: usize = 10;

fn train(population: &Dataset, bucketizer: &Bucketizer) -> SynthesisSession {
    SynthesisEngine::builder()
        .privacy_test(
            PrivacyTestConfig::randomized(20, 4.0, 1.0).with_limits(Some(40), Some(2_000)),
        )
        .omega(OmegaSpec::Fixed(9))
        .max_candidate_factor(30)
        .seed(117)
        .train(population, bucketizer)
        .expect("model learning on the generated population succeeds")
}

/// The equivalence-gate delta: retract `DELETES` records spread through the
/// population, ingest `INSERTS` fresh ACS draws.
fn mixed_delta(population: &Dataset) -> DatasetDelta {
    let mut delta = DatasetDelta::new(population.schema_arc());
    let stride = (population.len() / DELETES).max(1);
    for i in 0..DELETES {
        delta
            .delete(population.record(i * stride).clone())
            .expect("population records delete cleanly");
    }
    for record in generate_acs(INSERTS, 917).records() {
        delta
            .insert(record.clone())
            .expect("ACS draws are in-domain");
    }
    delta
}

/// The timed delta: a pure `INSERTS`-record ingest (the "10-record ingest
/// into a 15k-seed session" workload of the roadmap).
fn ingest_delta(population: &Dataset) -> DatasetDelta {
    let mut delta = DatasetDelta::new(population.schema_arc());
    for record in generate_acs(INSERTS, 917).records() {
        delta
            .insert(record.clone())
            .expect("ACS draws are in-domain");
    }
    delta
}

fn main() {
    let scale = scale_from_args();
    let target = if smoke_mode() { 12 } else { 25 };
    // 32,000 draws hash-split to 15,675 seeds at scale 1 — the paper-scale
    // ACS session the roadmap's update-latency claim is stated against.
    let population_size = if smoke_mode() { 8_000 } else { 32_000 * scale };
    let bucketizer = acs_bucketizer(&acs_schema());
    let population = generate_acs(population_size, 117);
    let mut recorder = SeriesRecorder::new("fig_update", scale);

    let started = Instant::now();
    let session = train(&population, &bucketizer);
    let train_seconds = started.elapsed().as_secs_f64();

    // Part 1: the equivalence gate — every artifact byte-identical after a
    // mixed (inserts + deletes) delta.
    let delta = mixed_delta(&population);
    let updated = session.update(&delta).expect("update succeeds");
    let final_data = delta.apply(&population).expect("delta applies cleanly");
    let fresh = train(&final_data, &bucketizer);

    assert_eq!(updated.epoch(), 1, "one update advances one epoch");
    assert_eq!(
        updated.split().structure.records(),
        fresh.split().structure.records(),
        "hash split commutes with the delta on D_T"
    );
    assert_eq!(
        updated.split().parameters.records(),
        fresh.split().parameters.records()
    );
    assert_eq!(
        updated.split().seeds.records(),
        fresh.split().seeds.records()
    );
    assert_eq!(updated.split().test.records(), fresh.split().test.records());
    assert_eq!(
        updated.models().structure.graph,
        fresh.models().structure.graph
    );
    assert_eq!(
        updated.models().structure.correlations,
        fresh.models().structure.correlations
    );
    assert_eq!(*updated.models().cpts, *fresh.models().cpts);
    assert_eq!(updated.models().marginal, fresh.models().marginal);
    assert_eq!(
        updated.models().structure_counts,
        fresh.models().structure_counts
    );
    assert_eq!(
        updated.models().marginal_counts,
        fresh.models().marginal_counts
    );
    assert_eq!(
        updated.seed_store(),
        fresh.seed_store(),
        "spliced posting lists equal the from-scratch build"
    );
    assert_eq!(
        updated.partition_store(),
        fresh.partition_store(),
        "moved equivalence classes equal the from-scratch build"
    );

    let mut table = TextTable::new(&["Request seed", "Released", "Candidates"]);
    let mut released = 0u64;
    let mut candidates = 0u64;
    for seed in 0..3u64 {
        let request = GenerateRequest::new(target).with_seed(seed);
        let a = updated
            .generate(&request)
            .expect("updated release succeeds");
        let b = fresh.generate(&request).expect("fresh release succeeds");
        assert_eq!(
            a.synthetics.records(),
            b.synthetics.records(),
            "update changed the released records at seed {seed}"
        );
        assert_eq!(a.stats.released, b.stats.released);
        assert_eq!(a.provenance.epoch, 1);
        assert_eq!(b.provenance.epoch, 0);
        released += a.stats.released as u64;
        candidates += a.stats.candidates as u64;
        table.add_row(&[
            seed.to_string(),
            a.stats.released.to_string(),
            a.stats.candidates.to_string(),
        ]);
    }
    let structure_changed = updated.models().structure.graph != session.models().structure.graph;
    recorder.add(
        BenchPoint::new("equivalence")
            .counter("seeds_before", session.seeds().len() as u64)
            .counter("seeds_after", updated.seeds().len() as u64)
            .counter("delta_inserts", INSERTS as u64)
            .counter("delta_deletes", DELETES as u64)
            .counter("epoch", updated.epoch())
            .counter("structure_changed", structure_changed as u64)
            .counter("released", released)
            .counter("candidates", candidates),
    );
    println!(
        "Incremental update: equivalence gate (|Δ| = {}, {} → {} seeds, scale {scale})\n",
        delta.change_count(),
        session.seeds().len(),
        updated.seeds().len()
    );
    println!("{}", table.render());
    println!(
        "fig_update: incremental update matches a from-scratch retrain bit-for-bit \
         (3 request seeds, epoch 1)\n"
    );

    // Part 2: the cost curve on the pure-ingest workload.  Counters above are
    // gated; wall clocks are time-domain values (machine-dependent,
    // directional gating only on request), so the speedup assertion runs only
    // at full scale where the O(|Δ|)-vs-O(n) gap dominates measurement noise.
    let ingest = ingest_delta(&population);
    let ingested_data = ingest.apply(&population).expect("ingest applies cleanly");
    let started = Instant::now();
    let retrained = train(&ingested_data, &bucketizer);
    let retrain_seconds = started.elapsed().as_secs_f64();
    drop(retrained);

    let reps = 50u32;
    let started = Instant::now();
    let mut ingested = session.update(&ingest).expect("update succeeds");
    for _ in 1..reps {
        ingested = session.update(&ingest).expect("update succeeds");
    }
    let update_seconds = started.elapsed().as_secs_f64() / reps as f64;

    // The splice the update deferred: first store access of the new epoch.
    let started = Instant::now();
    let _ = ingested.seed_store();
    let _ = ingested.partition_store();
    let materialize_seconds = started.elapsed().as_secs_f64();

    let speedup = retrain_seconds / update_seconds.max(1e-9);
    let mut table = TextTable::new(&["Path", "Wall (s)", "Speedup"]);
    table.add_row(&[
        "train (initial)".into(),
        format!("{train_seconds:.3}"),
        "-".into(),
    ]);
    table.add_row(&[
        "retrain (post-ingest)".into(),
        format!("{retrain_seconds:.3}"),
        "1.0x".into(),
    ]);
    table.add_row(&[
        format!("update ({INSERTS}-record ingest, mean of {reps})"),
        format!("{update_seconds:.6}"),
        format!("{speedup:.0}x"),
    ]);
    table.add_row(&[
        "deferred store splice (first query)".into(),
        format!("{materialize_seconds:.6}"),
        "-".into(),
    ]);
    recorder.add(
        BenchPoint::new("timing")
            .counter("update_reps", reps as u64)
            .value("train_seconds", train_seconds)
            .value("retrain_seconds", retrain_seconds)
            .value("update_seconds", update_seconds)
            .value("materialize_seconds", materialize_seconds)
            .value("speedup", speedup),
    );
    println!("Incremental update: cost vs from-scratch retrain\n");
    println!("{}", table.render());
    if !smoke_mode() {
        assert!(
            speedup >= 100.0,
            "a {INSERTS}-record ingest must fold in >= 100x faster than a retrain \
             (update {update_seconds:.6}s vs retrain {retrain_seconds:.3}s, {speedup:.0}x)"
        );
        println!("fig_update: small-delta update is {speedup:.0}x faster than a full retrain\n");
    }
    recorder.finish();
}
