//! Seed-store sweep: scan-vs-inverted-index cost of the plausible-deniability
//! test across seed-dataset size × k (the privacy parameter).
//!
//! For every configuration the two stores propose the *same* candidates from
//! the same RNG seed and must release identical records — the binary asserts
//! this — while `records_examined` (model-probability evaluations per test)
//! and synthesis wall clock drop with the index.  The last column group shows
//! the one-off index build cost amortized over every request of a session.

use bench::{scale_from_args, smoke_mode};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sgf_core::{InvertedIndexStore, Mechanism, PrivacyTestConfig, SynthesisPipeline};
use sgf_data::acs::{acs_bucketizer, acs_schema, generate_acs};
use sgf_data::{split_dataset, SplitSpec};
use sgf_eval::TextTable;
use sgf_index::MAX_INTERSECT_LISTS;
use sgf_model::SeedSynthesizer;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let scale = scale_from_args();
    let (populations, ks, candidates): (Vec<usize>, Vec<usize>, usize) = if smoke_mode() {
        (vec![1_500, 3_000], vec![10, 25], 60)
    } else {
        (vec![4_000, 8_000, 16_000, 32_000], vec![25, 50, 100], 400)
    };
    let populations: Vec<usize> = populations.iter().map(|p| p * scale).collect();
    let bucketizer = acs_bucketizer(&acs_schema());

    let mut table = TextTable::new(&[
        "Seeds",
        "k",
        "Candidates",
        "Released",
        "Scan examined",
        "Index examined",
        "Examined ratio",
        "Scan (s)",
        "Index (s)",
        "Build (s)",
    ]);

    for &population_size in &populations {
        let population = generate_acs(population_size, 301);
        // Learn the models once per population size; the k sweep only changes
        // the privacy test, not the trained models.
        let mut rng = StdRng::seed_from_u64(301);
        let split = split_dataset(&population, &SplitSpec::paper_defaults(), &mut rng)
            .expect("population is non-empty");
        let config = bench::experiment_pipeline_config(1, 301);
        let models = SynthesisPipeline::new(config)
            .learn_models(&split, &bucketizer)
            .expect("model learning succeeds");
        let synthesizer =
            SeedSynthesizer::new(Arc::clone(&models.cpts), 9).expect("omega 9 is valid");

        let build_start = Instant::now();
        let index_store = InvertedIndexStore::build(
            &split.seeds,
            &bucketizer,
            &models.structure.attribute_weights(),
            MAX_INTERSECT_LISTS,
        )
        .expect("index build succeeds");
        let build_seconds = build_start.elapsed().as_secs_f64();

        for &k in &ks {
            let test =
                PrivacyTestConfig::randomized(k, 4.0, 1.0).with_limits(Some(2 * k), Some(50_000));
            let scan_mech =
                Mechanism::new(&synthesizer, &split.seeds, test).expect("scan mechanism is valid");
            let index_mech = Mechanism::with_store(&synthesizer, &split.seeds, &index_store, test)
                .expect("index mechanism is valid");

            let start = Instant::now();
            let (scan_released, scan_stats) = scan_mech
                .release_batch(candidates, &mut StdRng::seed_from_u64(77))
                .expect("scan batch succeeds");
            let scan_seconds = start.elapsed().as_secs_f64();

            let start = Instant::now();
            let (index_released, index_stats) = index_mech
                .release_batch(candidates, &mut StdRng::seed_from_u64(77))
                .expect("index batch succeeds");
            let index_seconds = start.elapsed().as_secs_f64();

            assert_eq!(
                scan_released,
                index_released,
                "scan and index must release identical records (seeds {}, k {k})",
                split.seeds.len()
            );
            let ratio =
                index_stats.records_examined as f64 / (scan_stats.records_examined as f64).max(1.0);
            table.add_row(&[
                split.seeds.len().to_string(),
                k.to_string(),
                candidates.to_string(),
                scan_stats.released.to_string(),
                scan_stats.records_examined.to_string(),
                index_stats.records_examined.to_string(),
                format!("{ratio:.4}"),
                format!("{scan_seconds:.3}"),
                format!("{index_seconds:.3}"),
                format!("{build_seconds:.3}"),
            ]);
        }
    }

    println!(
        "Seed-store sweep: plausible-deniability test cost, scan vs inverted index \
         (omega = 9, gamma = 4, eps0 = 1, scale {scale})\n"
    );
    println!("{}", table.render());
    println!("Scan and index released byte-identical records in every configuration.");
}
