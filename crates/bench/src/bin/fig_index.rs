//! Seed-store sweep: scan vs inverted index vs partition store cost of the
//! plausible-deniability test across seed-dataset size × k (the privacy
//! parameter).
//!
//! For every configuration the three stores propose the *same* candidates
//! from the same RNG seed and must release identical records — the binary
//! asserts this (a decision-equivalence regression here fails `repro.sh` and
//! CI) — while `records_examined` (model-probability evaluations per test)
//! and synthesis wall clock drop with each store generation:
//!
//! * the scan examines `O(|D_S|)` records per candidate;
//! * the inverted index examines the posting-list survivors (≈ k plus
//!   overhead);
//! * the partition store collapses seeds into likelihood-equivalence classes
//!   and runs one check per class — with a fixed ω every key attribute is
//!   exact-matched, so each test is a single class lookup and the examined
//!   count scales with the distinct-class count, not `|D_S|`.
//!
//! The last column group shows the one-off index build costs amortized over
//! every request of a session.

use bench::track::{BenchPoint, SeriesRecorder};
use bench::{scale_from_args, smoke_mode};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sgf_core::{
    InvertedIndexStore, Mechanism, PartitionIndexStore, PrivacyTestConfig, SynthesisPipeline,
};
use sgf_data::acs::{acs_bucketizer, acs_schema, generate_acs};
use sgf_data::{split_dataset, SplitSpec};
use sgf_eval::TextTable;
use sgf_index::MAX_INTERSECT_LISTS;
use sgf_model::SeedSynthesizer;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let scale = scale_from_args();
    let (populations, ks, candidates): (Vec<usize>, Vec<usize>, usize) = if smoke_mode() {
        (vec![1_500, 3_000], vec![10, 25], 60)
    } else {
        (vec![4_000, 8_000, 16_000, 32_000], vec![25, 50, 100], 400)
    };
    let populations: Vec<usize> = populations.iter().map(|p| p * scale).collect();
    let bucketizer = acs_bucketizer(&acs_schema());
    let mut recorder = SeriesRecorder::new("fig_index", scale);

    let mut table = TextTable::new(&[
        "Seeds",
        "Classes",
        "k",
        "Released",
        "Scan exam",
        "Inv exam",
        "Part exam",
        "Part/Inv",
        "Scan (s)",
        "Inv (s)",
        "Part (s)",
        "Build inv (s)",
        "Build part (s)",
    ]);

    for &population_size in &populations {
        let population = generate_acs(population_size, 301);
        // Learn the models once per population size; the k sweep only changes
        // the privacy test, not the trained models.
        let mut rng = StdRng::seed_from_u64(301);
        let split = split_dataset(&population, &SplitSpec::paper_defaults(), &mut rng)
            .expect("population is non-empty");
        let config = bench::experiment_pipeline_config(1, 301);
        let models = SynthesisPipeline::new(config)
            .learn_models(&split, &bucketizer)
            .expect("model learning succeeds");
        let synthesizer =
            SeedSynthesizer::new(Arc::clone(&models.cpts), 9).expect("omega 9 is valid");

        let build_start = Instant::now();
        let index_store = InvertedIndexStore::build(
            &split.seeds,
            &bucketizer,
            &models.structure.attribute_weights(),
            MAX_INTERSECT_LISTS,
        )
        .expect("index build succeeds");
        let inverted_build_seconds = build_start.elapsed().as_secs_f64();

        let build_start = Instant::now();
        let partition_store =
            PartitionIndexStore::build(&split.seeds, synthesizer.kept_attributes())
                .expect("partition build succeeds");
        let partition_build_seconds = build_start.elapsed().as_secs_f64();

        for &k in &ks {
            let test =
                PrivacyTestConfig::randomized(k, 4.0, 1.0).with_limits(Some(2 * k), Some(50_000));
            let scan_mech =
                Mechanism::new(&synthesizer, &split.seeds, test).expect("scan mechanism is valid");
            let index_mech = Mechanism::with_store(&synthesizer, &split.seeds, &index_store, test)
                .expect("index mechanism is valid");
            let partition_mech =
                Mechanism::with_store(&synthesizer, &split.seeds, &partition_store, test)
                    .expect("partition mechanism is valid");

            let start = Instant::now();
            let (scan_released, scan_stats) = scan_mech
                .release_batch(candidates, &mut StdRng::seed_from_u64(77))
                .expect("scan batch succeeds");
            let scan_seconds = start.elapsed().as_secs_f64();

            let start = Instant::now();
            let (index_released, index_stats) = index_mech
                .release_batch(candidates, &mut StdRng::seed_from_u64(77))
                .expect("index batch succeeds");
            let index_seconds = start.elapsed().as_secs_f64();

            let start = Instant::now();
            let (partition_released, partition_stats) = partition_mech
                .release_batch(candidates, &mut StdRng::seed_from_u64(77))
                .expect("partition batch succeeds");
            let partition_seconds = start.elapsed().as_secs_f64();

            // Decision equivalence is a hard invariant, not a benchmark
            // observation: any divergence aborts the artifact run.
            assert_eq!(
                scan_released,
                index_released,
                "scan and inverted index must release identical records (seeds {}, k {k})",
                split.seeds.len()
            );
            assert_eq!(
                scan_released,
                partition_released,
                "scan and partition store must release identical records (seeds {}, k {k})",
                split.seeds.len()
            );
            assert_eq!(partition_stats.partition_tests, partition_stats.candidates);
            assert!(
                partition_stats.records_examined <= index_stats.records_examined,
                "class counting must not examine more than the inverted index \
                 ({} vs {}, seeds {}, k {k})",
                partition_stats.records_examined,
                index_stats.records_examined,
                split.seeds.len()
            );
            if split.seeds.len() >= 4_000 {
                assert!(
                    partition_stats.records_examined < index_stats.records_examined,
                    "at >= 4k seeds the partition store must examine strictly fewer \
                     records than the inverted index ({} vs {}, seeds {}, k {k})",
                    partition_stats.records_examined,
                    index_stats.records_examined,
                    split.seeds.len()
                );
            }

            let ratio = partition_stats.records_examined as f64
                / (index_stats.records_examined as f64).max(1.0);
            table.add_row(&[
                split.seeds.len().to_string(),
                partition_store.class_count().to_string(),
                k.to_string(),
                scan_stats.released.to_string(),
                scan_stats.records_examined.to_string(),
                index_stats.records_examined.to_string(),
                partition_stats.records_examined.to_string(),
                format!("{ratio:.4}"),
                format!("{scan_seconds:.3}"),
                format!("{index_seconds:.3}"),
                format!("{partition_seconds:.3}"),
                format!("{inverted_build_seconds:.3}"),
                format!("{partition_build_seconds:.3}"),
            ]);
            recorder.add(
                BenchPoint::new(format!("s{}_k{k:03}", split.seeds.len()))
                    .counter("seeds", split.seeds.len() as u64)
                    .counter("classes", partition_store.class_count() as u64)
                    .counter("k", k as u64)
                    .counter("released", scan_stats.released as u64)
                    .counter("scan_examined", scan_stats.records_examined as u64)
                    .counter("inverted_examined", index_stats.records_examined as u64)
                    .counter(
                        "partition_examined",
                        partition_stats.records_examined as u64,
                    )
                    .value("scan_seconds", scan_seconds)
                    .value("inverted_seconds", index_seconds)
                    .value("partition_seconds", partition_seconds)
                    .value("inverted_build_seconds", inverted_build_seconds)
                    .value("partition_build_seconds", partition_build_seconds),
            );
        }
    }
    recorder.finish();

    println!(
        "Seed-store sweep: plausible-deniability test cost, scan vs inverted index vs \
         partition store (omega = 9, gamma = 4, eps0 = 1, scale {scale})\n"
    );
    println!("{}", table.render());
    println!(
        "Scan, inverted index, and partition store released byte-identical records in \
         every configuration."
    );
}
