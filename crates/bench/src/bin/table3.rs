//! Table 3: Tree / Random Forest / AdaBoost accuracy and agreement rate when
//! trained on reals, marginals, and synthetics (various ω).

use bench::{build_context, scale_from_args};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sgf_data::acs::attr;
use sgf_eval::{percent, table3, Table3Config, TextTable};

fn main() {
    let scale = scale_from_args();
    let recorder = bench::track::SeriesRecorder::new("table3", scale);
    let ctx = build_context(scale, 107);
    let mut rng = StdRng::seed_from_u64(107);

    let mut candidates: Vec<(String, &sgf_data::Dataset)> =
        vec![("reals".to_string(), &ctx.split.seeds)];
    for (label, data) in &ctx.synthetic_sets {
        candidates.push((label.clone(), data));
    }
    let rows = table3(
        &candidates,
        &ctx.split.test,
        attr::INCOME,
        &Table3Config::default(),
        &mut rng,
    );

    let mut table = TextTable::new(&[
        "Training set",
        "Acc Tree",
        "Acc RF",
        "Acc Ada",
        "Agree Tree",
        "Agree RF",
        "Agree Ada",
    ]);
    for row in &rows {
        table.add_row(&[
            row.label.clone(),
            percent(row.accuracy[0]),
            percent(row.accuracy[1]),
            percent(row.accuracy[2]),
            percent(row.agreement[0]),
            percent(row.agreement[1]),
            percent(row.agreement[2]),
        ]);
    }
    println!("Table 3: Classifier comparisons (scale {scale})\n");
    println!("{}", table.render());
    println!("session budget ledger: {}", ctx.ledger.to_json());
    recorder.finish();
}
